//! Golden-findings test: runs the real `xtask` binary over the seeded
//! fixture tree in `tests/fixtures/tree` and checks that every planted
//! violation is reported (and nothing else is).
//!
//! The fixture files are frozen — line numbers below are part of the
//! goldens. If you edit a fixture, update the goldens here.

use std::process::Command;

fn fixture_root() -> String {
    format!(
        "{}/tests/fixtures/tree",
        env!("CARGO_MANIFEST_DIR").replace('\\', "/")
    )
}

fn run(args: &[&str], root: &str) -> (String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .args(["--root", root])
        .output()
        .expect("xtask binary runs");
    assert!(
        out.stderr.is_empty(),
        "unexpected stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

/// `path:line: [rule]` prefixes of every seeded analyze violation.
const ANALYZE_GOLDENS: &[&str] = &[
    "crates/fix-det/src/snapshot.rs:15: [hash-iter]",
    "crates/fix-det/src/snapshot.rs:21: [hash-iter]",
    "crates/fix-lock/src/order.rs:36: [lock-order]",
    "crates/fix-lock/src/order.rs:43: [lock-cycle]",
    "crates/fix-lock/src/storage.rs:24: [guard-across-storage]",
];

/// `path:line: [rule]` prefixes of every seeded lint violation.
const LINT_GOLDENS: &[&str] = &[
    "crates/fix-lint/src/bait.rs:1: [unwrap-budget]",
    "crates/fix-lint/src/bait.rs:4: [raw-lock]",
    "crates/fix-lint/src/bait.rs:5: [wall-clock]",
    "crates/fix-lint/src/bait.rs:8: [wall-clock]",
    "crates/mysrb/src/app.rs:6: [metric-name]",
    "crates/mysrb/src/app.rs:7: [metric-name]",
    "crates/srb-core/src/ops_fix.rs:5: [no-panic-ops]",
];

#[test]
fn analyze_detects_every_seeded_violation() {
    let (stdout, code) = run(&["analyze"], &fixture_root());
    assert_eq!(code, 1, "exit 1 on violations:\n{stdout}");
    for golden in ANALYZE_GOLDENS {
        assert!(stdout.contains(golden), "missing `{golden}` in:\n{stdout}");
    }
    // …and nothing beyond the seeded set.
    let findings = stdout.lines().filter(|l| l.contains(": [")).count();
    assert_eq!(findings, ANALYZE_GOLDENS.len(), "extra findings:\n{stdout}");
    // The clean fixtures (down-rank nesting, guard dropped before
    // dispatch, sorted/terminal/ordered iteration) must not appear.
    for clean in ["layered", "flush_ok", "snapshot_sorted", "digest", "render"] {
        assert!(
            !stdout.contains(clean),
            "false positive `{clean}`:\n{stdout}"
        );
    }
    // The inversion message names both locks and their parsed ranks.
    assert!(stdout.contains("`fix.core` (LockRank::CoreState = 3)"));
    assert!(stdout.contains("`fix.store` (LockRank::Storage = 1)"));
    // The cycle message spells out the loop.
    assert!(stdout.contains("fix.table_a -> fix.table_b -> fix.table_a"));
}

#[test]
fn lint_detects_every_seeded_violation() {
    let (stdout, code) = run(&["lint"], &fixture_root());
    assert_eq!(code, 1, "exit 1 on violations:\n{stdout}");
    for golden in LINT_GOLDENS {
        assert!(stdout.contains(golden), "missing `{golden}` in:\n{stdout}");
    }
    let findings = stdout.lines().filter(|l| l.contains(": [")).count();
    assert_eq!(findings, LINT_GOLDENS.len(), "extra findings:\n{stdout}");
    // The escaped-quote literal is validated in full, not truncated.
    assert!(stdout.contains("web.a\"b"), "truncated literal:\n{stdout}");
    // Well-formed metric names on the same fixture lines pass.
    assert!(!stdout.contains("web.requests"));
    assert!(!stdout.contains("query.latency_ms"));
}

#[test]
fn json_output_is_machine_readable() {
    let (stdout, code) = run(&["analyze", "--json"], &fixture_root());
    assert_eq!(code, 1);
    // JSON replaces the human output entirely.
    assert!(stdout.trim_start().starts_with('['), "not JSON:\n{stdout}");
    for rule in [
        "lock-order",
        "lock-cycle",
        "guard-across-storage",
        "hash-iter",
    ] {
        assert!(
            stdout.contains(&format!("\"{rule}\"")),
            "no {rule}:\n{stdout}"
        );
    }
    let (lint_out, lint_code) = run(&["lint", "--json"], &fixture_root());
    assert_eq!(lint_code, 1);
    assert!(lint_out.trim_start().starts_with('['));
    for rule in [
        "unwrap-budget",
        "raw-lock",
        "wall-clock",
        "metric-name",
        "no-panic-ops",
    ] {
        assert!(
            lint_out.contains(&format!("\"{rule}\"")),
            "no {rule}:\n{lint_out}"
        );
    }
}

#[test]
fn github_annotations_are_emitted() {
    let (stdout, _) = run(&["analyze", "--github"], &fixture_root());
    assert!(
        stdout.contains("::error file=crates/fix-lock/src/order.rs,line=36,title=lock-order::"),
        "no annotation:\n{stdout}"
    );
    let annotations = stdout.lines().filter(|l| l.starts_with("::error ")).count();
    assert_eq!(annotations, ANALYZE_GOLDENS.len());
}

#[test]
fn dot_emission_renders_the_graph() {
    // Copy the fixture tree to a scratch dir so --dot never writes into
    // the source tree.
    let scratch = std::env::temp_dir().join(format!("xtask-fixture-dot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_tree(std::path::Path::new(&fixture_root()), &scratch).expect("copy fixture tree");

    let (stdout, _) = run(&["analyze", "--dot"], &scratch.to_string_lossy());
    assert!(stdout.contains("wrote docs/lock-graph.dot"), "{stdout}");
    let dot = std::fs::read_to_string(scratch.join("docs/lock-graph.dot")).expect("dot written");
    assert!(dot.contains("digraph lock_order"), "{dot}");
    // Nodes are clustered by rank, edges labeled with their site.
    assert!(dot.contains("cluster_rank3"), "{dot}");
    assert!(dot.contains("\"fix.store\" -> \"fix.core\""), "{dot}");
    assert!(dot.contains("order.rs:36"), "{dot}");

    let _ = std::fs::remove_dir_all(&scratch);
}

fn copy_tree(from: &std::path::Path, to: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(to)?;
    for entry in std::fs::read_dir(from)? {
        let entry = entry?;
        let dest = to.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &dest)?;
        } else {
            std::fs::copy(entry.path(), &dest)?;
        }
    }
    Ok(())
}

//! Seeded lint-rule fixtures: a raw parking_lot import, wall-clock
//! reads, and one unwrap over this tree's (empty) baseline budget.

use parking_lot::Mutex;
use std::time::Instant;

pub fn now_ms() -> u64 {
    let t = Instant::now();
    t.elapsed().as_millis() as u64
}

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

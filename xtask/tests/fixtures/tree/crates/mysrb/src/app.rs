//! Seeded metric-name fixtures, including the escaped-quote regression:
//! the literal on line 6 must be validated as the full unescaped value
//! `web.a"b`, not truncated at the `\"`.

pub fn register(m: &Metrics) {
    m.counter("requests", "total").inc();
    m.gauge("web.a\"b", "escaped").set(0);
    m.counter("web.requests", "total").inc();
    m.histogram("query.latency_ms", "histo");
}

//! Seeded hash-iteration determinism fixtures: two leaks plus four
//! patterns the analyzer must accept (sorted-later, order-insensitive
//! terminal, ordered container, non-sensitive function).

use std::collections::{BTreeMap, HashMap};

pub struct Catalog {
    rows: HashMap<u32, String>,
    sorted_rows: BTreeMap<u32, String>,
}

impl Catalog {
    /// HashMap values straight into snapshot output: violation.
    pub fn snapshot(&self) -> Vec<String> {
        self.rows.values().cloned().collect()
    }

    /// For-loop over the map in an export function: violation.
    pub fn export(&self) -> String {
        let mut out = String::new();
        for pair in &self.rows {
            out.push_str(pair.1);
        }
        out
    }

    /// Collected then sorted: fine.
    pub fn snapshot_sorted(&self) -> Vec<String> {
        let mut v: Vec<String> = self.rows.values().cloned().collect();
        v.sort();
        v
    }

    /// Order-insensitive terminal: fine.
    pub fn digest(&self) -> usize {
        self.rows.values().count()
    }

    /// Ordered container: fine.
    pub fn render(&self) -> Vec<String> {
        self.sorted_rows.values().cloned().collect()
    }

    /// Not a determinism-sensitive function name: fine.
    pub fn all(&self) -> Vec<String> {
        self.rows.values().cloned().collect()
    }
}

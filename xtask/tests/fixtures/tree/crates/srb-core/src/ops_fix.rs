//! Seeded op-handler fixture: a panic on a malformed client request.

pub fn handle(req: u32) -> u32 {
    if req == 0 {
        panic!("bad request");
    }
    req
}

//! Fixture mirror of the ranked-lock wrapper: just enough source for
//! `LockRegistry::parse_ranks` to recover the hierarchy, so the analyzer
//! exercises its self-syncing path instead of the built-in fallback.

pub enum LockRank {
    Topology = 0,
    Storage = 1,
    McatTable = 2,
    CoreState = 3,
    Session = 4,
}

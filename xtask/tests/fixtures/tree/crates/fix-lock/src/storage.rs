//! Seeded guard-across-storage fixture: `flush` holds a ranked guard
//! across a simulated storage dispatch; `flush_ok` drops it first.

use srb_types::sync::{LockRank, Mutex};

pub struct Flusher {
    state: Mutex<u32>,
}

pub fn retry_storage(n: u32) -> u32 {
    n
}

impl Flusher {
    pub fn new() -> Flusher {
        Flusher {
            state: Mutex::new(LockRank::CoreState, "fix.flusher", 0),
        }
    }

    /// `fix.flusher` is live across the storage call: violation.
    pub fn flush(&self) -> u32 {
        let g = self.state.lock();
        retry_storage(*g)
    }

    /// Guard scoped to the inner block, dropped before dispatch: fine.
    pub fn flush_ok(&self) -> u32 {
        let n = {
            let g = self.state.lock();
            *g
        };
        retry_storage(n)
    }
}

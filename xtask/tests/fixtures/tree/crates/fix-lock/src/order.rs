//! Seeded lock-order fixtures. `inverted` acquires up-rank while a
//! Storage guard is live; `ab`/`ba` nest the two McatTable locks in
//! opposite orders (an equal-rank cycle). `layered` nests strictly
//! downward and must NOT be flagged.

use srb_types::sync::{LockRank, Mutex};

pub struct State {
    store: Mutex<u32>,
    core: Mutex<u32>,
    table_a: Mutex<u32>,
    table_b: Mutex<u32>,
}

impl State {
    pub fn new() -> State {
        State {
            store: Mutex::new(LockRank::Storage, "fix.store", 0),
            core: Mutex::new(LockRank::CoreState, "fix.core", 0),
            table_a: Mutex::new(LockRank::McatTable, "fix.table_a", 0),
            table_b: Mutex::new(LockRank::McatTable, "fix.table_b", 0),
        }
    }

    /// Down-rank nesting: fine.
    pub fn layered(&self) -> u32 {
        let c = self.core.lock();
        let s = self.store.lock();
        *c + *s
    }

    /// Acquires `fix.core` (CoreState) while the `fix.store` (Storage)
    /// guard is live: lock-order violation.
    pub fn inverted(&self) -> u32 {
        let s = self.store.lock();
        let c = self.core.lock();
        *s + *c
    }

    /// One half of an equal-rank cycle…
    pub fn ab(&self) -> u32 {
        let a = self.table_a.lock();
        let b = self.table_b.lock();
        *a + *b
    }

    /// …and the opposite order: lock-cycle violation.
    pub fn ba(&self) -> u32 {
        let b = self.table_b.lock();
        let a = self.table_a.lock();
        *a + *b
    }
}

//! Workspace automation: invariant linting and static analysis.
//!
//! - `cargo xtask lint` — source-level invariants rustc and clippy cannot
//!   express, because they are policies of *this* workspace:
//!   - `raw-lock` — every lock goes through `srb_types::sync` (ranked,
//!     deadlock-detected); raw `parking_lot` is confined to the wrapper.
//!   - `wall-clock` — `SystemTime`/`Instant`/`thread_rng` are confined to
//!     `srb-types/src/clock.rs` and the bench crate; the grid itself runs
//!     on the deterministic `SimClock`.
//!   - `unwrap-budget` — `.unwrap()`/`.expect(` in non-test library code is
//!     ratcheted: existing occurrences are grandfathered in
//!     `xtask/unwrap_baseline.txt`, new ones fail the build. Shrink the
//!     baseline with `cargo xtask lint --update-baseline` after a burndown.
//!   - `no-panic-ops` — `panic!`/`todo!`/`unimplemented!` are banned in
//!     `srb-core` op handlers, which execute untrusted client requests.
//!   - `metric-name` — literal metric registrations outside `srb-obs` must
//!     follow the `subsystem.name` scheme (`srb_obs::SUBSYSTEMS`); literal
//!     span names must be bare lowercase op idents.
//!
//! - `cargo xtask analyze` — structure-aware static concurrency and
//!   determinism analysis (see `analyze.rs`): the static lock-order graph
//!   checked against the `LockRank` hierarchy, ranked guards held across
//!   simulated storage / fan-out dispatch, and nondeterministic
//!   `HashMap`/`HashSet` iteration in snapshot/serialization functions.
//!   `--dot` regenerates `docs/lock-graph.dot`.
//!
//! Both commands take `--json` (machine-readable findings) and `--github`
//! (GitHub Actions `::error` annotations for inline PR comments).
//!
//! `vendor/` (offline dependency stand-ins) and `xtask/` itself are out of
//! scope; everything under `crates/`, `src/`, and `tests/` is linted.
//!
//! `cargo xtask benchcheck` validates the `BENCH_*.json` artifacts (see
//! `benchcheck.rs`).

mod analyze;
mod benchcheck;
mod lexer;
mod lockgraph;
mod rules;

use rules::Violation;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const BASELINE_FILE: &str = "xtask/unwrap_baseline.txt";
const DOT_FILE: &str = "docs/lock-graph.dot";

/// Output flags shared by `lint` and `analyze`.
#[derive(Default)]
struct Output {
    json: bool,
    github: bool,
}

impl Output {
    /// Print findings in every requested form; human text is always
    /// printed unless `--json` is on (JSON replaces it so the output
    /// stays parseable).
    fn emit(&self, violations: &[Violation]) {
        if self.json {
            let arr: Vec<serde_json::Value> = violations.iter().map(|v| v.to_json()).collect();
            match serde_json::to_string_pretty(&arr) {
                Ok(s) => println!("{s}"),
                Err(e) => eprintln!("xtask: cannot serialize findings: {e}"),
            }
        } else {
            for v in violations {
                println!("{v}");
            }
        }
        if self.github {
            for v in violations {
                println!("{}", v.github_annotation());
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = Output {
        json: args.iter().any(|a| a == "--json"),
        github: args.iter().any(|a| a == "--github"),
    };
    let root = match root_override(&args) {
        Some(r) => r,
        None => workspace_root(),
    };
    match args.first().map(String::as_str) {
        Some("lint") => {
            let update = args.iter().any(|a| a == "--update-baseline");
            lint(&root, update, &out)
        }
        Some("analyze") => {
            let dot = args.iter().any(|a| a == "--dot");
            run_analyze(&root, dot, &out)
        }
        Some("benchcheck") => benchcheck::benchcheck(&root),
        _ => {
            eprintln!(
                "usage: cargo xtask lint [--update-baseline] [--json] [--github]\n\
                 \x20      cargo xtask analyze [--dot] [--json] [--github]\n\
                 \x20      cargo xtask benchcheck"
            );
            ExitCode::from(2)
        }
    }
}

/// `--root <dir>` points the scanner at another tree (used by the fixture
/// tests to run the real binary over a corpus of seeded violations).
fn root_override(args: &[String]) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the manifest dir's parent is the root.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir)
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from(".")),
        Err(_) => PathBuf::from("."),
    }
}

/// All workspace-relative `.rs` paths in scope, sorted.
fn lintable_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests"] {
        collect_rs(&root.join(top), root, &mut out);
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" {
                continue;
            }
            collect_rs(&path, root, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                // Normalize to forward slashes so rules and the baseline
                // are platform-independent.
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Is this file part of the non-test library code covered by the unwrap
/// ratchet? Integration tests and benches may unwrap freely.
fn in_unwrap_scope(path: &str) -> bool {
    (path.starts_with("src/") || path.contains("/src/"))
        && !path.contains("/tests/")
        && !path.contains("/benches/")
}

fn read_baseline(root: &Path) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(root.join(BASELINE_FILE)) else {
        return map;
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((path, count)) = line.rsplit_once(' ') {
            if let Ok(n) = count.parse::<usize>() {
                map.insert(path.to_string(), n);
            }
        }
    }
    map
}

fn write_baseline(root: &Path, counts: &BTreeMap<String, usize>) -> std::io::Result<()> {
    let mut text = String::from(
        "# Grandfathered .unwrap()/.expect( counts per non-test library file.\n\
         # Regenerate with `cargo xtask lint --update-baseline` after a burndown;\n\
         # the lint fails when a file exceeds its budget here (absent = 0).\n",
    );
    for (path, n) in counts {
        if *n > 0 {
            text.push_str(&format!("{path} {n}\n"));
        }
    }
    std::fs::write(root.join(BASELINE_FILE), text)
}

fn lint(root: &Path, update_baseline: bool, out: &Output) -> ExitCode {
    let files = lintable_files(root);
    if files.is_empty() {
        eprintln!("xtask lint: no source files found under {}", root.display());
        return ExitCode::from(2);
    }

    let mut violations: Vec<Violation> = Vec::new();
    let mut unwrap_counts: BTreeMap<String, usize> = BTreeMap::new();

    for rel in &files {
        let Ok(src) = std::fs::read_to_string(root.join(rel)) else {
            eprintln!("xtask lint: unreadable file {rel}");
            return ExitCode::from(2);
        };
        let lexed = lexer::Lexed::new(&src);
        violations.extend(rules::raw_lock(rel, &lexed));
        violations.extend(rules::wall_clock(rel, &lexed));
        violations.extend(rules::panic_ops(rel, &lexed));
        violations.extend(rules::metric_names(rel, &lexed));
        if in_unwrap_scope(rel) {
            unwrap_counts.insert(rel.clone(), rules::count_unwraps(&lexed));
        }
    }

    if update_baseline {
        if let Err(e) = write_baseline(root, &unwrap_counts) {
            eprintln!("xtask lint: cannot write {BASELINE_FILE}: {e}");
            return ExitCode::from(2);
        }
        let total: usize = unwrap_counts.values().sum();
        println!(
            "xtask lint: baseline updated ({} unwrap/expect across {} files)",
            total,
            unwrap_counts.values().filter(|&&n| n > 0).count()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = read_baseline(root);
    let mut stale = 0usize;
    for (path, &count) in &unwrap_counts {
        let budget = baseline.get(path).copied().unwrap_or(0);
        if count > budget {
            violations.push(Violation {
                path: path.clone(),
                line: 1,
                rule: "unwrap-budget",
                msg: format!(
                    "{count} unwrap/expect in non-test code exceeds the baseline budget \
                     of {budget}; return an SrbError instead (or, if truly unreachable, \
                     justify and run `cargo xtask lint --update-baseline`)"
                ),
            });
        } else if count < budget {
            stale += 1;
        }
    }
    // A removed file whose budget lingers is also stale.
    stale += baseline
        .keys()
        .filter(|p| !unwrap_counts.contains_key(*p))
        .count();

    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out.emit(&violations);
    if stale > 0 && !out.json {
        println!(
            "xtask lint: note: {stale} baseline entr{} now above actual counts — \
             run `cargo xtask lint --update-baseline` to ratchet down",
            if stale == 1 { "y is" } else { "ies are" }
        );
    }
    if violations.is_empty() {
        if !out.json {
            println!("xtask lint: {} files clean", files.len());
        }
        ExitCode::SUCCESS
    } else {
        if !out.json {
            println!(
                "xtask lint: {} violation{} in {} files",
                violations.len(),
                if violations.len() == 1 { "" } else { "s" },
                files.len()
            );
        }
        ExitCode::FAILURE
    }
}

fn run_analyze(root: &Path, dot: bool, out: &Output) -> ExitCode {
    let files = lintable_files(root);
    if files.is_empty() {
        eprintln!(
            "xtask analyze: no source files found under {}",
            root.display()
        );
        return ExitCode::from(2);
    }
    let analysis = match analyze::analyze(root, &files) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if !analysis.ranks_from_source && !out.json {
        println!(
            "xtask analyze: note: could not parse LockRank from \
             crates/srb-types/src/sync.rs; using the built-in hierarchy"
        );
    }
    if dot {
        let text = analysis.graph.emit_dot(&analysis.registry, &analysis.ranks);
        let path = root.join(DOT_FILE);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("xtask analyze: cannot write {DOT_FILE}: {e}");
            return ExitCode::from(2);
        }
        if !out.json {
            println!("xtask analyze: wrote {DOT_FILE}");
        }
    }
    out.emit(&analysis.violations);
    if analysis.violations.is_empty() {
        if !out.json {
            println!(
                "xtask analyze: clean — {} locks, {} acquired-before edges, {} files",
                analysis.registry.defs.len(),
                analysis.graph.edges.len(),
                files.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        if !out.json {
            println!(
                "xtask analyze: {} violation{}",
                analysis.violations.len(),
                if analysis.violations.len() == 1 {
                    ""
                } else {
                    "s"
                },
            );
        }
        ExitCode::FAILURE
    }
}

//! The lint rules, running on the token stream from [`crate::lexer`].
//!
//! Each rule takes a workspace-relative path plus the lexed source and
//! yields violations. Comments and literals are not tokens, so a banned
//! identifier in a doc comment or a test fixture string can never trip a
//! rule; string-literal *values* (for the metric-name rule) come from the
//! lexer with escapes already resolved, so `"web.a\"b"` is seen as the
//! eight characters it denotes rather than being cut at the escaped quote.

use crate::lexer::{Lexed, TokKind};

/// One finding: file, line, rule id, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

impl Violation {
    /// GitHub Actions workflow-command form: renders as an inline PR
    /// annotation when printed from CI.
    pub fn github_annotation(&self) -> String {
        // Messages are single-line; commas/colons are fine inside the
        // message part of a workflow command.
        format!(
            "::error file={},line={},title={}::{}",
            self.path, self.line, self.rule, self.msg
        )
    }

    /// Machine-readable form for `--json`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "msg": self.msg,
        })
    }
}

/// Rule `raw-lock`: `parking_lot` may only be named inside the ranked
/// wrapper module. Everything else must go through `srb_types::sync`, which
/// is what ties every lock to a `LockRank` and keeps the deadlock
/// detector complete — one raw lock is a blind spot.
pub fn raw_lock(path: &str, lexed: &Lexed) -> Vec<Violation> {
    if path == "crates/srb-types/src/sync.rs" {
        return Vec::new();
    }
    lexed
        .ident_lines("parking_lot")
        .into_iter()
        .map(|line| Violation {
            path: path.to_string(),
            line,
            rule: "raw-lock",
            msg: "raw parking_lot lock; use srb_types::sync::{Mutex, RwLock} with a LockRank"
                .to_string(),
        })
        .collect()
}

/// Rule `wall-clock`: `std::time::{SystemTime, Instant}` and
/// `rand::thread_rng` are banned outside the virtual clock and the bench
/// crate. The whole grid runs on `SimClock` so experiments replay
/// identically; one wall-clock read or OS-entropy draw silently breaks
/// that determinism.
pub fn wall_clock(path: &str, lexed: &Lexed) -> Vec<Violation> {
    if path == "crates/srb-types/src/clock.rs" || path.starts_with("crates/bench/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (word, what) in [
        ("SystemTime", "wall-clock time"),
        ("Instant", "wall-clock time"),
        ("thread_rng", "OS entropy"),
    ] {
        for line in lexed.ident_lines(word) {
            out.push(Violation {
                path: path.to_string(),
                line,
                rule: "wall-clock",
                msg: format!(
                    "`{word}` ({what}) breaks simulation determinism; use \
                     srb_types::SimClock / a seeded StdRng"
                ),
            });
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

/// Count `.unwrap()` / `.expect(` occurrences outside `#[cfg(test)]`
/// regions. Used by rule `unwrap-budget` (the per-file ratchet).
pub fn count_unwraps(lexed: &Lexed) -> usize {
    let toks = &lexed.toks;
    (0..toks.len())
        .filter(|&i| {
            toks[i].is_punct('.')
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 1).is_some_and(|t| {
                    t.is_ident("expect")
                        || (t.is_ident("unwrap")
                            && toks.get(i + 3).is_some_and(|t| t.is_punct(')')))
                })
                && !lexed.in_test(i)
        })
        .count()
}

/// Subsystem prefixes of the `subsystem.name` metric scheme — mirrors
/// `srb_obs::SUBSYSTEMS`, which enforces the same list at registration
/// time (an ill-formed name panics there).
const METRIC_SUBSYSTEMS: &[&str] = &[
    "storage", "health", "faults", "fanout", "query", "mcat", "web", "core", "wal", "zone",
];

/// Mirror of `srb_obs::valid_metric_name` (xtask cannot depend on the
/// workspace crates it lints).
fn valid_metric_name(name: &str) -> bool {
    let Some((subsystem, rest)) = name.split_once('.') else {
        return false;
    };
    METRIC_SUBSYSTEMS.contains(&subsystem)
        && !rest.is_empty()
        && rest
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// Rule `metric-name`: every literal metric registration or lookup
/// (`.counter("…")` / `.gauge("…")` / `.histogram("…")`) outside
/// `crates/srb-obs` must follow the documented `subsystem.name` scheme;
/// literal span names (`.span("…")`) must be bare lowercase op idents.
/// Non-literal call sites are left to the registry's runtime check.
///
/// The literal value comes from the lexer with escapes resolved, so an
/// escaped quote inside the name (`"web.a\"b"`) is validated as the full
/// literal rather than being truncated at the `\"`.
pub fn metric_names(path: &str, lexed: &Lexed) -> Vec<Violation> {
    if !path.starts_with("crates/") || path.starts_with("crates/srb-obs/") {
        return Vec::new();
    }
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        // `. method ( "literal"`
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(method) = toks.get(i + 1).filter(|t| {
            t.is_ident("counter")
                || t.is_ident("gauge")
                || t.is_ident("histogram")
                || t.is_ident("span")
        }) else {
            continue;
        };
        if !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(lit) = toks.get(i + 3).filter(|t| t.kind == TokKind::Str) else {
            continue;
        };
        let name = &lit.text;
        let is_span = method.is_ident("span");
        let ok = if is_span {
            !name.is_empty()
                && name
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        } else {
            valid_metric_name(name)
        };
        if !ok {
            out.push(Violation {
                path: path.to_string(),
                line: toks[i].line,
                rule: "metric-name",
                msg: if is_span {
                    format!("span name `{name}` is not a bare lowercase op ident ([a-z0-9_]+)")
                } else {
                    format!(
                        "metric `{name}` violates the `subsystem.name` scheme \
                         (subsystem in {METRIC_SUBSYSTEMS:?}, name [a-z0-9_]+; \
                         see srb_obs::SUBSYSTEMS)"
                    )
                },
            });
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

/// Rule `no-panic-ops`: `panic!`/`todo!`/`unimplemented!` are banned in
/// `srb-core` op handlers (`ops_*.rs`). Op handlers run client requests; a
/// malformed request must surface as an `SrbError` on that request, not
/// take down the server thread.
pub fn panic_ops(path: &str, lexed: &Lexed) -> Vec<Violation> {
    let is_op_handler = path
        .strip_prefix("crates/srb-core/src/")
        .is_some_and(|f| f.starts_with("ops_") && f.ends_with(".rs"));
    if !is_op_handler {
        return Vec::new();
    }
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let word = &toks[i];
        if !(word.is_ident("panic") || word.is_ident("todo") || word.is_ident("unimplemented")) {
            continue;
        }
        // Only the macro form: identifier immediately followed by `!`.
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            continue;
        }
        if lexed.in_test(i) {
            continue;
        }
        out.push(Violation {
            path: path.to_string(),
            line: word.line,
            rule: "no-panic-ops",
            msg: format!(
                "`{}!` in an op handler; return an SrbError so one bad \
                 request cannot kill the server",
                word.text
            ),
        });
    }
    out.sort_by_key(|v| v.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::Lexed;

    #[test]
    fn raw_lock_flags_usage_outside_wrapper() {
        let lexed = Lexed::new("use parking_lot::RwLock;\n");
        let v = raw_lock("crates/srb-net/src/load.rs", &lexed);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        // ... but not in the wrapper module itself.
        assert!(raw_lock("crates/srb-types/src/sync.rs", &lexed).is_empty());
        // ... and not in comments.
        let commented = Lexed::new("// parking_lot is banned\n");
        assert!(raw_lock("crates/srb-net/src/load.rs", &commented).is_empty());
    }

    #[test]
    fn wall_clock_flags_time_and_entropy() {
        let lexed = Lexed::new("let t = std::time::Instant::now();\nlet r = rand::thread_rng();\n");
        let v = wall_clock("crates/srb-core/src/grid.rs", &lexed);
        assert_eq!(v.len(), 2);
        assert_eq!((v[0].line, v[1].line), (1, 2));
        // Allowed in the virtual clock and the bench crate.
        assert!(wall_clock("crates/srb-types/src/clock.rs", &lexed).is_empty());
        assert!(wall_clock("crates/bench/src/fixtures.rs", &lexed).is_empty());
        // Duration is fine anywhere.
        let dur = Lexed::new("use std::time::Duration;\n");
        assert!(wall_clock("crates/srb-core/src/grid.rs", &dur).is_empty());
    }

    #[test]
    fn unwrap_counting_skips_test_modules() {
        let src = "fn a() { x.unwrap(); y.expect(\"m\"); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { z.unwrap(); }\n}\n";
        assert_eq!(count_unwraps(&Lexed::new(src)), 2);
        // unwrap_or / expect_err are not unwraps.
        assert_eq!(
            count_unwraps(&Lexed::new("x.unwrap_or(0); y.expect_err(\"\");\n")),
            0
        );
    }

    #[test]
    fn metric_names_must_follow_the_scheme() {
        let bad = Lexed::new("fn f(m: &M) { m.counter(\"requests\", \"\").inc(); }\n");
        let v = metric_names("crates/mysrb/src/app.rs", &bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        assert!(v[0].msg.contains("`requests`"));
        // Unknown subsystems and uppercase names are flagged too.
        let bad2 = Lexed::new("m.gauge(\"webby.x\", \"\"); m.histogram(\"web.Latency\", \"\");\n");
        assert_eq!(metric_names("crates/mysrb/src/app.rs", &bad2).len(), 2);
        // Well-formed names, non-literal call sites, commented-out code,
        // and srb-obs itself are all fine.
        let ok = Lexed::new(
            "m.counter(\"web.requests\", p).inc();\n\
             m.counter(name, label).inc();\n\
             // m.counter(\"nope\", \"\")\n\
             obs.span(\"open\", p, None, t, d);\n",
        );
        assert!(metric_names("crates/mysrb/src/app.rs", &ok).is_empty());
        assert!(metric_names("crates/srb-obs/src/metrics.rs", &bad).is_empty());
        // Span names must be bare lowercase op idents.
        let span = Lexed::new("obs.span(\"Open Dataset\", p, None, t, d);\n");
        assert_eq!(metric_names("crates/srb-core/src/conn.rs", &span).len(), 1);
    }

    #[test]
    fn metric_name_escaped_quote_is_not_truncated() {
        // Regression: the old string extraction used `find('"')` on the
        // raw source, so an escaped quote inside the literal cut the name
        // short (`web.a\"b` parsed as `web.a\`). The lexer resolves
        // escapes, so the full name is validated — and rejected, because
        // `"` is not in [a-z0-9_].
        let src = "m.counter(\"web.a\\\"b\", \"\").inc();\n";
        let v = metric_names("crates/mysrb/src/app.rs", &Lexed::new(src));
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("web.a\"b"), "{}", v[0].msg);
        // And a well-formed name containing an escape elsewhere in the
        // line is still accepted.
        let ok = "m.counter(\"web.requests\", \"count of \\\"hits\\\"\").inc();\n";
        assert!(metric_names("crates/mysrb/src/app.rs", &Lexed::new(ok)).is_empty());
    }

    #[test]
    fn srb_obs_is_not_exempt_from_clock_and_lock_bans() {
        let lexed = Lexed::new("use parking_lot::RwLock;\nlet t = Instant::now();\n");
        assert_eq!(wall_clock("crates/srb-obs/src/metrics.rs", &lexed).len(), 1);
        assert_eq!(raw_lock("crates/srb-obs/src/metrics.rs", &lexed).len(), 1);
    }

    #[test]
    fn panic_ops_only_in_op_handlers() {
        let lexed = Lexed::new("fn f() { panic!(\"boom\"); }\n");
        assert_eq!(
            panic_ops("crates/srb-core/src/ops_write.rs", &lexed).len(),
            1
        );
        assert!(panic_ops("crates/srb-core/src/grid.rs", &lexed).is_empty());
        assert!(panic_ops("crates/srb-net/src/load.rs", &lexed).is_empty());
        // assert!/debug_assert! and test-module panics are fine.
        let ok = Lexed::new(
            "fn f() { assert!(true); }\n#[cfg(test)]\nmod tests {\n    fn t() { panic!(); }\n}\n",
        );
        assert!(panic_ops("crates/srb-core/src/ops_write.rs", &ok).is_empty());
    }

    #[test]
    fn github_annotation_and_json_forms() {
        let v = Violation {
            path: "crates/x/src/a.rs".into(),
            line: 7,
            rule: "raw-lock",
            msg: "nope".into(),
        };
        assert_eq!(
            v.github_annotation(),
            "::error file=crates/x/src/a.rs,line=7,title=raw-lock::nope"
        );
        let j = serde_json::to_string(&v.to_json()).unwrap();
        assert!(j.contains("\"rule\":\"raw-lock\""), "{j}");
    }
}

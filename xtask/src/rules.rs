//! The lint rules. Each rule takes a workspace-relative path plus the
//! masked source (see [`crate::mask`]) and yields violations.

use crate::mask::{find_ident_lines, test_region_lines};

/// One finding: file, line, rule id, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Rule `raw-lock`: `parking_lot` may only be named inside the ranked
/// wrapper module. Everything else must go through `srb_types::sync`, which
/// is what ties every lock to a `LockRank` and keeps the deadlock
/// detector complete — one raw lock is a blind spot.
pub fn raw_lock(path: &str, masked: &str) -> Vec<Violation> {
    if path == "crates/srb-types/src/sync.rs" {
        return Vec::new();
    }
    find_ident_lines(masked, "parking_lot")
        .into_iter()
        .map(|line| Violation {
            path: path.to_string(),
            line,
            rule: "raw-lock",
            msg: "raw parking_lot lock; use srb_types::sync::{Mutex, RwLock} with a LockRank"
                .to_string(),
        })
        .collect()
}

/// Rule `wall-clock`: `std::time::{SystemTime, Instant}` and
/// `rand::thread_rng` are banned outside the virtual clock and the bench
/// crate. The whole grid runs on `SimClock` so experiments replay
/// identically; one wall-clock read or OS-entropy draw silently breaks
/// that determinism.
pub fn wall_clock(path: &str, masked: &str) -> Vec<Violation> {
    if path == "crates/srb-types/src/clock.rs" || path.starts_with("crates/bench/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (word, what) in [
        ("SystemTime", "wall-clock time"),
        ("Instant", "wall-clock time"),
        ("thread_rng", "OS entropy"),
    ] {
        for line in find_ident_lines(masked, word) {
            out.push(Violation {
                path: path.to_string(),
                line,
                rule: "wall-clock",
                msg: format!(
                    "`{word}` ({what}) breaks simulation determinism; use \
                     srb_types::SimClock / a seeded StdRng"
                ),
            });
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

/// Count `.unwrap()` / `.expect(` occurrences outside `#[cfg(test)]`
/// regions. Used by rule `unwrap-budget` (the per-file ratchet).
pub fn count_unwraps(masked: &str) -> usize {
    let in_test = test_region_lines(masked);
    masked
        .lines()
        .enumerate()
        .filter(|(idx, _)| !in_test.get(idx + 1).copied().unwrap_or(false))
        .map(|(_, line)| line.matches(".unwrap()").count() + line.matches(".expect(").count())
        .sum()
}

/// Subsystem prefixes of the `subsystem.name` metric scheme — mirrors
/// `srb_obs::SUBSYSTEMS`, which enforces the same list at registration
/// time (an ill-formed name panics there).
const METRIC_SUBSYSTEMS: &[&str] = &[
    "storage", "health", "faults", "fanout", "query", "web", "core",
];

/// Mirror of `srb_obs::valid_metric_name` (xtask cannot depend on the
/// workspace crates it lints).
fn valid_metric_name(name: &str) -> bool {
    let Some((subsystem, rest)) = name.split_once('.') else {
        return false;
    };
    METRIC_SUBSYSTEMS.contains(&subsystem)
        && !rest.is_empty()
        && rest
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// Rule `metric-name`: every literal metric registration or lookup
/// (`.counter("…")` / `.gauge("…")` / `.histogram("…")`) outside
/// `crates/srb-obs` must follow the documented `subsystem.name` scheme;
/// literal span names (`.span("…")`) must be bare lowercase op idents.
/// Non-literal call sites are left to the registry's runtime check.
///
/// Masking preserves byte offsets, so call sites are located in the masked
/// text (never in comments or strings) and the literal itself is read back
/// from the raw source at the same position.
pub fn metric_names(path: &str, src: &str, masked: &str) -> Vec<Violation> {
    if !path.starts_with("crates/") || path.starts_with("crates/srb-obs/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for method in ["counter", "gauge", "histogram", "span"] {
        let needle = format!(".{method}(\"");
        let mut search = 0;
        while let Some(pos) = masked[search..].find(&needle) {
            let at = search + pos;
            search = at + needle.len();
            let lit_start = at + needle.len();
            let Some(len) = src[lit_start..].find('"') else {
                continue;
            };
            let name = &src[lit_start..lit_start + len];
            let ok = if method == "span" {
                !name.is_empty()
                    && name
                        .bytes()
                        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
            } else {
                valid_metric_name(name)
            };
            if !ok {
                let line = masked[..at].bytes().filter(|&b| b == b'\n').count() + 1;
                out.push(Violation {
                    path: path.to_string(),
                    line,
                    rule: "metric-name",
                    msg: if method == "span" {
                        format!("span name `{name}` is not a bare lowercase op ident ([a-z0-9_]+)")
                    } else {
                        format!(
                            "metric `{name}` violates the `subsystem.name` scheme \
                             (subsystem in {METRIC_SUBSYSTEMS:?}, name [a-z0-9_]+; \
                             see srb_obs::SUBSYSTEMS)"
                        )
                    },
                });
            }
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

/// Rule `no-panic-ops`: `panic!`/`todo!`/`unimplemented!` are banned in
/// `srb-core` op handlers (`ops_*.rs`). Op handlers run client requests; a
/// malformed request must surface as an `SrbError` on that request, not
/// take down the server thread.
pub fn panic_ops(path: &str, masked: &str) -> Vec<Violation> {
    let is_op_handler = path
        .strip_prefix("crates/srb-core/src/")
        .is_some_and(|f| f.starts_with("ops_") && f.ends_with(".rs"));
    if !is_op_handler {
        return Vec::new();
    }
    let in_test = test_region_lines(masked);
    let mut out = Vec::new();
    for word in ["panic", "todo", "unimplemented"] {
        for line in find_ident_lines(masked, word) {
            if in_test.get(line).copied().unwrap_or(false) {
                continue;
            }
            // Only the macro form: identifier immediately followed by `!`.
            let is_macro = masked
                .lines()
                .nth(line - 1)
                .is_some_and(|l| l.contains(&format!("{word}!")));
            if is_macro {
                out.push(Violation {
                    path: path.to_string(),
                    line,
                    rule: "no-panic-ops",
                    msg: format!(
                        "`{word}!` in an op handler; return an SrbError so one bad \
                         request cannot kill the server"
                    ),
                });
            }
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::mask_source;

    #[test]
    fn raw_lock_flags_usage_outside_wrapper() {
        let masked = mask_source("use parking_lot::RwLock;\n");
        let v = raw_lock("crates/srb-net/src/load.rs", &masked);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        // ... but not in the wrapper module itself.
        assert!(raw_lock("crates/srb-types/src/sync.rs", &masked).is_empty());
        // ... and not in comments.
        let commented = mask_source("// parking_lot is banned\n");
        assert!(raw_lock("crates/srb-net/src/load.rs", &commented).is_empty());
    }

    #[test]
    fn wall_clock_flags_time_and_entropy() {
        let masked =
            mask_source("let t = std::time::Instant::now();\nlet r = rand::thread_rng();\n");
        let v = wall_clock("crates/srb-core/src/grid.rs", &masked);
        assert_eq!(v.len(), 2);
        assert_eq!((v[0].line, v[1].line), (1, 2));
        // Allowed in the virtual clock and the bench crate.
        assert!(wall_clock("crates/srb-types/src/clock.rs", &masked).is_empty());
        assert!(wall_clock("crates/bench/src/fixtures.rs", &masked).is_empty());
        // Duration is fine anywhere.
        let dur = mask_source("use std::time::Duration;\n");
        assert!(wall_clock("crates/srb-core/src/grid.rs", &dur).is_empty());
    }

    #[test]
    fn unwrap_counting_skips_test_modules() {
        let src = "fn a() { x.unwrap(); y.expect(\"m\"); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { z.unwrap(); }\n}\n";
        assert_eq!(count_unwraps(&mask_source(src)), 2);
        // unwrap_or / expect_err are not unwraps.
        assert_eq!(
            count_unwraps(&mask_source("x.unwrap_or(0); y.expect_err(\"\");\n")),
            0
        );
    }

    #[test]
    fn metric_names_must_follow_the_scheme() {
        let bad = "fn f(m: &M) { m.counter(\"requests\", \"\").inc(); }\n";
        let v = metric_names("crates/mysrb/src/app.rs", bad, &mask_source(bad));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        assert!(v[0].msg.contains("`requests`"));
        // Unknown subsystems and uppercase names are flagged too.
        let bad2 = "m.gauge(\"webby.x\", \"\"); m.histogram(\"web.Latency\", \"\");\n";
        assert_eq!(
            metric_names("crates/mysrb/src/app.rs", bad2, &mask_source(bad2)).len(),
            2
        );
        // Well-formed names, non-literal call sites, commented-out code,
        // and srb-obs itself are all fine.
        let ok = "m.counter(\"web.requests\", p).inc();\n\
                  m.counter(name, label).inc();\n\
                  // m.counter(\"nope\", \"\")\n\
                  obs.span(\"open\", p, None, t, d);\n";
        assert!(metric_names("crates/mysrb/src/app.rs", ok, &mask_source(ok)).is_empty());
        assert!(metric_names("crates/srb-obs/src/metrics.rs", bad, &mask_source(bad)).is_empty());
        // Span names must be bare lowercase op idents.
        let span = "obs.span(\"Open Dataset\", p, None, t, d);\n";
        assert_eq!(
            metric_names("crates/srb-core/src/conn.rs", span, &mask_source(span)).len(),
            1
        );
    }

    #[test]
    fn srb_obs_is_not_exempt_from_clock_and_lock_bans() {
        let masked = mask_source("use parking_lot::RwLock;\nlet t = Instant::now();\n");
        assert_eq!(
            wall_clock("crates/srb-obs/src/metrics.rs", &masked).len(),
            1
        );
        assert_eq!(raw_lock("crates/srb-obs/src/metrics.rs", &masked).len(), 1);
    }

    #[test]
    fn panic_ops_only_in_op_handlers() {
        let masked = mask_source("fn f() { panic!(\"boom\"); }\n");
        assert_eq!(
            panic_ops("crates/srb-core/src/ops_write.rs", &masked).len(),
            1
        );
        assert!(panic_ops("crates/srb-core/src/grid.rs", &masked).is_empty());
        assert!(panic_ops("crates/srb-net/src/load.rs", &masked).is_empty());
        // assert!/debug_assert! and test-module panics are fine.
        let ok = mask_source(
            "fn f() { assert!(true); }\n#[cfg(test)]\nmod tests {\n    fn t() { panic!(); }\n}\n",
        );
        assert!(panic_ops("crates/srb-core/src/ops_write.rs", &ok).is_empty());
    }
}

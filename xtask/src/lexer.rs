//! Zero-dependency token-stream lexer for the workspace analyses.
//!
//! `cargo xtask lint` started life on a masking pass (blank out comments
//! and literals, then substring-scan). The static analyses introduced with
//! `cargo xtask analyze` need more structure than a masked string offers:
//! which function a token belongs to, how deep inside nested blocks it
//! sits, and what a string literal *actually contains* once escapes are
//! resolved. This module lexes a Rust source file into a flat token vector
//! with per-token line numbers and brace depth, then runs a lightweight
//! item parser over it that recovers `fn` bodies and `#[cfg(test)]`
//! regions.
//!
//! It is deliberately not a full Rust parser (`syn` is not in the vendored
//! crate set, and the invariants we check don't need one): no expression
//! trees, no type resolution, no macro expansion. Tokens are enough to ask
//! "is this identifier a real code token?", "which fn body is it in?", and
//! "what locks are constructed/acquired around here?" — the questions the
//! lint rules and the concurrency analyses actually ask.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `let`, `RwLock`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`) — kept distinct so `'x'` vs `'x` is
    /// never confused.
    Lifetime,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`); the token
    /// text is the **unescaped** content, not the raw spelling.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal.
    Num,
    /// A single punctuation byte (`.`, `(`, `{`, `=`, ...).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Ident/Punct/Num: the raw text. Str: the unescaped literal value.
    pub text: String,
    /// 1-based source line of the token's first byte.
    pub line: usize,
    /// Brace (`{}`) nesting depth *before* this token is consumed; the
    /// `{` that opens a block carries the depth outside it.
    #[allow(dead_code)] // lexer API; exercised by unit tests
    pub depth: usize,
}

impl Tok {
    /// Is this the punctuation byte `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes() == [c as u8]
    }

    /// Is this the identifier `w`?
    pub fn is_ident(&self, w: &str) -> bool {
        self.kind == TokKind::Ident && self.text == w
    }
}

/// A `fn` item recovered by the item parser.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    #[allow(dead_code)] // lexer API; exercised by unit tests
    pub line: usize,
    /// Token-index range of the body **including** its `{` and `}`;
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Inside a `#[cfg(test)]` region (or annotated `#[test]`)?
    pub in_test: bool,
}

/// A lexed file: tokens plus derived structure.
#[derive(Debug)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    /// All `fn` items in source order (nested fns appear after their
    /// enclosing fn; closures are not items).
    pub fns: Vec<FnItem>,
    /// Token-index ranges covered by `#[cfg(test)]`-gated blocks.
    test_ranges: Vec<(usize, usize)>,
}

impl Lexed {
    /// Lex `src` and parse item structure.
    pub fn new(src: &str) -> Lexed {
        let toks = lex(src);
        let test_ranges = find_test_ranges(&toks);
        let fns = parse_fns(&toks, &test_ranges);
        Lexed {
            toks,
            fns,
            test_ranges,
        }
    }

    /// Is token index `i` inside a `#[cfg(test)]` region?
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| i >= s && i <= e)
    }

    /// The innermost fn whose body contains token index `i`.
    #[allow(dead_code)] // lexer API; exercised by unit tests
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| i > s && i < e))
            .min_by_key(|f| {
                let (s, e) = f.body.unwrap_or((0, usize::MAX));
                e - s
            })
    }

    /// 1-based line numbers of every occurrence of `word` as an identifier
    /// token (never inside comments or literals — those aren't tokens).
    pub fn ident_lines(&self, word: &str) -> Vec<usize> {
        self.toks
            .iter()
            .filter(|t| t.is_ident(word))
            .map(|t| t.line)
            .collect()
    }
}

// ------------------------------------------------------------------ lexer --

fn lex(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    let mut depth = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if next == Some(b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if next == Some(b'*') => {
                let mut d = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        d += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        d -= 1;
                        i += 2;
                        if d == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start_line = line;
                let (value, end) = unescape_string(bytes, i, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: value,
                    line: start_line,
                    depth,
                });
                i = end;
            }
            b'r' | b'b' if is_string_prefix(bytes, i) => {
                let start_line = line;
                let mut j = i;
                let mut raw = false;
                while bytes[j] == b'r' || bytes[j] == b'b' {
                    raw |= bytes[j] == b'r';
                    j += 1;
                }
                let (value, end) = if raw {
                    raw_string(bytes, j, &mut line)
                } else {
                    unescape_string(bytes, j, &mut line)
                };
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: value,
                    line: start_line,
                    depth,
                });
                i = end;
            }
            b'\'' => {
                // Char literal or lifetime.
                if let Some(end) = char_literal_end(bytes, i) {
                    let nl = bytes[i..end].iter().filter(|&&c| c == b'\n').count();
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                        depth,
                    });
                    line += nl;
                    i = end;
                } else {
                    // Lifetime: `'` + ident.
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: String::from_utf8_lossy(&bytes[i..j]).into_owned(),
                        line,
                        depth,
                    });
                    i = j;
                }
            }
            _ if b.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'.')
                {
                    // Stop a float at `..` (range) or `.ident` (method call).
                    if bytes[j] == b'.'
                        && !bytes.get(j + 1).copied().unwrap_or(b' ').is_ascii_digit()
                    {
                        break;
                    }
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: String::from_utf8_lossy(&bytes[i..j]).into_owned(),
                    line,
                    depth,
                });
                i = j;
            }
            _ if b.is_ascii_alphabetic() || b == b'_' || b >= 0x80 => {
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] >= 0x80)
                {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&bytes[i..j]).into_owned(),
                    line,
                    depth,
                });
                i = j;
            }
            _ => {
                if b == b'}' {
                    depth = depth.saturating_sub(1);
                }
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    depth,
                });
                if b == b'{' {
                    depth += 1;
                }
                i += 1;
            }
        }
    }
    toks
}

/// Does `bytes[i..]` start a raw/byte string prefix (`r"`, `r#`, `br"`,
/// `b"`, ...) rather than an identifier like `result`?
fn is_string_prefix(bytes: &[u8], i: usize) -> bool {
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && j - i < 2 {
        j += 1;
    }
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// Consume a normal string starting at its opening quote, resolving
/// escapes (`\"`, `\\`, `\n`, `\u{…}`, line-continuations). Returns the
/// unescaped value and the index one past the closing quote.
fn unescape_string(bytes: &[u8], start: usize, line: &mut usize) -> (String, usize) {
    let mut value = Vec::new();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                match bytes[i + 1] {
                    b'n' => value.push(b'\n'),
                    b't' => value.push(b'\t'),
                    b'r' => value.push(b'\r'),
                    b'0' => value.push(0),
                    b'\n' => {
                        // Line continuation: swallow the newline and
                        // following indentation.
                        *line += 1;
                        i += 2;
                        while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\t') {
                            i += 1;
                        }
                        continue;
                    }
                    b'u' => {
                        // \u{XXXX}: skip to the closing brace.
                        let mut j = i + 2;
                        while j < bytes.len() && bytes[j] != b'}' {
                            j += 1;
                        }
                        value.push(b'?'); // placeholder; rules only need ASCII shape
                        i = j + 1;
                        continue;
                    }
                    other => value.push(other), // \", \\, \'
                }
                i += 2;
            }
            b'"' => {
                return (String::from_utf8_lossy(&value).into_owned(), i + 1);
            }
            b'\n' => {
                *line += 1;
                value.push(b'\n');
                i += 1;
            }
            c => {
                value.push(c);
                i += 1;
            }
        }
    }
    (String::from_utf8_lossy(&value).into_owned(), i)
}

/// Consume a raw string starting at its `#`s or opening quote. Returns the
/// literal value (raw strings have no escapes) and the index one past the
/// closing delimiter.
fn raw_string(bytes: &[u8], start: usize, line: &mut usize) -> (String, usize) {
    let mut i = start;
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return (String::new(), i);
    }
    i += 1;
    let body_start = i;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            let value = String::from_utf8_lossy(&bytes[body_start..i]).into_owned();
            return (value, i + 1 + hashes);
        }
        if bytes[i] == b'\n' {
            *line += 1;
        }
        i += 1;
    }
    (
        String::from_utf8_lossy(&bytes[body_start..i]).into_owned(),
        i,
    )
}

/// If a char literal starts at `i`, return the index one past its closing
/// quote; `None` for lifetimes.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= bytes.len() {
        return None;
    }
    if bytes[j] == b'\\' {
        j += 2;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return (j < bytes.len()).then_some(j + 1);
    }
    let s = std::str::from_utf8(&bytes[j..]).ok()?;
    let c = s.chars().next()?;
    let after = j + c.len_utf8();
    (bytes.get(after) == Some(&b'\'')).then(|| after + 1)
}

// ----------------------------------------------------------------- parser --

/// Token-index ranges covered by `#[cfg(test)]`-gated items (the gated
/// item's whole brace block).
fn find_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // `#` `[` `cfg` `(` `test` `)` `]`
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && toks.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(']'))
        {
            // The gated item's body: next `{` at or below the attribute's
            // depth, spanning to its matching `}`.
            if let Some(open) = (i + 7..toks.len()).find(|&j| toks[j].is_punct('{')) {
                if let Some(close) = matching_close(toks, open) {
                    ranges.push((i, close));
                    i = open + 1; // nested cfg(test) inside is redundant
                    continue;
                }
            }
        }
        i += 1;
    }
    ranges
}

/// Index of the `}` matching the `{` at `open`.
pub fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

fn parse_fns(toks: &[Tok], test_ranges: &[(usize, usize)]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            // Scan forward past generics/args/return type for either the
            // body `{` or a terminating `;` (trait method declaration).
            // Parens and angle brackets can nest; only `(`/`)` need
            // balancing because `{` cannot appear in an argument list
            // outside a nested closure body (which always follows a `(`).
            let mut j = i + 2;
            let mut paren = 0usize;
            let mut body = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren = paren.saturating_sub(1);
                } else if paren == 0 && t.is_punct('{') {
                    if let Some(close) = matching_close(toks, j) {
                        body = Some((j, close));
                    }
                    break;
                } else if paren == 0 && t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            let in_test =
                test_ranges.iter().any(|&(s, e)| i >= s && i <= e) || has_test_attr(toks, i);
            fns.push(FnItem {
                name,
                line,
                body,
                in_test,
            });
        }
        i += 1;
    }
    fns
}

/// Does the fn keyword at `i` have a `#[test]`-like attribute directly
/// before it (allowing for visibility and other attributes in between)?
fn has_test_attr(toks: &[Tok], fn_idx: usize) -> bool {
    // Walk backwards over `pub`, `crate`, `(`, `)`, `]` ... collecting
    // attribute idents until something that can't precede a fn item.
    let mut j = fn_idx;
    let mut steps = 0;
    while j > 0 && steps < 24 {
        j -= 1;
        steps += 1;
        let t = &toks[j];
        if t.is_ident("test") || t.is_ident("should_panic") {
            // Only count it when it's inside `#[...]`.
            if j >= 2 && toks[j - 1].is_punct('[') && toks[j - 2].is_punct('#') {
                return true;
            }
        }
        if t.is_punct('{') || t.is_punct('}') || t.is_punct(';') {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_literals_are_not_ident_tokens() {
        let l = Lexed::new(
            "let x = 1; // parking_lot here\nlet s = \"thread_rng inside\";\n/* Instant */ let y = 2;",
        );
        assert!(l.ident_lines("parking_lot").is_empty());
        assert!(l.ident_lines("thread_rng").is_empty());
        assert!(l.ident_lines("Instant").is_empty());
        assert_eq!(l.ident_lines("x"), vec![1]);
        assert_eq!(l.ident_lines("y"), vec![3]);
    }

    #[test]
    fn code_identifiers_survive() {
        let l = Lexed::new("use parking_lot::RwLock;\nlet t = Instant::now();");
        assert_eq!(l.ident_lines("parking_lot"), vec![1]);
        assert_eq!(l.ident_lines("Instant"), vec![2]);
    }

    #[test]
    fn string_escapes_are_resolved() {
        let l = Lexed::new(r#"m.counter("web.a\"b", "");"#);
        let lit: Vec<&Tok> = l.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(lit[0].text, "web.a\"b");
        assert_eq!(lit[1].text, "");
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let l = Lexed::new(r##"let r = r#"Sys"Time"#; let lt: &'static str = "x"; let c = 'q';"##);
        let strs: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["Sys\"Time", "x"]);
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn fn_items_and_bodies() {
        let src = "pub fn alpha(x: u32) -> u32 { x + 1 }\nfn beta() { if true { alpha(2); } }\ntrait T { fn decl(&self); }";
        let l = Lexed::new(src);
        let names: Vec<&str> = l.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "decl"]);
        assert!(l.fns[0].body.is_some());
        assert!(l.fns[2].body.is_none());
        // Token inside beta's if-block resolves to beta.
        let call = l
            .toks
            .iter()
            .position(|t| t.is_ident("alpha") && t.line == 2)
            .unwrap();
        assert_eq!(l.enclosing_fn(call).unwrap().name, "beta");
    }

    #[test]
    fn cfg_test_regions() {
        let src = "fn real() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn real2() {}";
        let l = Lexed::new(src);
        let real = l.fns.iter().find(|f| f.name == "real").unwrap();
        let t = l.fns.iter().find(|f| f.name == "t").unwrap();
        let real2 = l.fns.iter().find(|f| f.name == "real2").unwrap();
        assert!(!real.in_test);
        assert!(t.in_test);
        assert!(!real2.in_test);
    }

    #[test]
    fn test_attr_marks_fn() {
        let l = Lexed::new("#[test]\nfn unit() { z.unwrap(); }\n");
        assert!(l.fns[0].in_test);
    }

    #[test]
    fn depth_tracking() {
        let l = Lexed::new("fn f() { { inner(); } outer(); }");
        let inner = l.toks.iter().find(|t| t.is_ident("inner")).unwrap();
        let outer = l.toks.iter().find(|t| t.is_ident("outer")).unwrap();
        assert_eq!(inner.depth, 2);
        assert_eq!(outer.depth, 1);
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let l = Lexed::new("let a = 1.max(2); let b = 1.5; let r = 0..10;");
        assert_eq!(l.ident_lines("max"), vec![1]);
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.5"));
    }
}

//! `cargo xtask analyze` — structure-aware static concurrency and
//! determinism analysis over the whole workspace.
//!
//! Three analyses run on the token stream (see [`crate::lexer`]), all
//! scoped to library code (`crates/*/src/**`, `src/**`) outside
//! `#[cfg(test)]` regions — test code deliberately constructs inversions
//! to exercise the runtime detector:
//!
//! 1. **`lock-order`** — harvests every ranked-lock construction site into
//!    a [`LockRegistry`], scans fn bodies
//!    for nested `.lock()`/`.read()`/`.write()` acquisitions while another
//!    guard is live, builds the static acquired-before graph, and flags
//!    up-rank edges (potential inversions) plus equal-rank cycles. Unlike
//!    the runtime `LockRank` detector, this sees paths that never execute
//!    in tests.
//! 2. **`guard-across-storage`** — flags a live ranked-lock guard held
//!    across a simulated storage access or fan-out dispatch call
//!    ([`STORAGE_DISPATCH`]). Holding a catalog or session lock across a
//!    (virtually slow) storage leg serializes the parallel fan-out engine
//!    and silently inflates simulated time — our analog of clippy's
//!    `await_holding_lock`.
//! 3. **`hash-iter`** — flags iteration over `HashMap`/`HashSet` inside
//!    snapshot/serialization/receipt-producing functions unless the items
//!    are sorted or consumed order-insensitively. Iteration-order leakage
//!    is the one nondeterminism class the wall-clock ban cannot see.
//!
//! Guard liveness is tracked lexically: a `let`-bound guard lives to the
//! end of its enclosing block (or an explicit `drop(guard)`); a guard
//! used as a temporary lives to the end of its statement.

use crate::lexer::{FnItem, Lexed, Tok, TokKind};
use crate::lockgraph::{Edge, LockGraph, LockRegistry, DEFAULT_RANKS};
use crate::rules::Violation;
use std::collections::BTreeMap;
use std::path::Path;

/// Simulated-storage / fan-out dispatch entry points: calls that charge
/// virtual storage latency or dispatch parallel legs. Holding a ranked
/// lock across any of these is a `guard-across-storage` violation.
pub const STORAGE_DISPATCH: &[&str] = &[
    "retry_storage",
    "store_bytes_retry",
    "store_fanout",
    "undo_stored_legs",
    "run_legs",
];

/// Hash-container iteration methods whose order is nondeterministic.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Identifiers that mark a hash-iteration statement as order-safe:
/// explicit sorts, ordered collection targets, or order-insensitive
/// terminal operations.
const ORDER_SAFE_HINTS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "count",
    "sum",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "any",
    "all",
    "len",
    "is_empty",
    "contains",
    "contains_key",
];

/// Fn-name fragments that mark a function as determinism-sensitive
/// (producing snapshots, serialized output, or receipts).
const SENSITIVE_FN_FRAGMENTS: &[&str] = &[
    "snapshot",
    "dump",
    "serialize",
    "json",
    "receipt",
    "render",
    "export",
    "digest",
];

/// Everything the analysis pass produces.
pub struct Analysis {
    pub violations: Vec<Violation>,
    pub registry: LockRegistry,
    pub graph: LockGraph,
    pub ranks: BTreeMap<String, u8>,
    /// Did `LockRank` parse out of sync.rs, or are we on the fallback?
    pub ranks_from_source: bool,
}

/// Is this file in scope for the three analyses (library code only)?
fn in_analysis_scope(path: &str) -> bool {
    (path.starts_with("src/") || path.contains("/src/"))
        && !path.contains("/tests/")
        && !path.contains("/benches/")
        && !path.contains("/examples/")
}

/// Run all three analyses over `files` (workspace-relative paths under
/// `root`). Reads each file once and lexes it once.
pub fn analyze(root: &Path, files: &[String]) -> std::io::Result<Analysis> {
    let ranks_src = std::fs::read_to_string(root.join("crates/srb-types/src/sync.rs")).ok();
    let (ranks, ranks_from_source) = match ranks_src.as_deref().and_then(LockRegistry::parse_ranks)
    {
        Some(r) => (r, true),
        None => (
            DEFAULT_RANKS
                .iter()
                .map(|&(n, r)| (n.to_string(), r))
                .collect(),
            false,
        ),
    };

    let mut lexed_files: Vec<(String, Lexed)> = Vec::new();
    for rel in files {
        if !in_analysis_scope(rel) {
            continue;
        }
        let src = std::fs::read_to_string(root.join(rel))?;
        lexed_files.push((rel.clone(), Lexed::new(&src)));
    }

    // Pass 1: harvest the lock registry from every file.
    let mut registry = LockRegistry::default();
    for (path, lexed) in &lexed_files {
        registry.harvest(path, lexed, &ranks);
    }

    // Pass 2: per-fn-body scans.
    let mut graph = LockGraph::default();
    let mut violations = Vec::new();
    for (path, lexed) in &lexed_files {
        scan_file(path, lexed, &registry, &mut graph, &mut violations);
        hash_iter_file(path, lexed, &mut violations);
    }

    // Graph-level checks.
    let rank_of: BTreeMap<String, u8> = registry
        .defs
        .iter()
        .map(|d| (d.name.clone(), d.rank))
        .collect();
    let rank_ident_of: BTreeMap<String, String> = registry
        .defs
        .iter()
        .map(|d| (d.name.clone(), d.rank_ident.clone()))
        .collect();
    let describe = |name: &str| -> String {
        match (rank_ident_of.get(name), rank_of.get(name)) {
            (Some(ident), Some(r)) => format!("LockRank::{ident} = {r}"),
            _ => "unranked".to_string(),
        }
    };
    for e in graph.inversions(&rank_of) {
        violations.push(Violation {
            path: e.path.clone(),
            line: e.line,
            rule: "lock-order",
            msg: format!(
                "potential lock inversion in `{}`: acquiring `{}` ({}) while \
                 holding `{}` ({}); the hierarchy requires non-increasing rank \
                 (see srb_types::sync)",
                e.func,
                e.acquired,
                describe(&e.acquired),
                e.held,
                describe(&e.held),
            ),
        });
    }
    for cycle in graph.cycles(&rank_of) {
        let first_edge = graph
            .edges
            .values()
            .find(|e| e.held == cycle[0] && cycle.contains(&e.acquired));
        let (path, line) = first_edge
            .map(|e| (e.path.clone(), e.line))
            .unwrap_or_default();
        violations.push(Violation {
            path,
            line,
            rule: "lock-cycle",
            msg: format!(
                "equal-rank acquired-before cycle: {} — two code paths nest these \
                 locks in opposite orders and can deadlock under contention; pick \
                 one order (the runtime rank check cannot see this)",
                cycle.join(" -> ")
            ),
        });
    }

    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(Analysis {
        violations,
        registry,
        graph,
        ranks,
        ranks_from_source,
    })
}

// ------------------------------------------------------- guard tracking --

/// One lock acquisition inside a fn body.
struct Acq {
    /// Token index of the `.` introducing the acquisition call.
    tok: usize,
    line: usize,
    def_name: String,
    def_rank: u8,
    /// Last token index at which the guard is live.
    end: usize,
}

/// Brace-pair map: for each token index, the index of the `}` closing the
/// innermost block containing it (usize::MAX at top level).
fn enclosing_close_map(toks: &[Tok]) -> Vec<usize> {
    let mut close_of_open: BTreeMap<usize, usize> = BTreeMap::new();
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                close_of_open.insert(open, i);
            }
        }
    }
    let mut map = vec![usize::MAX; toks.len()];
    let mut open_stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            open_stack.push(i);
        }
        map[i] = open_stack
            .last()
            .and_then(|o| close_of_open.get(o).copied())
            .unwrap_or(usize::MAX);
        if t.is_punct('}') {
            open_stack.pop();
            // The closing brace itself belongs to the block it closes.
            map[i] = i;
        }
    }
    map
}

/// The identifier a `.lock()`/`.read()`/`.write()` receiver chain ends in:
/// `self.grid.load.entries.read()` → `entries`;
/// `self.shards[shard_of(p)].write()` → `shards`.
fn receiver_ident(toks: &[Tok], dot_idx: usize) -> Option<String> {
    let mut j = dot_idx;
    if j == 0 {
        return None;
    }
    j -= 1;
    if toks[j].is_punct('?') {
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    if toks[j].is_punct(']') {
        let mut depth = 1usize;
        while j > 0 && depth > 0 {
            j -= 1;
            if toks[j].is_punct(']') {
                depth += 1;
            } else if toks[j].is_punct('[') {
                depth -= 1;
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    (toks[j].kind == TokKind::Ident).then(|| toks[j].text.clone())
}

/// Token index where the statement containing `i` starts (one past the
/// previous `;`, `{`, or `}`).
fn statement_start(toks: &[Tok], i: usize, floor: usize) -> usize {
    let mut j = i;
    while j > floor {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return j;
        }
        j -= 1;
    }
    floor
}

/// Token index ending the statement containing `i` (capped at `cap`):
/// the next top-level `;`, the `{` opening an expression-statement body
/// (`for`/`if`/`while` heads), or the `}` closing the enclosing block.
/// Braces and semicolons inside nested parens (closure bodies) are
/// skipped.
fn statement_end(toks: &[Tok], i: usize, cap: usize) -> usize {
    let mut paren = 0isize;
    let mut brace = 0isize;
    let mut j = i;
    while j < cap.min(toks.len()) {
        let t = &toks[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('{') {
            if paren <= 0 {
                return j;
            }
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
            if brace < 0 {
                return j;
            }
        } else if t.is_punct(';') && paren <= 0 && brace <= 0 {
            return j;
        }
        j += 1;
    }
    j
}

/// Scan one file's fn bodies for nested acquisitions and
/// guard-across-storage sites.
fn scan_file(
    path: &str,
    lexed: &Lexed,
    registry: &LockRegistry,
    graph: &mut LockGraph,
    violations: &mut Vec<Violation>,
) {
    let toks = &lexed.toks;
    let encl_close = enclosing_close_map(toks);

    for f in &lexed.fns {
        if f.in_test {
            continue;
        }
        let Some((body_open, body_close)) = f.body else {
            continue;
        };
        let mut acqs: Vec<Acq> = Vec::new();

        let mut i = body_open + 1;
        while i < body_close {
            // Acquisition: `. lock ( )` / `. read ( )` / `. write ( )`.
            let is_acq = toks[i].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| {
                    t.is_ident("lock") || t.is_ident("read") || t.is_ident("write")
                })
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 3).is_some_and(|t| t.is_punct(')'));
            if is_acq {
                if let Some(recv) = receiver_ident(toks, i) {
                    if let Some(def) = registry.resolve(path, &recv) {
                        let stmt_start = statement_start(toks, i, body_open + 1);
                        let stmt_end = statement_end(toks, i, body_close);
                        // A `let`-bound guard where the acquisition ends the
                        // expression lives to the end of the enclosing block;
                        // anything else is a temporary living to the end of
                        // its statement.
                        let is_let = toks[stmt_start].is_ident("let");
                        let chain_continues = toks
                            .get(i + 4)
                            .is_some_and(|t| t.is_punct('.') || t.is_punct('?'));
                        let mut end = if is_let && !chain_continues {
                            encl_close[i].min(body_close)
                        } else {
                            stmt_end
                        };
                        // An explicit `drop(guard)` ends liveness early.
                        if is_let && !chain_continues {
                            if let Some(g) = toks
                                .get(stmt_start + 1..i)
                                .unwrap_or(&[])
                                .iter()
                                .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))
                            {
                                let mut k = stmt_end;
                                while k + 3 < end {
                                    if toks[k].is_ident("drop")
                                        && toks[k + 1].is_punct('(')
                                        && toks[k + 2].is_ident(&g.text)
                                        && toks[k + 3].is_punct(')')
                                    {
                                        end = k;
                                        break;
                                    }
                                    k += 1;
                                }
                            }
                        }
                        // Record the nesting edge against every live guard.
                        for a in acqs.iter().filter(|a| a.tok < i && i <= a.end) {
                            graph.add(Edge {
                                held: a.def_name.clone(),
                                acquired: def.name.clone(),
                                path: path.to_string(),
                                line: toks[i + 1].line,
                                func: f.name.clone(),
                            });
                        }
                        acqs.push(Acq {
                            tok: i,
                            line: toks[i + 1].line,
                            def_name: def.name.clone(),
                            def_rank: def.rank,
                            end,
                        });
                    }
                }
                i += 4;
                continue;
            }
            // Storage/fan-out dispatch while a guard is live.
            let is_dispatch = toks[i].kind == TokKind::Ident
                && STORAGE_DISPATCH.contains(&toks[i].text.as_str())
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && !(i > 0 && toks[i - 1].is_ident("fn"));
            if is_dispatch {
                for a in acqs.iter().filter(|a| a.tok < i && i <= a.end) {
                    violations.push(Violation {
                        path: path.to_string(),
                        line: toks[i].line,
                        rule: "guard-across-storage",
                        msg: format!(
                            "`{}` (rank {}, acquired line {}) is held across `{}` in \
                             `{}`; storage legs charge simulated latency and fan out \
                             in parallel — holding a ranked lock here serializes them. \
                             Drop the guard (or clone what you need) before dispatch",
                            a.def_name, a.def_rank, a.line, toks[i].text, f.name
                        ),
                    });
                }
            }
            i += 1;
        }
    }
}

// ------------------------------------------------------------ hash-iter --

/// Identifiers declared as `HashMap`/`HashSet` (`hash`) and
/// `BTreeMap`/`BTreeSet` (`ordered`) anywhere in the file: struct fields,
/// params (`x: HashMap<…>`), and `let x = HashMap::new()` bindings.
fn container_idents(lexed: &Lexed) -> (Vec<String>, Vec<String>) {
    let toks = &lexed.toks;
    let mut hash = Vec::new();
    let mut ordered = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_hash = t.is_ident("HashMap") || t.is_ident("HashSet");
        let is_ordered = t.is_ident("BTreeMap") || t.is_ident("BTreeSet");
        if !is_hash && !is_ordered {
            continue;
        }
        // `name : [&|&mut] HashMap` — field, param, or typed binding.
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            if p.is_punct('&') || p.is_ident("mut") || p.kind == TokKind::Lifetime {
                j -= 1;
            } else {
                break;
            }
        }
        let named = if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].kind == TokKind::Ident {
            Some(toks[j - 2].text.clone())
        } else if j >= 2 && toks[j - 1].is_punct('=') {
            // `let [mut] x = HashMap::new()` — find the binding.
            let start = statement_start(toks, j - 1, 0);
            if toks[start].is_ident("let") {
                toks[start + 1..j - 1]
                    .iter()
                    .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))
                    .map(|t| t.text.clone())
            } else {
                None
            }
        } else {
            None
        };
        if let Some(name) = named {
            if is_hash {
                hash.push(name);
            } else {
                ordered.push(name);
            }
        }
    }
    (hash, ordered)
}

/// Does this fn produce snapshots / serialized output / receipts?
fn is_sensitive_fn(f: &FnItem) -> bool {
    let name = f.name.to_lowercase();
    SENSITIVE_FN_FRAGMENTS.iter().any(|w| name.contains(w))
}

/// Flag unsorted hash-container iteration inside determinism-sensitive
/// functions.
fn hash_iter_file(path: &str, lexed: &Lexed, violations: &mut Vec<Violation>) {
    let toks = &lexed.toks;
    let (hash, ordered) = container_idents(lexed);
    if hash.is_empty() {
        return;
    }
    for f in &lexed.fns {
        if f.in_test || !is_sensitive_fn(f) {
            continue;
        }
        let Some((body_open, body_close)) = f.body else {
            continue;
        };
        for i in body_open + 1..body_close {
            // `.iter()`-family call on a hash-typed receiver…
            let site = toks[i].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| {
                    t.kind == TokKind::Ident && ITER_METHODS.contains(&t.text.as_str())
                })
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && receiver_ident(toks, i).is_some_and(|r| hash.contains(&r));
            // …or `for x in [&[mut]] some.hash_field {`.
            let for_site = toks[i].is_ident("for") && {
                // Find the matching `in`, then the loop-body `{`.
                (i + 1..body_close.min(i + 24))
                    .find(|&j| toks[j].is_ident("in"))
                    .is_some_and(|in_idx| {
                        let open = (in_idx + 1..body_close)
                            .find(|&j| toks[j].is_punct('{'))
                            .unwrap_or(body_close);
                        let expr = &toks[in_idx + 1..open];
                        !expr.iter().any(|t| t.is_punct('(')) // plain chain only
                            && expr
                                .iter()
                                .rev()
                                .find(|t| t.kind == TokKind::Ident)
                                .is_some_and(|t| hash.contains(&t.text))
                    })
            };
            if !site && !for_site {
                continue;
            }
            let line = toks[i].line;
            // Order-safe if the statement sorts, targets an ordered
            // container, or ends in an order-insensitive terminal op.
            let stmt_start = statement_start(toks, i, body_open + 1);
            let stmt_end = statement_end(toks, i, body_close);
            let stmt = &toks[stmt_start..stmt_end.min(toks.len())];
            let safe_in_stmt = stmt.iter().any(|t| {
                t.kind == TokKind::Ident
                    && (ORDER_SAFE_HINTS.contains(&t.text.as_str()) || ordered.contains(&t.text))
            });
            // `let v = …collect…;` later sorted: `v.sort…(` anywhere after.
            let sorted_later = toks[stmt_start].is_ident("let")
                && toks[stmt_start + 1..i]
                    .iter()
                    .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))
                    .is_some_and(|v| {
                        let mut k = stmt_end;
                        while k + 2 < body_close {
                            if toks[k].is_ident(&v.text)
                                && toks[k + 1].is_punct('.')
                                && toks[k + 2].text.starts_with("sort")
                            {
                                return true;
                            }
                            k += 1;
                        }
                        false
                    });
            if !safe_in_stmt && !sorted_later {
                violations.push(Violation {
                    path: path.to_string(),
                    line,
                    rule: "hash-iter",
                    msg: format!(
                        "iteration over a HashMap/HashSet in `{}` leaks nondeterministic \
                         order into snapshot/serialized output; sort the items first \
                         (collect + sort, or use a BTreeMap/BTreeSet)",
                        f.name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let lexed = Lexed::new(src);
        let ranks: BTreeMap<String, u8> = DEFAULT_RANKS
            .iter()
            .map(|&(n, r)| (n.to_string(), r))
            .collect();
        let mut registry = LockRegistry::default();
        registry.harvest("crates/x/src/a.rs", &lexed, &ranks);
        let mut graph = LockGraph::default();
        let mut violations = Vec::new();
        scan_file(
            "crates/x/src/a.rs",
            &lexed,
            &registry,
            &mut graph,
            &mut violations,
        );
        hash_iter_file("crates/x/src/a.rs", &lexed, &mut violations);
        let rank_of: BTreeMap<String, u8> = registry
            .defs
            .iter()
            .map(|d| (d.name.clone(), d.rank))
            .collect();
        for e in graph.inversions(&rank_of) {
            violations.push(Violation {
                path: e.path.clone(),
                line: e.line,
                rule: "lock-order",
                msg: String::new(),
            });
        }
        for _ in graph.cycles(&rank_of) {
            violations.push(Violation {
                path: String::new(),
                line: 0,
                rule: "lock-cycle",
                msg: String::new(),
            });
        }
        violations
    }

    const DEFS: &str = r#"
struct S {
    topo: RwLock<u32>,
    core: RwLock<u32>,
}
impl S {
    fn new() -> S {
        S {
            topo: RwLock::new(LockRank::Topology, "net.topo", 0),
            core: RwLock::new(LockRank::CoreState, "core.state", 0),
        }
    }
"#;

    #[test]
    fn nested_uprank_acquisition_is_an_inversion() {
        let src = format!(
            "{DEFS}
    fn bad(&self) {{
        let g = self.topo.read();
        let h = self.core.write();
    }}
}}"
        );
        let v = run(&src);
        assert!(v.iter().any(|v| v.rule == "lock-order"), "{v:?}");
    }

    #[test]
    fn nested_downrank_acquisition_is_fine() {
        let src = format!(
            "{DEFS}
    fn good(&self) {{
        let g = self.core.write();
        let h = self.topo.read();
    }}
}}"
        );
        let v = run(&src);
        assert!(v.iter().all(|v| v.rule != "lock-order"), "{v:?}");
    }

    #[test]
    fn guard_dropped_before_acquisition_makes_no_edge() {
        let src = format!(
            "{DEFS}
    fn ok(&self) {{
        let g = self.topo.read();
        drop(g);
        let h = self.core.write();
    }}
}}"
        );
        let v = run(&src);
        assert!(v.iter().all(|v| v.rule != "lock-order"), "{v:?}");
    }

    #[test]
    fn block_scoped_guard_ends_at_close_brace() {
        let src = format!(
            "{DEFS}
    fn ok(&self) {{
        {{
            let g = self.topo.read();
        }}
        let h = self.core.write();
    }}
}}"
        );
        assert!(run(&src).iter().all(|v| v.rule != "lock-order"));
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let src = format!(
            "{DEFS}
    fn ok(&self) {{
        let n = self.topo.read().clone();
        let h = self.core.write();
    }}
}}"
        );
        assert!(run(&src).iter().all(|v| v.rule != "lock-order"));
    }

    #[test]
    fn equal_rank_opposite_orders_is_a_cycle() {
        let src = r#"
struct S { a: RwLock<u32>, b: RwLock<u32> }
impl S {
    fn new() -> S {
        S { a: RwLock::new(LockRank::McatTable, "mcat.a", 0),
            b: RwLock::new(LockRank::McatTable, "mcat.b", 0) }
    }
    fn one(&self) { let g = self.a.read(); let h = self.b.read(); }
    fn two(&self) { let g = self.b.write(); let h = self.a.write(); }
}"#;
        let v = run(src);
        assert!(v.iter().any(|v| v.rule == "lock-cycle"), "{v:?}");
    }

    #[test]
    fn guard_across_storage_dispatch_is_flagged() {
        let src = format!(
            "{DEFS}
    fn bad(&self) {{
        let g = self.core.write();
        let fan = self.store_fanout(legs, data);
    }}
    fn ok(&self) {{
        let n = {{ let g = self.core.write(); g.len() }};
        let fan = self.store_fanout(legs, data);
    }}
}}"
        );
        let v = run(&src);
        let hits: Vec<_> = v
            .iter()
            .filter(|v| v.rule == "guard-across-storage")
            .collect();
        assert_eq!(hits.len(), 1, "{v:?}");
    }

    #[test]
    fn hash_iter_in_snapshot_fn_flagged_unless_sorted() {
        let src = r#"
struct T { rows: HashMap<u32, String> }
impl T {
    fn snapshot(&self) -> Vec<String> {
        self.rows.values().cloned().collect()
    }
    fn dump(&self) -> Vec<String> {
        let mut out: Vec<String> = self.rows.values().cloned().collect();
        out.sort();
        out
    }
    fn lookup(&self) -> Vec<String> {
        self.rows.values().cloned().collect()
    }
}"#;
        let v = run(src);
        let hits: Vec<_> = v.iter().filter(|v| v.rule == "hash-iter").collect();
        // `snapshot` leaks; `dump` sorts afterwards; `lookup` is not a
        // sensitive fn.
        assert_eq!(hits.len(), 1, "{v:?}");
        assert_eq!(hits[0].line, 5);
    }

    #[test]
    fn hash_iter_for_loop_and_btree_collect() {
        let src = r#"
struct T { rows: HashMap<u32, String>, sorted: BTreeMap<u32, String> }
impl T {
    fn render(&self) -> String {
        let mut s = String::new();
        for v in &self.rows {
            s.push_str(v);
        }
        s
    }
    fn render_ok(&self) -> String {
        let m: BTreeMap<u32, String> = self.rows.iter().map(|(k, v)| (*k, v.clone())).collect();
        let mut s = String::new();
        for v in &self.sorted {
            s.push_str(v);
        }
        s
    }
}"#;
        let v = run(src);
        let hits: Vec<_> = v.iter().filter(|v| v.rule == "hash-iter").collect();
        assert_eq!(hits.len(), 1, "{v:?}");
        assert_eq!(hits[0].line, 6);
    }

    #[test]
    fn order_insensitive_terminals_are_safe() {
        let src = r#"
struct T { rows: HashMap<u32, u64> }
impl T {
    fn snapshot_total(&self) -> u64 {
        self.rows.values().sum()
    }
    fn snapshot_len(&self) -> usize {
        self.rows.keys().count()
    }
}"#;
        assert!(run(src).iter().all(|v| v.rule != "hash-iter"));
    }
}

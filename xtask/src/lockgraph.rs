//! The static lock registry and acquired-before graph.
//!
//! Every lock in the workspace is constructed through
//! `srb_types::sync::{Mutex, RwLock}::new(LockRank::X, "name", …)`, which
//! makes the whole lock population *harvestable from source*: this module
//! scans the token stream for those construction sites, records each
//! lock's rank and diagnostic name together with the field or binding it
//! is stored in, and then lets the analyzer accumulate "lock A was held
//! while lock B was acquired" edges into a directed graph.
//!
//! The declared hierarchy (`Session > CoreState > McatTable > Storage >
//! Topology`) is not hard-coded: the discriminants are parsed out of the
//! `LockRank` enum in `crates/srb-types/src/sync.rs`, so adding a rank
//! there is automatically picked up here (a parse failure falls back to
//! the five known ranks and is reported).
//!
//! Checks on the finished graph:
//! - every edge must be non-increasing in rank (an up-rank edge is a
//!   potential inversion — the runtime detector would panic only if that
//!   path actually executes);
//! - the subgraph of equal-rank edges must be acyclic (two functions
//!   nesting two same-rank locks in opposite orders deadlock under
//!   contention, which the per-acquisition runtime check cannot see).
//!
//! `emit_dot` renders the graph for `docs/lock-graph.dot`, clustered by
//! rank so down-rank edges read top-to-bottom.

use crate::lexer::{Lexed, TokKind};
use std::collections::BTreeMap;

/// Fallback hierarchy used when `sync.rs` cannot be parsed; mirrors
/// `srb_types::sync::LockRank`.
pub const DEFAULT_RANKS: &[(&str, u8)] = &[
    ("Topology", 0),
    ("Storage", 1),
    ("McatTable", 2),
    ("CoreState", 3),
    ("Session", 4),
];

/// One harvested `Mutex::new` / `RwLock::new` construction site.
#[derive(Debug, Clone)]
pub struct LockDef {
    /// Diagnostic name from the construction site (`"net.load.entries"`).
    pub name: String,
    /// `LockRank` variant ident (`"Topology"`).
    pub rank_ident: String,
    /// Numeric rank (higher = acquired earlier).
    pub rank: u8,
    /// Field or `let` binding the lock is stored in, when recoverable.
    #[allow(dead_code)] // resolution goes through the registry maps; kept for tests/debugging
    pub field: Option<String>,
    /// Workspace-relative path of the construction site.
    pub path: String,
    /// 1-based line of the construction site.
    pub line: usize,
}

/// All locks in the workspace, with lookup tables for resolving an
/// acquisition's receiver identifier back to a definition.
#[derive(Debug, Default)]
pub struct LockRegistry {
    pub defs: Vec<LockDef>,
    /// `(path, field)` → def index: in-file resolution (same struct).
    by_file_field: BTreeMap<(String, String), usize>,
    /// `field` → def indices: cross-file resolution, only used when the
    /// field name is globally unambiguous.
    by_field: BTreeMap<String, Vec<usize>>,
}

impl LockRegistry {
    /// Parse `LockRank` discriminants from the sync module source.
    /// Returns `(name → rank)` or `None` when the enum cannot be found.
    pub fn parse_ranks(sync_src: &str) -> Option<BTreeMap<String, u8>> {
        let lexed = Lexed::new(sync_src);
        let toks = &lexed.toks;
        let start = (0..toks.len()).find(|&i| {
            toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident("LockRank"))
        })?;
        let open = (start..toks.len()).find(|&i| toks[i].is_punct('{'))?;
        let close = crate::lexer::matching_close(toks, open)?;
        let mut ranks = BTreeMap::new();
        let mut i = open + 1;
        while i + 2 < close {
            // `Variant = N ,`
            if toks[i].kind == TokKind::Ident
                && toks[i + 1].is_punct('=')
                && toks[i + 2].kind == TokKind::Num
            {
                if let Ok(n) = toks[i + 2].text.parse::<u8>() {
                    ranks.insert(toks[i].text.clone(), n);
                }
                i += 3;
            } else {
                i += 1;
            }
        }
        (!ranks.is_empty()).then_some(ranks)
    }

    /// Harvest every ranked-lock construction site in `lexed` (skipping
    /// `#[cfg(test)]` regions — test locks like `"test.outer"` are not
    /// part of the production lock population).
    pub fn harvest(&mut self, path: &str, lexed: &Lexed, ranks: &BTreeMap<String, u8>) {
        let toks = &lexed.toks;
        for i in 0..toks.len() {
            if !(toks[i].is_ident("Mutex") || toks[i].is_ident("RwLock")) {
                continue;
            }
            // `Mutex :: new ( LockRank :: Rank , "name"`
            let pat = [(1, ":"), (2, ":"), (4, "("), (6, ":"), (7, ":"), (9, ",")];
            if !pat.iter().all(|&(off, p)| {
                toks.get(i + off)
                    .is_some_and(|t| t.is_punct(p.chars().next().unwrap_or(' ')))
            }) {
                continue;
            }
            if !toks.get(i + 3).is_some_and(|t| t.is_ident("new"))
                || !toks.get(i + 5).is_some_and(|t| t.is_ident("LockRank"))
            {
                continue;
            }
            let Some(rank_tok) = toks.get(i + 8).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            let Some(name_tok) = toks.get(i + 10).filter(|t| t.kind == TokKind::Str) else {
                continue;
            };
            if lexed.in_test(i) {
                continue;
            }
            let rank = ranks.get(&rank_tok.text).copied().unwrap_or(0);
            let field = binding_ident_before(lexed, i);
            let idx = self.defs.len();
            self.defs.push(LockDef {
                name: name_tok.text.clone(),
                rank_ident: rank_tok.text.clone(),
                rank,
                field: field.clone(),
                path: path.to_string(),
                line: toks[i].line,
            });
            if let Some(f) = field {
                self.by_file_field
                    .insert((path.to_string(), f.clone()), idx);
                self.by_field.entry(f).or_default().push(idx);
            }
        }
    }

    /// Resolve an acquisition receiver identifier to a lock definition:
    /// in-file field first, then a globally unambiguous field name.
    pub fn resolve(&self, path: &str, field: &str) -> Option<&LockDef> {
        if let Some(&i) = self
            .by_file_field
            .get(&(path.to_string(), field.to_string()))
        {
            return Some(&self.defs[i]);
        }
        match self.by_field.get(field).map(Vec::as_slice) {
            Some([only]) => Some(&self.defs[*only]),
            _ => None,
        }
    }
}

/// Walk backward from token `i` to recover the field or `let` binding a
/// constructed value is assigned to. Skips balanced `(…)`/`[…]` groups
/// and steps out of unmatched openers (expression nesting like
/// `.map(|_| RwLock::new(…))`), stopping at a statement/field boundary
/// (`;`, `{`, `}`, or a top-level `,`).
fn binding_ident_before(lexed: &Lexed, i: usize) -> Option<String> {
    let toks = &lexed.toks;
    let mut span = Vec::new(); // tokens before `i`, collected in reverse
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(')') || t.is_punct(']') {
            // Skip the balanced group.
            let (open, close) = if t.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 1usize;
            while j > 0 && depth > 0 {
                j -= 1;
                if toks[j].is_punct(close) {
                    depth += 1;
                } else if toks[j].is_punct(open) {
                    depth -= 1;
                }
            }
            continue;
        }
        if t.is_punct('(') || t.is_punct('[') {
            // Unmatched opener: we are inside an argument list — step out.
            continue;
        }
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(',') {
            break;
        }
        span.push(j);
    }
    // `span` is reversed; read it forward.
    span.reverse();
    let fwd: Vec<&crate::lexer::Tok> = span.iter().map(|&k| &toks[k]).collect();
    match fwd.as_slice() {
        // `let [mut] x …`
        [first, rest @ ..] if first.is_ident("let") => rest
            .iter()
            .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))
            .map(|t| t.text.clone()),
        // `field : …`
        [first, second, ..] if first.kind == TokKind::Ident && second.is_punct(':') => {
            Some(first.text.clone())
        }
        _ => None,
    }
}

/// One acquired-before edge: `held` was live when `acquired` was taken.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Lock name held at the time.
    pub held: String,
    /// Lock name being acquired.
    pub acquired: String,
    /// Site of the inner acquisition.
    pub path: String,
    pub line: usize,
    /// Function the nesting occurs in.
    pub func: String,
}

/// The static acquired-before graph over lock *names*.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// First-seen site per (held, acquired) pair.
    pub edges: BTreeMap<(String, String), Edge>,
}

impl LockGraph {
    pub fn add(&mut self, edge: Edge) {
        self.edges
            .entry((edge.held.clone(), edge.acquired.clone()))
            .or_insert(edge);
    }

    /// Edges that climb the hierarchy (inner rank > outer rank): each is a
    /// potential inversion the runtime detector would panic on.
    pub fn inversions<'a>(
        &'a self,
        rank_of: &'a BTreeMap<String, u8>,
    ) -> impl Iterator<Item = &'a Edge> {
        self.edges.values().filter(move |e| {
            match (rank_of.get(&e.held), rank_of.get(&e.acquired)) {
                (Some(h), Some(a)) => a > h,
                _ => false,
            }
        })
    }

    /// Cycles among equal-rank edges (self-loops excluded: re-acquiring a
    /// lock of the same *name* is usually a different instance of the same
    /// struct, e.g. two memfs shards in index order).
    pub fn cycles(&self, rank_of: &BTreeMap<String, u8>) -> Vec<Vec<String>> {
        // Adjacency restricted to equal-rank, non-self edges.
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (held, acquired) in self.edges.keys() {
            if held != acquired && rank_of.get(held) == rank_of.get(acquired) {
                adj.entry(held).or_default().push(acquired);
            }
        }
        let mut cycles = Vec::new();
        let mut done: Vec<&str> = Vec::new();
        for &start in adj.keys() {
            if done.contains(&start) {
                continue;
            }
            // DFS with an explicit path stack to extract the cycle nodes.
            let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
            let mut path: Vec<&str> = vec![start];
            while let Some(&(node, next)) = stack.last() {
                let succs = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
                if next < succs.len() {
                    if let Some(top) = stack.last_mut() {
                        top.1 += 1;
                    }
                    let s = succs[next];
                    if let Some(pos) = path.iter().position(|&p| p == s) {
                        let mut cyc: Vec<String> =
                            path[pos..].iter().map(|s| s.to_string()).collect();
                        cyc.push(s.to_string());
                        cycles.push(cyc);
                    } else if !done.contains(&s) {
                        stack.push((s, 0));
                        path.push(s);
                    }
                } else {
                    stack.pop();
                    path.pop();
                    done.push(node);
                }
            }
        }
        cycles.sort();
        cycles.dedup();
        cycles
    }

    /// Render the graph as GraphViz DOT, clustered by rank.
    pub fn emit_dot(&self, registry: &LockRegistry, ranks: &BTreeMap<String, u8>) -> String {
        let mut by_rank: BTreeMap<u8, Vec<&LockDef>> = BTreeMap::new();
        for def in &registry.defs {
            by_rank.entry(def.rank).or_default().push(def);
        }
        let rank_name = |r: u8| {
            ranks
                .iter()
                .find(|&(_, &v)| v == r)
                .map(|(n, _)| n.as_str())
                .unwrap_or("?")
        };
        let mut out = String::new();
        out.push_str("// Static acquired-before lock graph. Regenerate with\n");
        out.push_str("//   cargo xtask analyze --dot\n");
        out.push_str("// Edges point from the outer (held) lock to the inner (acquired)\n");
        out.push_str("// lock; every edge must flow downward in rank.\n");
        out.push_str("digraph lock_order {\n");
        out.push_str("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
        for (&rank, defs) in by_rank.iter().rev() {
            out.push_str(&format!(
                "  subgraph cluster_rank{rank} {{\n    label=\"rank {rank} · {}\";\n",
                rank_name(rank)
            ));
            // One node per lock name; tooltip lists every construction
            // site (a name can be constructed in several places, e.g. a
            // sharded lock array).
            let mut sites: BTreeMap<&str, Vec<String>> = BTreeMap::new();
            for d in defs {
                sites
                    .entry(d.name.as_str())
                    .or_default()
                    .push(format!("{}:{}", d.path, d.line));
            }
            for (name, mut at) in sites {
                at.sort();
                at.dedup();
                out.push_str(&format!("    \"{name}\" [tooltip=\"{}\"];\n", at.join(" ")));
            }
            out.push_str("  }\n");
        }
        for edge in self.edges.values() {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}:{}\"];\n",
                edge.held,
                edge.acquired,
                edge.path.rsplit('/').next().unwrap_or(&edge.path),
                edge.line
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranks() -> BTreeMap<String, u8> {
        DEFAULT_RANKS
            .iter()
            .map(|&(n, r)| (n.to_string(), r))
            .collect()
    }

    #[test]
    fn parses_ranks_from_enum_source() {
        let src = "pub enum LockRank {\n    /// doc\n    Topology = 0,\n    Storage = 1,\n    McatTable = 2,\n    CoreState = 3,\n    Session = 4,\n}";
        let r = LockRegistry::parse_ranks(src).unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r["Session"], 4);
        assert_eq!(r["Topology"], 0);
    }

    #[test]
    fn harvests_field_and_let_bindings() {
        let src = r#"
struct S { entries: RwLock<u32> }
impl S {
    fn new() -> S {
        S { entries: RwLock::new(LockRank::Topology, "net.entries", 0) }
    }
}
fn local() {
    let cache = Mutex::new(LockRank::Storage, "storage.cache", ());
}
"#;
        let lexed = Lexed::new(src);
        let mut reg = LockRegistry::default();
        reg.harvest("crates/x/src/a.rs", &lexed, &ranks());
        assert_eq!(reg.defs.len(), 2);
        assert_eq!(reg.defs[0].name, "net.entries");
        assert_eq!(reg.defs[0].field.as_deref(), Some("entries"));
        assert_eq!(reg.defs[0].rank, 0);
        assert_eq!(reg.defs[1].field.as_deref(), Some("cache"));
        assert_eq!(reg.defs[1].rank, 1);
        assert!(reg.resolve("crates/x/src/a.rs", "entries").is_some());
        // Unambiguous cross-file fallback.
        assert!(reg.resolve("crates/y/src/b.rs", "cache").is_some());
    }

    #[test]
    fn harvests_through_expression_nesting() {
        // The memfs idiom: construction inside a closure inside a chain.
        let src = r#"
struct M { shards: Vec<RwLock<u32>> }
impl M {
    fn new() -> M {
        M {
            shards: (0..4)
                .map(|_| RwLock::new(LockRank::Storage, "storage.memfs.shard", 0))
                .collect(),
        }
    }
}
"#;
        let lexed = Lexed::new(src);
        let mut reg = LockRegistry::default();
        reg.harvest("crates/x/src/m.rs", &lexed, &ranks());
        assert_eq!(reg.defs.len(), 1);
        assert_eq!(reg.defs[0].field.as_deref(), Some("shards"));
    }

    #[test]
    fn test_region_locks_are_not_harvested() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let l = Mutex::new(LockRank::Session, \"test.outer\", ()); }\n}";
        let lexed = Lexed::new(src);
        let mut reg = LockRegistry::default();
        reg.harvest("crates/x/src/a.rs", &lexed, &ranks());
        assert!(reg.defs.is_empty());
    }

    #[test]
    fn ambiguous_field_does_not_resolve_cross_file() {
        let mut reg = LockRegistry::default();
        let r = ranks();
        let a = Lexed::new("struct A { inner: RwLock<u32> }\nfn f() { let x = A { inner: RwLock::new(LockRank::McatTable, \"mcat.a\", 0) }; }");
        let b = Lexed::new("struct B { inner: RwLock<u32> }\nfn f() { let x = B { inner: RwLock::new(LockRank::Topology, \"net.b\", 0) }; }");
        reg.harvest("crates/x/src/a.rs", &a, &r);
        reg.harvest("crates/y/src/b.rs", &b, &r);
        // In-file resolution picks the right one.
        assert_eq!(
            reg.resolve("crates/x/src/a.rs", "inner").unwrap().name,
            "mcat.a"
        );
        assert_eq!(
            reg.resolve("crates/y/src/b.rs", "inner").unwrap().name,
            "net.b"
        );
        // A third file cannot resolve the ambiguous name.
        assert!(reg.resolve("crates/z/src/c.rs", "inner").is_none());
    }

    #[test]
    fn inversions_and_cycles() {
        let rank_of: BTreeMap<String, u8> = [
            ("a".to_string(), 2u8),
            ("b".to_string(), 2u8),
            ("low".to_string(), 1u8),
            ("high".to_string(), 3u8),
        ]
        .into_iter()
        .collect();
        let mut g = LockGraph::default();
        let mk = |held: &str, acq: &str| Edge {
            held: held.into(),
            acquired: acq.into(),
            path: "p.rs".into(),
            line: 1,
            func: "f".into(),
        };
        g.add(mk("low", "high")); // up-rank: inversion
        g.add(mk("a", "b")); // equal rank, fine alone
        g.add(mk("b", "a")); // ... but closes a cycle
        g.add(mk("high", "low")); // down-rank: fine
        let inv: Vec<_> = g.inversions(&rank_of).collect();
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].acquired, "high");
        let cycles = g.cycles(&rank_of);
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].contains(&"a".to_string()) && cycles[0].contains(&"b".to_string()));
    }

    #[test]
    fn dot_contains_clusters_and_edges() {
        let mut reg = LockRegistry::default();
        let lexed = Lexed::new(
            "struct S { a: RwLock<u32>, b: RwLock<u32> }\nfn f() -> S { S { a: RwLock::new(LockRank::Session, \"web.a\", 0), b: RwLock::new(LockRank::Storage, \"storage.b\", 0) } }",
        );
        reg.harvest("crates/x/src/a.rs", &lexed, &ranks());
        let mut g = LockGraph::default();
        g.add(Edge {
            held: "web.a".into(),
            acquired: "storage.b".into(),
            path: "crates/x/src/a.rs".into(),
            line: 2,
            func: "f".into(),
        });
        let dot = g.emit_dot(&reg, &ranks());
        assert!(dot.contains("cluster_rank4"));
        assert!(dot.contains("\"web.a\" -> \"storage.b\""));
        assert!(dot.contains("a.rs:2"));
    }
}

//! Source masking: blank out comments and string/char literals so the rule
//! scanners only ever see real code tokens.
//!
//! A full Rust parse is overkill for the invariants we check, but plain
//! substring search is not enough: `// parking_lot is banned` in a comment
//! or `"thread_rng"` in a test fixture must not trip a rule. Masking
//! replaces every comment and literal character with a space while
//! preserving byte offsets and line numbers, so scanners report accurate
//! locations on the masked text.

/// Replace the contents of comments, string literals, and char literals
/// with spaces (newlines are kept so line numbers survive).
pub fn mask_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Push `b` or, if masking, a space — newlines always survive.
    fn put(out: &mut Vec<u8>, b: u8, masked: bool) {
        if b == b'\n' || !masked {
            out.push(b);
        } else {
            out.push(b' ');
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        if b == b'/' && next == Some(b'/') {
            // Line comment (incl. doc comments).
            while i < bytes.len() && bytes[i] != b'\n' {
                put(&mut out, bytes[i], true);
                i += 1;
            }
        } else if b == b'/' && next == Some(b'*') {
            // Block comment, nesting allowed.
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    put(&mut out, b'/', true);
                    put(&mut out, b'*', true);
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    put(&mut out, b'*', true);
                    put(&mut out, b'/', true);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    put(&mut out, bytes[i], true);
                    i += 1;
                }
            }
        } else if b == b'"' {
            i = mask_string(bytes, i, &mut out);
        } else if (b == b'r' || b == b'b') && is_raw_or_byte_string(bytes, i) {
            // r"...", r#"..."#, b"...", br#"..."# — skip the prefix, then
            // mask the (possibly raw) string body.
            let mut j = i;
            while bytes[j] == b'r' || bytes[j] == b'b' {
                put(&mut out, bytes[j], false);
                j += 1;
            }
            if bytes[j] == b'#' || bytes[j] == b'"' {
                i = mask_raw_string(bytes, j, &mut out);
            } else {
                i = j;
            }
        } else if b == b'\'' {
            // Char literal or lifetime. A lifetime is `'` + ident not
            // followed by a closing `'`; a char literal always closes.
            if let Some(end) = char_literal_end(bytes, i) {
                for &c in &bytes[i..end] {
                    put(&mut out, c, true);
                }
                i = end;
            } else {
                put(&mut out, b, false);
                i += 1;
            }
        } else {
            put(&mut out, b, false);
            i += 1;
        }
    }
    String::from_utf8(out).expect("masking preserves UTF-8: multibyte chars only inside masked regions are replaced byte-for-byte only when ASCII")
}

/// Does `bytes[i..]` start a raw/byte string prefix (`r"`, `r#`, `br"`,
/// `b"`, ...) rather than an identifier like `result`?
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // Must not be the tail of a longer identifier.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && j - i < 2 {
        j += 1;
    }
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// Mask a normal string starting at the opening quote; returns the index
/// one past the closing quote.
fn mask_string(bytes: &[u8], start: usize, out: &mut Vec<u8>) -> usize {
    out.push(b'"');
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                out.push(b' ');
                if bytes[i + 1] == b'\n' {
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 2;
            }
            b'"' => {
                out.push(b'"');
                return i + 1;
            }
            b'\n' => {
                out.push(b'\n');
                i += 1;
            }
            _ => {
                out.push(b' ');
                i += 1;
            }
        }
    }
    i
}

/// Mask a raw string starting at its `#`s or opening quote; returns the
/// index one past the closing delimiter.
fn mask_raw_string(bytes: &[u8], start: usize, out: &mut Vec<u8>) -> usize {
    let mut i = start;
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        out.push(b'#');
        hashes += 1;
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return i;
    }
    out.push(b'"');
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            out.push(b'"');
            i += 1;
            for _ in 0..hashes {
                out.push(b'#');
                i += 1;
            }
            return i;
        }
        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
        i += 1;
    }
    i
}

/// If a char literal starts at `i`, return the index one past its closing
/// quote; `None` for lifetimes.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= bytes.len() {
        return None;
    }
    if bytes[j] == b'\\' {
        // Escape: consume until the closing quote (handles \', \u{..}).
        j += 2;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return (j < bytes.len()).then_some(j + 1);
    }
    // Unescaped: a char literal is exactly one character (any byte length)
    // then `'`. A lifetime never has a closing quote right after one char.
    let s = std::str::from_utf8(&bytes[j..]).ok()?;
    let c = s.chars().next()?;
    let after = j + c.len_utf8();
    (bytes.get(after) == Some(&b'\'')).then(|| after + 1)
}

/// Line numbers (1-based) inside `#[cfg(test)]`-gated blocks.
///
/// Handles the dominant workspace idiom — `#[cfg(test)]` followed by an
/// item with a brace-delimited body (`mod tests { ... }`) — which is what
/// the unwrap and panic rules need to skip.
pub fn test_region_lines(masked: &str) -> Vec<bool> {
    let line_count = masked.lines().count();
    let mut in_test = vec![false; line_count + 2];
    let bytes = masked.as_bytes();
    let mut search = 0;
    while let Some(pos) = masked[search..].find("#[cfg(test)]") {
        let attr_at = search + pos;
        // Find the block body: first `{` after the attribute, then its
        // matching `}`.
        let open = match masked[attr_at..].find('{') {
            Some(o) => attr_at + o,
            None => break,
        };
        let mut depth = 0usize;
        let mut end = open;
        for (k, &b) in bytes[open..].iter().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + k;
                        break;
                    }
                }
                _ => {}
            }
        }
        let start_line = masked[..attr_at].bytes().filter(|&b| b == b'\n').count() + 1;
        let end_line = masked[..=end.min(masked.len() - 1)]
            .bytes()
            .filter(|&b| b == b'\n')
            .count()
            + 1;
        for flag in &mut in_test[start_line..=end_line.min(line_count)] {
            *flag = true;
        }
        search = end.max(attr_at + 1);
    }
    in_test
}

/// Occurrences of `word` as a standalone identifier in `masked`, returned
/// as 1-based line numbers.
pub fn find_ident_lines(masked: &str, word: &str) -> Vec<usize> {
    let mut lines = Vec::new();
    let bytes = masked.as_bytes();
    let mut search = 0;
    while let Some(pos) = masked[search..].find(word) {
        let at = search + pos;
        let before_ok = at == 0 || {
            let c = bytes[at - 1];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        let after = at + word.len();
        let after_ok = after >= bytes.len() || {
            let c = bytes[after];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        if before_ok && after_ok {
            lines.push(masked[..at].bytes().filter(|&b| b == b'\n').count() + 1);
        }
        search = at + word.len();
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = r#"let x = 1; // parking_lot here
let s = "thread_rng inside";
/* Instant in a block
   comment */ let y = 2;"#;
        let m = mask_source(src);
        assert!(!m.contains("parking_lot"));
        assert!(!m.contains("thread_rng"));
        assert!(!m.contains("Instant"));
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y = 2;"));
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn masks_raw_strings_and_char_literals() {
        let src = r##"let r = r#"SystemTime"#; let c = 'I'; let lt: &'static str = "x";"##;
        let m = mask_source(src);
        assert!(!m.contains("SystemTime"));
        assert!(m.contains("'static str"));
    }

    #[test]
    fn keeps_code_identifiers() {
        let src = "use parking_lot::RwLock;\nlet t = Instant::now();";
        let m = mask_source(src);
        assert!(m.contains("parking_lot"));
        assert!(m.contains("Instant"));
    }

    #[test]
    fn test_region_detection() {
        let src = "fn real() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn real2() {}\n";
        let masked = mask_source(src);
        let in_test = test_region_lines(&masked);
        assert!(!in_test[1]);
        assert!(in_test[2] && in_test[3] && in_test[4] && in_test[5]);
        assert!(!in_test[6]);
    }

    #[test]
    fn ident_matching_is_word_bounded() {
        let masked = "let a = Instant::now(); let b = InstantLike; let c = MyInstant;";
        assert_eq!(find_ident_lines(masked, "Instant"), vec![1]);
    }
}

//! `cargo xtask benchcheck` — validate the `BENCH_E1.json` /
//! `BENCH_E5.json` artifacts written by `exp_e1_catalog_scale --json` and
//! `exp_e5_query --json`.
//!
//! Both files must parse, carry a non-empty `rows` array with the
//! before/after timing fields, and show the indexed planner no slower than
//! the full-scan baseline on every row — the regression the bench-smoke CI
//! job exists to catch.

use serde_json::Value;
use std::path::Path;
use std::process::ExitCode;

fn num(row: &Value, key: &str) -> Option<f64> {
    row.get(key).and_then(Value::as_f64)
}

fn check(root: &Path, file: &str, scan_field: &str, scan_scale: f64) -> Result<String, String> {
    let path = root.join(file);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("unreadable ({e}); run the exp binary with --json first"))?;
    let v: Value = serde_json::from_str(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let rows = v
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("missing `rows` array")?;
    if rows.is_empty() {
        return Err("`rows` array is empty".into());
    }
    let mut worst = f64::INFINITY;
    for (i, row) in rows.iter().enumerate() {
        let planner =
            num(row, "planner_us").ok_or_else(|| format!("row {i}: missing planner_us"))?;
        let single = num(row, "single_driver_us")
            .ok_or_else(|| format!("row {i}: missing single_driver_us"))?;
        let scan = num(row, scan_field).ok_or_else(|| format!("row {i}: missing {scan_field}"))?
            * scan_scale;
        if planner <= 0.0 || single <= 0.0 || scan <= 0.0 {
            return Err(format!("row {i}: non-positive timing"));
        }
        if planner > scan {
            return Err(format!(
                "row {i}: planner ({planner:.1} us) slower than the full scan ({scan:.1} us)"
            ));
        }
        worst = worst.min(scan / planner);
    }
    Ok(format!(
        "{} rows ok, planner beats scan by >= {worst:.1}x",
        rows.len()
    ))
}

pub fn benchcheck(root: &Path) -> ExitCode {
    let mut failed = false;
    for (file, scan_field, scan_scale) in [
        ("BENCH_E1.json", "scan_ms", 1000.0),
        ("BENCH_E5.json", "scan_us", 1.0),
    ] {
        match check(root, file, scan_field, scan_scale) {
            Ok(msg) => println!("xtask benchcheck: {file}: {msg}"),
            Err(e) => {
                eprintln!("xtask benchcheck: {file}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! `cargo xtask benchcheck` — validate the `BENCH_E*.json` artifacts
//! written by the `exp_*` binaries with `--json`.
//!
//! Every file must parse and carry a non-empty `rows` array with its
//! before/after timing fields. E1/E5 must show the indexed planner no
//! slower than the full-scan baseline; E2 must show ordered-index range
//! scans >= 5x faster than residual verification and cursor pages priced
//! O(page); E6/E7 must show the parallel
//! fan-out engine no slower than the sequential ablation — strictly in
//! simulated time (host-independent), and in wall-clock where the
//! recording host actually had worker threads to parallelize on; the
//! recovery artifact must show every crash recovering to a byte-identical
//! catalog with bounded WAL overhead; the zone artifact must show every
//! federated link class converging byte-identically with replication lag
//! monotone in link latency. These are the regressions the bench-smoke CI
//! job exists to catch.

use serde_json::Value;
use std::path::Path;
use std::process::ExitCode;

fn num(row: &Value, key: &str) -> Option<f64> {
    row.get(key).and_then(Value::as_f64)
}

fn check(root: &Path, file: &str, scan_field: &str, scan_scale: f64) -> Result<String, String> {
    let path = root.join(file);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("unreadable ({e}); run the exp binary with --json first"))?;
    let v: Value = serde_json::from_str(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let rows = v
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("missing `rows` array")?;
    if rows.is_empty() {
        return Err("`rows` array is empty".into());
    }
    let mut worst = f64::INFINITY;
    for (i, row) in rows.iter().enumerate() {
        let planner =
            num(row, "planner_us").ok_or_else(|| format!("row {i}: missing planner_us"))?;
        let single = num(row, "single_driver_us")
            .ok_or_else(|| format!("row {i}: missing single_driver_us"))?;
        let scan = num(row, scan_field).ok_or_else(|| format!("row {i}: missing {scan_field}"))?
            * scan_scale;
        if planner <= 0.0 || single <= 0.0 || scan <= 0.0 {
            return Err(format!("row {i}: non-positive timing"));
        }
        if planner > scan {
            return Err(format!(
                "row {i}: planner ({planner:.1} us) slower than the full scan ({scan:.1} us)"
            ));
        }
        worst = worst.min(scan / planner);
    }
    Ok(format!(
        "{} rows ok, planner beats scan by >= {worst:.1}x",
        rows.len()
    ))
}

fn rows_of(root: &Path, file: &str) -> Result<Vec<Value>, String> {
    let path = root.join(file);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("unreadable ({e}); run the exp binary with --json first"))?;
    let v: Value = serde_json::from_str(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let rows = v
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("missing `rows` array")?;
    if rows.is_empty() {
        return Err("`rows` array is empty".into());
    }
    Ok(rows.clone())
}

/// E2: ordered secondary indexes + resumable cursors. The indexed
/// planner must beat the residual-verification full scan by >= 5x on
/// both the bounded-range and the literal-prefix predicate at the
/// largest catalog size, and stay flat-ish (<= 20x) while the catalog
/// grows 10x or more. Cursor page fetches must cost O(page), not
/// O(offset): the last page from its token within 5x of page one, the
/// offset emulation of the last page >= 5x the cursor fetch. The seeded
/// double-run digest (hits, tokens, mcat.* counters) must match exactly.
fn check_e2(root: &Path) -> Result<String, String> {
    let path = root.join("BENCH_E2.json");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("unreadable ({e}); run the exp binary with --json first"))?;
    let v: Value = serde_json::from_str(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let rows = v
        .get("range_rows")
        .and_then(Value::as_array)
        .ok_or("missing `range_rows` array")?;
    if rows.is_empty() {
        return Err("`range_rows` array is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        for key in [
            "planner_range_us",
            "single_driver_range_us",
            "scan_range_us",
            "planner_prefix_us",
            "scan_prefix_us",
        ] {
            if num(row, key).map(|t| t <= 0.0).unwrap_or(true) {
                return Err(format!("range row {i}: missing or non-positive {key}"));
            }
        }
    }
    let first = &rows[0];
    let last = &rows[rows.len() - 1];
    let size = |r: &Value| num(r, "size").unwrap_or(0.0);
    for (label, planner, scan) in [
        ("range", "planner_range_us", "scan_range_us"),
        ("prefix", "planner_prefix_us", "scan_prefix_us"),
    ] {
        let p = num(last, planner).unwrap_or(0.0);
        let s = num(last, scan).unwrap_or(0.0);
        if s < p * 5.0 {
            return Err(format!(
                "{label} at {} rows: indexed scan ({p:.1} us) not >= 5x faster than \
                 the residual-verification scan ({s:.1} us)",
                size(last)
            ));
        }
        if size(last) >= size(first) * 10.0 {
            let p0 = num(first, planner).unwrap_or(0.0);
            if p > p0 * 20.0 {
                return Err(format!(
                    "{label}: indexed latency not flat-ish ({p0:.1} us at {} rows -> \
                     {p:.1} us at {} rows)",
                    size(first),
                    size(last)
                ));
            }
        }
    }
    let range_speedup = num(last, "scan_range_us").unwrap_or(0.0)
        / num(last, "planner_range_us").unwrap_or(f64::INFINITY);

    // Paging: cursor fetches O(page), offset emulation O(offset).
    let mut offset_ratio = f64::INFINITY;
    for (block, flat_only) in [("query_paging", true), ("paging", false)] {
        let b = v
            .get(block)
            .ok_or_else(|| format!("missing `{block}` block"))?;
        let prows = b
            .get("rows")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{block}: missing `rows` array"))?;
        if prows.len() < 2 {
            return Err(format!("{block}: need at least two page rows"));
        }
        let first = &prows[0];
        let last = &prows[prows.len() - 1];
        let (c0, cn) = (
            num(first, "cursor_us").unwrap_or(0.0),
            num(last, "cursor_us").unwrap_or(0.0),
        );
        if c0 <= 0.0 || cn <= 0.0 {
            return Err(format!("{block}: missing or non-positive cursor_us"));
        }
        if cn > c0 * 5.0 {
            return Err(format!(
                "{block}: page {} from its cursor ({cn:.1} us) more than 5x page 1 \
                 ({c0:.1} us) — fetch cost not independent of page number",
                num(last, "page").unwrap_or(0.0)
            ));
        }
        if !flat_only {
            let on = num(last, "offset_us").unwrap_or(0.0);
            if on < cn * 5.0 {
                return Err(format!(
                    "{block}: offset emulation of the last page ({on:.1} us) not >= 5x \
                     its cursor fetch ({cn:.1} us) — O(offset) contrast missing",
                ));
            }
            offset_ratio = on / cn;
        }
    }

    // Determinism: two identical seeded runs must hash identically.
    let det = v.get("determinism").ok_or("missing `determinism` block")?;
    if det.get("identical").and_then(Value::as_bool) != Some(true) {
        return Err(format!(
            "determinism: seeded replay diverged (digest_a {:?}, digest_b {:?})",
            det.get("digest_a").and_then(Value::as_str).unwrap_or("?"),
            det.get("digest_b").and_then(Value::as_str).unwrap_or("?"),
        ));
    }

    Ok(format!(
        "{} sizes ok, indexed range >= {range_speedup:.0}x vs scan at {:.0} rows, \
         cursor pages O(page) (offset {offset_ratio:.0}x dearer), digest deterministic",
        rows.len(),
        size(last)
    ))
}

/// E3: read success under seeded flaky faults (p = 0.3 transient
/// timeouts on every replica). The resilient arm (circuit breakers +
/// retry with backoff) must keep success >= 99% wherever k >= 2, must
/// never do worse than the ablation, and must not cost more than 10x the
/// fault-free simulated read time; the ablation must visibly lose reads
/// on at least one row — otherwise the experiment proves nothing.
fn check_e3(root: &Path) -> Result<String, String> {
    let rows = rows_of(root, "BENCH_E3.json")?;
    let mut saw_multi_replica = false;
    let mut saw_ablation_loss = false;
    let mut worst_on = f64::INFINITY;
    for (i, row) in rows.iter().enumerate() {
        let k = num(row, "k").ok_or_else(|| format!("row {i}: missing k"))? as u64;
        let on =
            num(row, "success_on_pct").ok_or_else(|| format!("row {i}: missing success_on_pct"))?;
        let off = num(row, "success_off_pct")
            .ok_or_else(|| format!("row {i}: missing success_off_pct"))?;
        let sim_on = num(row, "sim_ms_on").ok_or_else(|| format!("row {i}: missing sim_ms_on"))?;
        let healthy =
            num(row, "sim_ms_healthy").ok_or_else(|| format!("row {i}: missing sim_ms_healthy"))?;
        if sim_on <= 0.0 || healthy <= 0.0 {
            return Err(format!("row {i} (k={k}): non-positive timing"));
        }
        if on < off {
            return Err(format!(
                "row {i} (k={k}): resilient arm ({on:.1}%) below the ablation ({off:.1}%)"
            ));
        }
        if k >= 2 {
            saw_multi_replica = true;
            if on < 99.0 {
                return Err(format!(
                    "row {i} (k={k}): resilient read success {on:.1}% below the 99% floor"
                ));
            }
            worst_on = worst_on.min(on);
        }
        if off < 99.0 {
            saw_ablation_loss = true;
        }
        if sim_on > healthy * 10.0 {
            return Err(format!(
                "row {i} (k={k}): resilient sim time ({sim_on:.2} ms) above 10x the fault-free floor ({healthy:.2} ms)"
            ));
        }
    }
    if !saw_multi_replica {
        return Err("no row with k >= 2".into());
    }
    if !saw_ablation_loss {
        return Err("ablation never lost a read; the fault schedule is too gentle".into());
    }
    Ok(format!(
        "{} rows ok, resilient success >= {worst_on:.1}% at k>=2 where the ablation loses reads",
        rows.len()
    ))
}

/// E6: parallel fan-out / bulk ingest vs the sequential ablation.
/// Simulated time must improve strictly on every row. Wall-clock must
/// not regress on bulk rows (the win is algorithmic — batched catalog
/// locks — so it holds even single-threaded) and on fan-out rows when
/// the host had more than one worker thread.
fn check_e6(root: &Path) -> Result<String, String> {
    let rows = rows_of(root, "BENCH_E6.json")?;
    let mut worst = f64::INFINITY;
    for (i, row) in rows.iter().enumerate() {
        let kind = row.get("kind").and_then(Value::as_str).unwrap_or("?");
        let sim_before =
            num(row, "sim_ms_before").ok_or_else(|| format!("row {i}: missing sim_ms_before"))?;
        let sim_after =
            num(row, "sim_ms_after").ok_or_else(|| format!("row {i}: missing sim_ms_after"))?;
        let wall_before =
            num(row, "wall_ms_before").ok_or_else(|| format!("row {i}: missing wall_ms_before"))?;
        let wall_after =
            num(row, "wall_ms_after").ok_or_else(|| format!("row {i}: missing wall_ms_after"))?;
        let workers = num(row, "workers").unwrap_or(1.0);
        if sim_before <= 0.0 || sim_after <= 0.0 || wall_before <= 0.0 || wall_after <= 0.0 {
            return Err(format!("row {i} ({kind}): non-positive timing"));
        }
        if sim_after >= sim_before {
            return Err(format!(
                "row {i} ({kind}): parallel sim time ({sim_after:.1} ms) not below sequential ({sim_before:.1} ms)"
            ));
        }
        let wall_gated = kind == "bulk" || workers > 1.0;
        if wall_gated && wall_after > wall_before * 1.10 {
            return Err(format!(
                "row {i} ({kind}): parallel wall time ({wall_after:.1} ms) slower than sequential ({wall_before:.1} ms)"
            ));
        }
        worst = worst.min(sim_before / sim_after);
    }
    Ok(format!(
        "{} rows ok, parallel beats sequential by >= {worst:.2}x sim time",
        rows.len()
    ))
}

/// E7: synchronous-replication ingest cost under both fan-out modes.
/// Parallel must be strictly cheaper in simulated time for every
/// fan-out width above 1 and never more expensive at width 1.
fn check_e7(root: &Path) -> Result<String, String> {
    let rows = rows_of(root, "BENCH_E7.json")?;
    let mut worst = f64::INFINITY;
    for (i, row) in rows.iter().enumerate() {
        let k = num(row, "k").ok_or_else(|| format!("row {i}: missing k"))? as u64;
        let seq = num(row, "sync_seq_ms").ok_or_else(|| format!("row {i}: missing sync_seq_ms"))?;
        let par = num(row, "sync_par_ms").ok_or_else(|| format!("row {i}: missing sync_par_ms"))?;
        if seq <= 0.0 || par <= 0.0 {
            return Err(format!("row {i} (k={k}): non-positive timing"));
        }
        if k >= 2 && par >= seq {
            return Err(format!(
                "row {i} (k={k}): parallel sync ingest ({par:.1} ms) not below sequential ({seq:.1} ms)"
            ));
        }
        if k < 2 && par > seq * 1.001 {
            return Err(format!(
                "row {i} (k={k}): parallel sync ingest ({par:.1} ms) above sequential ({seq:.1} ms)"
            ));
        }
        if k >= 2 {
            worst = worst.min(seq / par);
        }
    }
    Ok(format!(
        "{} rows ok, parallel sync replication >= {worst:.2}x cheaper at k>=2",
        rows.len()
    ))
}

/// BENCH_OBS: the observability overhead guard. Each row pairs an
/// identical workload with observability off (`base`) and on (`obs`);
/// the instrumented run must stay within 5% wall-clock of the bare one,
/// and must charge *exactly* the same simulated time — metrics never
/// touch the virtual clock.
fn check_obs(root: &Path) -> Result<String, String> {
    let rows = rows_of(root, "BENCH_OBS.json")?;
    let mut worst = 0.0f64;
    for (i, row) in rows.iter().enumerate() {
        let workload = row.get("workload").and_then(Value::as_str).unwrap_or("?");
        let base = num(row, "base").ok_or_else(|| format!("row {i}: missing base"))?;
        let obs = num(row, "obs").ok_or_else(|| format!("row {i}: missing obs"))?;
        if base <= 0.0 || obs <= 0.0 {
            return Err(format!("row {i} ({workload}): non-positive timing"));
        }
        if obs > base * 1.05 {
            return Err(format!(
                "row {i} ({workload}): observability overhead {:.1}% above the 5% gate \
                 (base {base:.2}, obs {obs:.2})",
                (obs / base - 1.0) * 100.0
            ));
        }
        let sim_base =
            num(row, "sim_ms_base").ok_or_else(|| format!("row {i}: missing sim_ms_base"))?;
        let sim_obs =
            num(row, "sim_ms_obs").ok_or_else(|| format!("row {i}: missing sim_ms_obs"))?;
        if (sim_base - sim_obs).abs() > 1e-9 {
            return Err(format!(
                "row {i} ({workload}): metrics charged simulated time \
                 (off {sim_base:.6} ms, on {sim_obs:.6} ms)"
            ));
        }
        worst = worst.max(obs / base - 1.0);
    }
    Ok(format!(
        "{} rows ok, observability overhead <= {:.1}% wall, 0 ns simulated",
        rows.len(),
        worst * 100.0
    ))
}

/// BENCH_LOAD: the million-session front-end under the seeded open
/// workload. Simulated results are gated strictly (they are
/// host-independent): per-route latency must stay flat-ish as the
/// session count scales, the pooled connect counters must be exactly
/// deterministic, the double-run digest must match, and the amortized
/// sweep must reclaim every abandoned session. The sharded-vs-single-lock
/// wall-clock speedup is gated only where the recording host had worker
/// threads to contend on.
fn check_load(root: &Path) -> Result<String, String> {
    let path = root.join("BENCH_LOAD.json");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("unreadable ({e}); run the exp binary with --json first"))?;
    let v: Value = serde_json::from_str(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let rows = v
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("missing `rows` array")?;
    if rows.is_empty() {
        return Err("`rows` array is empty".into());
    }

    // Scaling rows: sharded + pooled, standard mix (no churn).
    let mut first_p95: Vec<(String, f64)> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let sessions = num(row, "sessions").ok_or_else(|| format!("row {i}: missing sessions"))?;
        let requests = num(row, "requests").ok_or_else(|| format!("row {i}: missing requests"))?;
        if sessions <= 0.0 || requests <= 0.0 {
            return Err(format!("row {i}: non-positive sessions/requests"));
        }
        let routes = row
            .get("routes")
            .and_then(Value::as_map_slice)
            .ok_or_else(|| format!("row {i}: missing routes"))?;
        let served: f64 = routes
            .iter()
            .map(|(_, r)| num(r, "count").unwrap_or(0.0))
            .sum();
        if served != requests {
            return Err(format!(
                "row {i}: route counts sum to {served}, expected {requests}"
            ));
        }
        // Pooled logins are exactly deterministic: the fixture pre-warms
        // every account, so the measured phase never misses.
        let hits = num(row, "pool_hits").unwrap_or(-1.0);
        let misses = num(row, "pool_misses").unwrap_or(-1.0);
        let logins = num(row, "logins_total").unwrap_or(-2.0);
        if misses != 0.0 || hits != logins {
            return Err(format!(
                "row {i}: pooled connect counters not deterministic \
                 (hits {hits}, misses {misses}, logins {logins})"
            ));
        }
        if num(row, "live_end") != Some(sessions) {
            return Err(format!(
                "row {i}: live sessions after a churn-free run != sessions created"
            ));
        }
        // Flat-ish p95: each simulated route percentile may grow at most
        // 2x from the smallest session count to the largest.
        for (route, r) in routes {
            let p95 = num(r, "sim_p95_ns").unwrap_or(0.0);
            if i == 0 {
                if p95 > 0.0 {
                    first_p95.push((route.clone(), p95));
                }
            } else if let Some((_, base)) = first_p95.iter().find(|(n, _)| n == route) {
                if p95 > base * 2.0 {
                    return Err(format!(
                        "row {i} ({route}): sim p95 {p95:.0} ns more than 2x the \
                         {sessions:.0}-session baseline {base:.0} ns — latency not flat"
                    ));
                }
            }
        }
    }

    // Ablation: sharded + pooled vs the single-lock, unpooled front-end.
    let ab = v.get("ablation").ok_or("missing `ablation` block")?;
    let workers = num(ab, "workers").ok_or("ablation: missing workers")?;
    let sharded = ab.get("sharded").ok_or("ablation: missing sharded arm")?;
    let single = ab
        .get("single_lock")
        .ok_or("ablation: missing single_lock arm")?;
    if num(single, "pool_hits") != Some(0.0) || num(single, "pool_misses") != Some(0.0) {
        return Err("ablation: unpooled arm touched the connection pool".into());
    }
    if num(sharded, "pool_hits") != num(sharded, "logins_total") {
        return Err("ablation: pooled arm missed the connection pool".into());
    }
    let speedup = num(ab, "wall_speedup").ok_or("ablation: missing wall_speedup")?;
    let wall_note = if workers >= 8.0 {
        if speedup < 4.0 {
            return Err(format!(
                "ablation: sharded+pooled wall speedup {speedup:.2}x below the 4x \
                 gate at {workers} workers"
            ));
        }
        format!("wall speedup {speedup:.2}x (gated >= 4x)")
    } else if workers >= 2.0 {
        if speedup < 1.2 {
            return Err(format!(
                "ablation: sharded+pooled wall speedup {speedup:.2}x below the 1.2x \
                 gate at {workers} workers"
            ));
        }
        format!("wall speedup {speedup:.2}x (gated >= 1.2x)")
    } else {
        format!("wall speedup {speedup:.2}x (ungated: 1 worker)")
    };

    // Determinism: two identical seeded runs must hash identically.
    let det = v.get("determinism").ok_or("missing `determinism` block")?;
    if det.get("identical").and_then(Value::as_bool) != Some(true) {
        return Err(format!(
            "determinism: seeded replay diverged (digest_a {:?}, digest_b {:?})",
            det.get("digest_a").and_then(Value::as_str).unwrap_or("?"),
            det.get("digest_b").and_then(Value::as_str).unwrap_or("?"),
        ));
    }

    // Sweep: every abandoned session reclaimed, gauge balanced at zero.
    let sweep = v.get("sweep").ok_or("missing `sweep` block")?;
    let created = num(sweep, "sessions").ok_or("sweep: missing sessions")?;
    if num(sweep, "reclaimed") != Some(created)
        || num(sweep, "live_after") != Some(0.0)
        || num(sweep, "live_gauge_after") != Some(0.0)
    {
        return Err(format!(
            "sweep: abandoned sessions leaked (created {created}, reclaimed {:?}, \
             live_after {:?}, gauge {:?})",
            num(sweep, "reclaimed"),
            num(sweep, "live_after"),
            num(sweep, "live_gauge_after"),
        ));
    }

    Ok(format!(
        "{} rows ok, p95 flat, pool + digest + sweep deterministic, {wall_note}",
        rows.len()
    ))
}

/// Recovery: WAL overhead and crash-recovery cost vs catalog size. Every
/// row must recover to a catalog byte-identical to the pre-crash
/// snapshot — that is the whole point of the durability layer, and any
/// divergence is a correctness bug, not a performance regression. The
/// WAL twin must cost strictly more wall time than the in-memory
/// baseline (durability is never free) but not absurdly more (<= 50x,
/// host-relative). Simulated recovery cost is deterministic and must be
/// monotone in catalog size.
fn check_recovery(root: &Path) -> Result<String, String> {
    let rows = rows_of(root, "BENCH_RECOVERY.json")?;
    let mut worst_overhead = 0.0f64;
    let mut prev_sim = 0.0f64;
    for (i, row) in rows.iter().enumerate() {
        for key in [
            "datasets",
            "base_ingest_us",
            "wal_ingest_us",
            "wal_sim_ns_per_op",
            "recovery_wall_ms",
            "recovery_sim_ms",
        ] {
            if num(row, key).map(|t| t <= 0.0).unwrap_or(true) {
                return Err(format!("row {i}: missing or non-positive {key}"));
            }
        }
        if row.get("identical").and_then(Value::as_bool) != Some(true) {
            return Err(format!(
                "row {i}: recovered catalog not byte-identical to the \
                 pre-crash snapshot"
            ));
        }
        let tail = num(row, "tail_records").unwrap_or(0.0);
        let groups = num(row, "groups_applied").unwrap_or(0.0);
        if groups <= 0.0 || tail < groups {
            return Err(format!(
                "row {i}: implausible replay accounting (tail {tail}, \
                 groups {groups})"
            ));
        }
        let base = num(row, "base_ingest_us").unwrap_or(0.0);
        let wal = num(row, "wal_ingest_us").unwrap_or(0.0);
        if wal <= base {
            return Err(format!(
                "row {i}: WAL twin ({wal:.1} us/op) not slower than the \
                 in-memory baseline ({base:.1} us/op) — is it logging at all?"
            ));
        }
        if wal > base * 50.0 {
            return Err(format!(
                "row {i}: WAL overhead {:.1}x over the in-memory baseline \
                 exceeds the 50x gate",
                wal / base
            ));
        }
        worst_overhead = worst_overhead.max(wal / base);
        let sim = num(row, "recovery_sim_ms").unwrap_or(0.0);
        if sim < prev_sim {
            return Err(format!(
                "row {i}: simulated recovery cost shrank as the catalog grew \
                 ({prev_sim:.2} ms -> {sim:.2} ms) — replay not scaling with \
                 the tail"
            ));
        }
        prev_sim = sim;
    }
    Ok(format!(
        "{} rows ok, every crash recovered byte-identical, WAL overhead \
         <= {worst_overhead:.1}x",
        rows.len()
    ))
}

/// BENCH_ZONE: federated zones. Every link class must converge
/// byte-identically, a federated query can never beat the local one (the
/// remote leg pays the peering link), the federated premium must grow
/// with link latency, and the replication exposure window must be
/// monotone non-decreasing as the link slows down.
fn check_zone(root: &Path) -> Result<String, String> {
    let rows = rows_of(root, "BENCH_ZONE.json")?;
    let mut prev_latency = -1.0f64;
    let mut prev_fed = -1.0f64;
    let mut prev_lag = -1.0f64;
    for (i, row) in rows.iter().enumerate() {
        let latency =
            num(row, "latency_us").ok_or_else(|| format!("row {i}: missing latency_us"))?;
        let local =
            num(row, "local_query_ms").ok_or_else(|| format!("row {i}: missing local_query_ms"))?;
        let fed = num(row, "federated_query_ms")
            .ok_or_else(|| format!("row {i}: missing federated_query_ms"))?;
        let lag = num(row, "lag_ms").ok_or_else(|| format!("row {i}: missing lag_ms"))?;
        if row.get("converged").and_then(Value::as_bool) != Some(true) {
            return Err(format!(
                "row {i}: publisher and mirror subtrees did not converge \
                 byte-identically"
            ));
        }
        if fed <= 0.0 || lag <= 0.0 {
            return Err(format!("row {i}: non-positive federated/lag timing"));
        }
        if fed < local {
            return Err(format!(
                "row {i}: federated query ({fed:.3} ms) beat the local one \
                 ({local:.3} ms) — the peering link is not being charged"
            ));
        }
        if latency <= prev_latency {
            return Err(format!(
                "row {i}: rows must sweep strictly increasing link latency"
            ));
        }
        if prev_fed >= 0.0 && fed <= prev_fed {
            return Err(format!(
                "row {i}: federated query cost did not grow with link latency \
                 ({prev_fed:.3} ms -> {fed:.3} ms)"
            ));
        }
        if prev_lag >= 0.0 && lag < prev_lag {
            return Err(format!(
                "row {i}: replication lag shrank as the link slowed \
                 ({prev_lag:.3} ms -> {lag:.3} ms)"
            ));
        }
        prev_latency = latency;
        prev_fed = fed;
        prev_lag = lag;
    }
    Ok(format!(
        "{} link classes ok, all converged, lag monotone in link latency",
        rows.len()
    ))
}

pub fn benchcheck(root: &Path) -> ExitCode {
    let mut failed = false;
    for (file, scan_field, scan_scale) in [
        ("BENCH_E1.json", "scan_ms", 1000.0),
        ("BENCH_E5.json", "scan_us", 1.0),
    ] {
        match check(root, file, scan_field, scan_scale) {
            Ok(msg) => println!("xtask benchcheck: {file}: {msg}"),
            Err(e) => {
                eprintln!("xtask benchcheck: {file}: {e}");
                failed = true;
            }
        }
    }
    for (file, checker) in [
        (
            "BENCH_E2.json",
            check_e2 as fn(&Path) -> Result<String, String>,
        ),
        ("BENCH_E3.json", check_e3),
        ("BENCH_E6.json", check_e6),
        ("BENCH_E7.json", check_e7),
        ("BENCH_OBS.json", check_obs),
        ("BENCH_LOAD.json", check_load),
        ("BENCH_RECOVERY.json", check_recovery),
        ("BENCH_ZONE.json", check_zone),
    ] {
        match checker(root) {
            Ok(msg) => println!("xtask benchcheck: {file}: {msg}"),
            Err(e) => {
                eprintln!("xtask benchcheck: {file}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! Derives the stand-in `serde::Serialize`/`serde::Deserialize` traits
//! (single-method conversions to/from the JSON-shaped `Content` model) for
//! plain structs and enums. The representation matches what real serde emits
//! for attribute-free types:
//!
//! * named struct        → object of fields
//! * newtype struct      → the inner value, transparently
//! * tuple struct        → array
//! * unit struct         → null
//! * unit enum variant   → `"Variant"`
//! * newtype variant     → `{"Variant": inner}`
//! * tuple variant       → `{"Variant": [..]}`
//! * struct variant      → `{"Variant": {..}}`
//!
//! Generics and `#[serde(...)]` attributes are unsupported (the workspace
//! uses neither); hitting one is a compile error rather than silent
//! misbehaviour. Parsing is done directly over `proc_macro::TokenStream`
//! because `syn`/`quote` are unavailable offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match (mode, &item) {
        (Mode::Serialize, Item::Struct { name, shape }) => gen_struct_ser(name, shape),
        (Mode::Deserialize, Item::Struct { name, shape }) => gen_struct_de(name, shape),
        (Mode::Serialize, Item::Enum { name, variants }) => gen_enum_ser(name, variants),
        (Mode::Deserialize, Item::Enum { name, variants }) => gen_enum_de(name, variants),
    };
    code.parse().unwrap()
}

// ------------------------------------------------------------------ parse --

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Skip any number of `#[...]` outer attributes.
    fn skip_attrs(&mut self) {
        while self.is_punct('#') {
            self.next();
            self.next(); // the [...] group
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!(
                "serde stand-in derive: expected identifier, got {other:?}"
            )),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let kw = c.expect_ident()?;
    let name = c.expect_ident()?;
    if c.is_punct('<') {
        return Err(format!(
            "serde stand-in derive: generic type `{name}` is unsupported"
        ));
    }
    match kw.as_str() {
        "struct" => {
            let shape = parse_struct_body(&mut c)?;
            Ok(Item::Struct { name, shape })
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_struct_body(c: &mut Cursor) -> Result<Shape, String> {
    match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Named(parse_named_fields(g.stream())?))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Shape::Tuple(count_tuple_fields(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::Unit),
        other => Err(format!("expected struct body, got {other:?}")),
    }
}

/// Field names of `{ a: T, pub b: U, ... }`.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        fields.push(c.expect_ident()?);
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, got {other:?}")),
        }
        skip_type_until_comma(&mut c);
    }
    Ok(fields)
}

/// Consume type tokens up to (and including) the next comma that is not
/// nested inside `<...>` generic arguments.
fn skip_type_until_comma(c: &mut Cursor) {
    let mut angle_depth = 0i32;
    while let Some(t) = c.next() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Arity of `(T, U, ...)`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    if c.peek().is_none() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_token_since_comma = false;
    while let Some(t) = c.next() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    saw_token_since_comma = false;
                    count += 1;
                    continue;
                }
                _ => {}
            }
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident()?;
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant `= expr`, then the trailing comma.
        let mut angle_depth = 0i32;
        while let Some(t) = c.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        c.next();
                        break;
                    }
                    _ => {}
                }
            }
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen --

fn gen_struct_ser(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "serde::Content::Null".to_string(),
        Shape::Tuple(1) => "serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), serde::Serialize::to_content(&self.{f}))"))
                .collect();
            format!("serde::Content::Map(vec![{}])", entries.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_content(&self) -> serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_struct_de(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!("{{ let _ = __c; Ok({name}) }}"),
        Shape::Tuple(1) => {
            format!("serde::Deserialize::from_content(__c).map({name}).map_err(|e| e.at({name:?}))")
        }
        Shape::Tuple(n) => format!("{{ {} }}", tuple_de_expr(name, *n, "__c", name)),
        Shape::Named(fields) => format!("{{ {} }}", named_de_expr(name, fields, "__c", name)),
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_content(__c: &serde::Content) -> Result<Self, serde::DeError> {{ {body} }}\n\
         }}"
    )
}

/// Expression deserializing tuple fields of `ctor(..)` from content expr `src`.
fn tuple_de_expr(ctor: &str, n: usize, src: &str, context: &str) -> String {
    let mut out = format!(
        "let __items = {src}.as_array().ok_or_else(|| \
             serde::DeError::expected(\"array\", {context:?}, {src}))?;\n\
         if __items.len() != {n} {{\n\
             return Err(serde::DeError::new(format!(\
                 \"{context}: expected {n} elements, got {{}}\", __items.len())));\n\
         }}\n"
    );
    let args: Vec<String> = (0..n)
        .map(|i| {
            format!(
                "serde::Deserialize::from_content(&__items[{i}])\
                     .map_err(|e| e.at(\"{context}.{i}\"))?"
            )
        })
        .collect();
    out.push_str(&format!("Ok({ctor}({}))", args.join(", ")));
    out
}

/// Expression deserializing named fields of `ctor { .. }` from content expr `src`.
fn named_de_expr(ctor: &str, fields: &[String], src: &str, context: &str) -> String {
    let mut out = format!(
        "let __map = {src}.as_map_slice().ok_or_else(|| \
             serde::DeError::expected(\"object\", {context:?}, {src}))?;\n"
    );
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match serde::__find(__map, {f:?}) {{\n\
                     Some(__v) => serde::Deserialize::from_content(__v)\
                         .map_err(|e| e.at(\"{context}.{f}\"))?,\n\
                     None => serde::Deserialize::absent()\
                         .map_err(|e| e.at(\"{context}.{f}\"))?,\n\
                 }}"
            )
        })
        .collect();
    out.push_str(&format!("Ok({ctor} {{ {} }})", inits.join(", ")));
    out
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.shape {
                Shape::Unit => {
                    format!("{name}::{vname} => serde::Content::Str(String::from({vname:?}))")
                }
                Shape::Tuple(1) => format!(
                    "{name}::{vname}(__a0) => serde::Content::Map(vec![\
                         (String::from({vname:?}), serde::Serialize::to_content(__a0))])"
                ),
                Shape::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("serde::Serialize::to_content({b})"))
                        .collect();
                    format!(
                        "{name}::{vname}({}) => serde::Content::Map(vec![\
                             (String::from({vname:?}), serde::Content::Seq(vec![{}]))])",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let binds = fields.join(", ");
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("(String::from({f:?}), serde::Serialize::to_content({f}))")
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => serde::Content::Map(vec![\
                             (String::from({vname:?}), serde::Content::Map(vec![{}]))])",
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_content(&self) -> serde::Content {{\n\
                 match self {{ {} }}\n\
             }}\n\
         }}",
        arms.join(",\n")
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as plain strings.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
        .collect();
    // Data variants arrive as single-entry maps keyed by the variant name.
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            let body = match &v.shape {
                Shape::Unit => return None,
                Shape::Tuple(1) => format!(
                    "serde::Deserialize::from_content(__inner)\
                         .map({name}::{vname})\
                         .map_err(|e| e.at(\"{name}::{vname}\"))"
                ),
                Shape::Tuple(n) => format!(
                    "{{ {} }}",
                    tuple_de_expr(
                        &format!("{name}::{vname}"),
                        *n,
                        "__inner",
                        &format!("{name}::{vname}")
                    )
                ),
                Shape::Named(fields) => format!(
                    "{{ {} }}",
                    named_de_expr(
                        &format!("{name}::{vname}"),
                        fields,
                        "__inner",
                        &format!("{name}::{vname}")
                    )
                ),
            };
            Some(format!("{vname:?} => {body},"))
        })
        .collect();
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_content(__c: &serde::Content) -> Result<Self, serde::DeError> {{\n\
                 match __c {{\n\
                     serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => Err(serde::DeError::new(format!(\
                             \"unknown {name} variant {{__other:?}}\"))),\n\
                     }},\n\
                     serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __inner) = &__m[0];\n\
                         match __tag.as_str() {{\n\
                             {data}\n\
                             __other => Err(serde::DeError::new(format!(\
                                 \"unknown {name} variant {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(serde::DeError::expected(\
                         \"string or single-entry object\", {name:?}, __other)),\n\
                 }}\n\
             }}\n\
         }}",
        unit = unit_arms.join("\n"),
        data = data_arms.join("\n"),
    )
}

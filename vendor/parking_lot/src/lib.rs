//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the handful of external APIs it actually uses. This crate reproduces the
//! `parking_lot` surface the workspace relies on — `Mutex` and `RwLock` with
//! non-poisoning guards — on top of `std::sync`. A poisoned std lock (a
//! thread panicked while holding it) is recovered transparently, matching
//! parking_lot's behaviour of never poisoning.
//!
//! Everything outside `srb_types::sync` and this crate is forbidden from
//! touching these types directly: `cargo xtask lint` enforces that the rest
//! of the workspace goes through the ranked wrappers in `srb_types::sync`.

use std::sync::{self, PoisonError};

/// Guard for [`Mutex`]; identical to the std guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared guard for [`RwLock`]; identical to the std guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`]; identical to the std guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A readers-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire a read guard if no writer holds the lock right now.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire a write guard if the lock is free right now.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

//! Offline stand-in for `serde_json`.
//!
//! A thin facade over the data model in the vendored `serde` crate:
//! [`Value`] is serde's `Content` re-exported, so any `Serialize` type
//! converts losslessly and `from_str` round-trips everything the workspace
//! persists (grid state, catalog snapshots, MySRB's JSON summary endpoint).

use std::fmt;

pub use serde::Content as Value;

/// Error raised by [`to_string`]/[`from_str`].
#[derive(Debug, Clone)]
pub struct Error(serde::DeError);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e)
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_content().render(false))
}

/// Serialize to human-readable, two-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_content().render(true))
}

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let content = serde::parse_json(input)?;
    T::from_content(&content).map_err(Error)
}

/// Build a [`Value`] in place. Supports the object/array/scalar literal
/// forms the workspace uses (keys must be string literals).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $( (String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "a": 1u64, "b": "two", "c": vec![3u64, 4] });
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"], "two");
        assert_eq!(v["c"][1], 4);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":"two","c":[3,4]}"#);
    }

    #[test]
    fn from_str_round_trips_value() {
        let v: Value = from_str(r#"{"x": [1, 2, {"y": null}]}"#).unwrap();
        assert_eq!(from_str::<Value>(&to_string(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let s = to_string_pretty(&json!({ "k": 1u64 })).unwrap();
        assert_eq!(s, "{\n  \"k\": 1\n}");
    }
}

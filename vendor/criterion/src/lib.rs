//! Offline stand-in for `criterion`.
//!
//! Implements the API surface `benches/microbench.rs` uses — benchmark
//! groups, `bench_function`, `iter`, `iter_batched`, throughput annotation —
//! with a deliberately small measurement loop: a short warm-up, then
//! `sample_size` samples whose median per-iteration time is reported on
//! stdout. Statistical analysis, plots and saved baselines are out of scope;
//! the `exp_*` binaries (virtual-clock driven) are the source of truth for
//! experiment numbers, and this harness only gives a quick wall-clock signal
//! for the in-memory fast path.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; only a hint here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Units for reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate benchmarks with work-per-iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..2 {
            // Warm-up, also sizes the iteration count.
            let mut b = Bencher::default();
            f(&mut b);
        }
        for _ in 0..self.sample_size {
            let mut b = Bencher::default();
            f(&mut b);
            if let Some(per_iter) = (b.elapsed.as_nanos() as u64).checked_div(b.iters) {
                samples.push(per_iter);
            }
        }
        samples.sort_unstable();
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0);
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if median > 0 => {
                let gib = n as f64 / median as f64; // bytes per ns == GiB-ish per s
                format!("  ({gib:.3} GB/s)")
            }
            Some(Throughput::Elements(n)) if median > 0 => {
                format!("  ({:.0} elem/s)", n as f64 * 1e9 / median as f64)
            }
            _ => String::new(),
        };
        println!("  {name}: {median} ns/iter{rate}");
        self
    }

    /// End the group (no-op; provided for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure to run the measured routine.
#[derive(Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    const ITERS: u64 = 16;

    /// Measure `routine` back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        for _ in 0..Self::ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed += t0.elapsed();
        self.iters += Self::ITERS;
    }

    /// Measure `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..Self::ITERS {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// Collect benchmark functions into a single runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups; extra CLI args are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` may execute bench targets with harness flags, and
            // CI passes `--quick`; both are irrelevant to this stand-in.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

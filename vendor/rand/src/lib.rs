//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace only ever draws random numbers from explicitly seeded
//! generators — reproducibility of the experiments depends on it — so this
//! stub provides the `RngCore`/`SeedableRng`/`Rng` trait triple and a
//! deterministic `StdRng` built on splitmix64 + xoshiro256++.
//!
//! `thread_rng()` exists for API compatibility but is deliberately
//! deterministic (each call site gets a counter-derived seed, not entropy):
//! `cargo xtask lint` bans it outside `srb-types/src/clock.rs` and the
//! `bench` crate precisely because nondeterminism invalidates experiment
//! receipts.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen_range` can produce uniformly from a `Range`.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)` given a bit source.
    fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is ~2^-64 for the spans used here; acceptable
                // for simulation workloads (never used for crypto).
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Handle returned by [`crate::thread_rng`].
    #[derive(Debug)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Deterministic replacement for `rand::thread_rng()`.
///
/// Each call returns a generator seeded from a process-wide counter, so two
/// calls yield different (but reproducible) streams. Banned by `cargo xtask
/// lint` outside the virtual-clock module and the bench crate.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CALLS: AtomicU64 = AtomicU64::new(0);
    let n = CALLS.fetch_add(1, Ordering::Relaxed);
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(0xC0FF_EE00 ^ n))
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}

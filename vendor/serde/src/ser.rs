//! [`Serialize`]: convert values into the [`Content`] data model.

use crate::Content;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Types convertible into the JSON data model.
pub trait Serialize {
    /// Build the [`Content`] tree for this value.
    fn to_content(&self) -> Content;
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

/// Map keys must render as strings in JSON.
///
/// Implemented for strings and integers; newtype id wrappers implement it
/// themselves (real serde handles this through `Serializer::collect_str`,
/// which the collapsed data model doesn't have).
pub trait KeyToString {
    fn key_string(&self) -> String;
}

impl KeyToString for String {
    /// Render this key as a JSON object key.
    fn key_string(&self) -> String {
        self.clone()
    }
}

impl KeyToString for &str {
    fn key_string(&self) -> String {
        self.to_string()
    }
}

macro_rules! key_int {
    ($($t:ty),*) => {$(
        impl KeyToString for $t {
            fn key_string(&self) -> String {
                self.to_string()
            }
        }
    )*};
}
key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: KeyToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.key_string(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: KeyToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        // Sort for stable output: HashMap iteration order is nondeterministic
        // and rendered snapshots must be reproducible.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.key_string(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

//! Offline stand-in for `serde` (+ the data model behind the `serde_json`
//! stand-in).
//!
//! The real serde decouples data formats from data structures through a
//! visitor-based data model. This workspace only ever serializes to and from
//! JSON, so the stand-in collapses that machinery: [`Serialize`] converts a
//! value into a JSON-shaped [`Content`] tree, [`Deserialize`] reads one back,
//! and the `serde_json` facade crate renders/parses `Content` as text. The
//! derive macros (`serde_derive`, re-exported here) generate externally
//! tagged representations compatible with what real serde would emit for
//! attribute-free types.

mod content;
mod de;
mod ser;

pub use content::{parse_json, Content};
pub use de::{DeError, Deserialize, KeyFromString};
pub use ser::{KeyToString, Serialize};
pub use serde_derive::{Deserialize, Serialize};

/// Find a key in an externally tagged map (derive-internal helper).
#[doc(hidden)]
pub fn __find<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

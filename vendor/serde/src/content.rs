//! The JSON-shaped data model: [`Content`], its accessors, text rendering
//! and parsing. The `serde_json` facade re-exports `Content` as `Value`.

use std::fmt;
use std::ops::Index;

/// A JSON value.
///
/// Maps preserve insertion order (serialization order of struct fields),
/// which keeps rendered snapshots stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always < 0 after parsing; any i64 when built).
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Content>),
    /// JSON object, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Integer view if the number fits in `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(n) => Some(n),
            Content::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// Integer view if the number fits in `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(n) => Some(n),
            Content::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            _ => None,
        }
    }

    /// Lossy floating-point view of any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(n) => Some(n),
            Content::U64(n) => Some(n as f64),
            Content::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// Object entries view.
    pub fn as_map_slice(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map_slice().and_then(|m| crate::__find(m, key))
    }

    /// Short name of the JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }

    /// Render as JSON text.
    pub fn render(&self, pretty: bool) -> String {
        let mut out = String::new();
        self.render_into(&mut out, pretty, 0);
        out
    }

    fn render_into(&self, out: &mut String, pretty: bool, indent: usize) {
        match self {
            Content::Null => out.push_str("null"),
            Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Content::U64(n) => out.push_str(&n.to_string()),
            Content::I64(n) => out.push_str(&n.to_string()),
            Content::F64(n) => {
                if n.is_finite() {
                    // {:?} gives the shortest representation that round-trips.
                    out.push_str(&format!("{n:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Content::Str(s) => render_string(s, out),
            Content::Seq(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    }
                    item.render_into(out, pretty, indent + 1);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push(']');
            }
            Content::Map(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    }
                    render_string(k, out);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.render_into(out, pretty, indent + 1);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact JSON rendering.
impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(false))
    }
}

/// `value["key"]` — panics on missing key like `serde_json::Value` does not;
/// returns `Null` instead, matching serde_json's behaviour.
impl Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        static NULL: Content = Content::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Content {
    type Output = Content;
    fn index(&self, idx: usize) -> &Content {
        static NULL: Content = Content::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Content {
            fn eq(&self, other: &$t) -> bool {
                match *self {
                    Content::U64(n) => (*other as i128) == n as i128,
                    Content::I64(n) => (*other as i128) == n as i128,
                    _ => false,
                }
            }
        }
        impl PartialEq<Content> for $t {
            fn eq(&self, other: &Content) -> bool {
                other == self
            }
        }
    )*};
}
eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Content {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

// ---------------------------------------------------------------- parsing --

/// Parse JSON text into a [`Content`] tree.
pub fn parse_json(input: &str) -> Result<Content, crate::DeError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> crate::DeError {
        crate::DeError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), crate::DeError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Content, crate::DeError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Content::Null),
            Some(b't') => self.eat("true").map(|_| Content::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Content, crate::DeError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Content, crate::DeError> {
        self.pos += 1; // {
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, crate::DeError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs: only BMP escapes are emitted by
                            // our renderer, so reject lone surrogates simply.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy up to the next quote or escape. `"` and `\`
                    // are ASCII and never occur inside a multi-byte UTF-8
                    // sequence, so the byte scan lands on a char boundary
                    // and the span slices cleanly out of the (valid UTF-8)
                    // input. One span per escape keeps long strings linear —
                    // multi-megabyte checkpoint payloads parse in one pass.
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.input[start..self.pos]);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content, crate::DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Content::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let src = r#"{"a":[1,-2,3.5,null,true],"b":{"c":"x\"y\n"},"d":[]}"#;
        let v = parse_json(src).unwrap();
        assert_eq!(v.render(false), src);
        assert_eq!(parse_json(&v.render(true)).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = parse_json(r#"{"n":7,"s":"hi","neg":-4}"#).unwrap();
        assert_eq!(v["n"].as_u64(), Some(7));
        assert_eq!(v["n"], 7);
        assert_eq!(v["neg"].as_i64(), Some(-4));
        assert_eq!(v["s"], "hi");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("nulll").is_err());
    }

    #[test]
    fn big_u64_survives() {
        let v = parse_json(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }
}

//! [`Deserialize`]: rebuild values from the [`Content`] data model.

use crate::Content;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::str::FromStr;
use std::sync::Arc;

/// Deserialization error: a message plus a trail of field locations.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// New error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Type-mismatch error.
    pub fn expected(what: &str, while_parsing: &str, got: &Content) -> Self {
        DeError::new(format!(
            "expected {what} for {while_parsing}, got {}",
            got.kind()
        ))
    }

    /// Attach a field/variant location to the message.
    pub fn at(self, location: &str) -> Self {
        DeError::new(format!("{location}: {}", self.msg))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types reconstructible from the JSON data model.
pub trait Deserialize: Sized {
    /// Rebuild the value from `content`.
    fn from_content(content: &Content) -> Result<Self, DeError>;

    /// Value to use when a struct field is absent from the map.
    ///
    /// Errors by default; `Option<T>` overrides this to `None` so optional
    /// fields tolerate elision (matching real serde's treatment of `null`
    /// and serde_json's of missing `Option` fields).
    #[doc(hidden)]
    fn absent() -> Result<Self, DeError> {
        Err(DeError::new("missing field"))
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide: i128 = match *content {
                    Content::U64(n) => n as i128,
                    Content::I64(n) => n as i128,
                    _ => return Err(DeError::expected("integer", stringify!($t), content)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(format!(
                        "integer {wide} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_f64()
            .ok_or_else(|| DeError::expected("number", "f64", content))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_bool()
            .ok_or_else(|| DeError::expected("bool", "bool", content))
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let s = String::from_content(content)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String", content))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Arc::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn absent() -> Result<Self, DeError> {
        Ok(None)
    }
}

fn de_seq<T: Deserialize>(content: &Content, what: &str) -> Result<Vec<T>, DeError> {
    let items = content
        .as_array()
        .ok_or_else(|| DeError::expected("array", what, content))?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| T::from_content(item).map_err(|e| e.at(&format!("[{i}]"))))
        .collect()
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        de_seq(content, "Vec")
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let v: Vec<T> = de_seq(content, "array")?;
        let n = v.len();
        <[T; N]>::try_from(v)
            .map_err(|_| DeError::new(format!("expected array of {N} elements, got {n}")))
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        de_seq(content, "VecDeque")
            .map(Vec::into_iter)
            .map(VecDeque::from_iter)
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        de_seq(content, "BTreeSet")
            .map(Vec::into_iter)
            .map(BTreeSet::from_iter)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        de_seq(content, "HashSet")
            .map(Vec::into_iter)
            .map(HashSet::from_iter)
    }
}

/// Map keys parsed back from their string form.
///
/// The deserialization counterpart of `KeyToString`.
pub trait KeyFromString: Sized {
    fn key_parse(key: &str) -> Result<Self, DeError>;
}

impl KeyFromString for String {
    fn key_parse(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! key_int_de {
    ($($t:ty),*) => {$(
        impl KeyFromString for $t {
            fn key_parse(key: &str) -> Result<Self, DeError> {
                <$t>::from_str(key).map_err(|_| {
                    DeError::new(format!("bad {} map key: {key:?}", stringify!($t)))
                })
            }
        }
    )*};
}
key_int_de!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn de_map<K: KeyFromString, V: Deserialize>(
    content: &Content,
    what: &str,
) -> Result<Vec<(K, V)>, DeError> {
    let entries = content
        .as_map_slice()
        .ok_or_else(|| DeError::expected("object", what, content))?;
    entries
        .iter()
        .map(|(k, v)| Ok((K::key_parse(k)?, V::from_content(v).map_err(|e| e.at(k))?)))
        .collect()
}

impl<K: KeyFromString + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        de_map(content, "BTreeMap")
            .map(Vec::into_iter)
            .map(BTreeMap::from_iter)
    }
}

impl<K: KeyFromString + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        de_map(content, "HashMap")
            .map(Vec::into_iter)
            .map(HashMap::from_iter)
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => Err(DeError::expected("null", "()", other)),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal, $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let items = content
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", "tuple", content))?;
                if items.len() != $len {
                    return Err(DeError::new(format!(
                        "expected {}-tuple, got array of {}", $len, items.len()
                    )));
                }
                Ok(($($t::from_content(&items[$n]).map_err(|e| e.at(&format!("[{}]", $n)))?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1, 0 A)
    (2, 0 A, 1 B)
    (3, 0 A, 1 B, 2 C)
    (4, 0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Serialize;

    fn round_trip<T: Serialize + Deserialize + PartialEq + fmt::Debug>(v: T) {
        let c = v.to_content();
        assert_eq!(T::from_content(&c).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(42u64);
        round_trip(-17i64);
        round_trip(3.25f64);
        round_trip(true);
        round_trip(String::from("hüllo\n"));
        round_trip(Some(5u32));
        round_trip(Option::<u32>::None);
        round_trip(vec![1u8, 2, 3]);
        round_trip((String::from("k"), vec![9i64]));
    }

    #[test]
    fn maps_round_trip() {
        let mut m = HashMap::new();
        m.insert(7u64, vec![String::from("a")]);
        m.insert(9u64, vec![]);
        round_trip(m);
        let mut b = BTreeMap::new();
        b.insert(String::from("x"), 1i64);
        round_trip(b);
    }

    #[test]
    fn out_of_range_integer_fails() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(u64::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn absent_option_defaults_to_none() {
        assert_eq!(Option::<u8>::absent().unwrap(), None);
        assert!(u8::absent().is_err());
    }
}

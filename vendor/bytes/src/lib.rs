//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, reference-counted byte buffer whose
//! clones and slices share one allocation. Only the surface the workspace
//! uses is implemented (`from`, `copy_from_slice`, `slice`, deref to
//! `[u8]`, equality, hashing).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing this buffer's allocation.
    ///
    /// Panics if the range is out of bounds, matching `bytes::Bytes::slice`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice out of bounds: {begin}..{end} of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copy the contents out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&Vec<u8>> for Bytes {
    fn from(v: &Vec<u8>) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&Bytes> for Bytes {
    fn from(v: &Bytes) -> Self {
        v.clone()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(&s2[..], &[3]);
        assert_eq!(Arc::strong_count(&b.data), 3);
    }

    #[test]
    fn equality_and_len() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..5);
    }
}

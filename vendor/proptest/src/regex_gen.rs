//! Random string generation from a small regex subset.
//!
//! Supports exactly the shape the workspace's property tests use: a sequence
//! of atoms, where an atom is a literal character or a character class
//! `[...]` (ranges and literals, no negation), optionally followed by a
//! `{n}`, `{m,n}`, `?`, `*` or `+` quantifier (unbounded quantifiers cap at
//! 8 repetitions).

use crate::rng::TestRng;

pub(crate) struct RegexGen {
    atoms: Vec<(Vec<char>, u32, u32)>, // (alphabet, min, max)
}

impl RegexGen {
    pub(crate) fn parse(pattern: &str) -> Result<RegexGen, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or("unterminated character class")?
                        + i;
                    let class = parse_class(&chars[i + 1..close])?;
                    i = close + 1;
                    class
                }
                '\\' => {
                    let c = *chars.get(i + 1).ok_or("dangling backslash")?;
                    i += 2;
                    vec![c]
                }
                '(' | ')' | '|' | '.' | '^' | '$' => {
                    return Err(format!("unsupported regex construct `{}`", chars[i]));
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .ok_or("unterminated quantifier")?
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.parse().map_err(|_| "bad quantifier")?,
                                hi.parse().map_err(|_| "bad quantifier")?,
                            ),
                            None => {
                                let n: u32 = body.parse().map_err(|_| "bad quantifier")?;
                                (n, n)
                            }
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            if max < min {
                return Err("quantifier max below min".into());
            }
            if alphabet.is_empty() {
                return Err("empty character class".into());
            }
            atoms.push((alphabet, min, max));
        }
        Ok(RegexGen { atoms })
    }

    pub(crate) fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (alphabet, min, max) in &self.atoms {
            let n = *min + rng.below((*max - *min + 1) as u64) as u32;
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

fn parse_class(body: &[char]) -> Result<Vec<char>, String> {
    if body.first() == Some(&'^') {
        return Err("negated classes unsupported".into());
    }
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // `a-z` range (a `-` at the ends is a literal).
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            if lo > hi {
                return Err(format!("inverted range {lo}-{hi}"));
            }
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            let c = if body[i] == '\\' {
                i += 1;
                *body.get(i).ok_or("dangling backslash in class")?
            } else {
                body[i]
            };
            alphabet.push(c);
            i += 1;
        }
    }
    Ok(alphabet)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_ranges_and_literals() {
        let g = RegexGen::parse("[a-cX._-]").unwrap();
        let mut r = TestRng::for_case(0);
        for _ in 0..100 {
            let s = g.sample(&mut r);
            assert_eq!(s.len(), 1);
            assert!("abcX._-".contains(&s));
        }
    }

    #[test]
    fn bounded_quantifiers() {
        let g = RegexGen::parse("[a-z0-9]{1,6}").unwrap();
        let mut r = TestRng::for_case(1);
        for _ in 0..200 {
            let s = g.sample(&mut r);
            assert!((1..=6).contains(&s.len()), "{s:?}");
        }
    }

    #[test]
    fn the_test_suites_patterns_parse() {
        for p in [
            "[a-zA-Z0-9][a-zA-Z0-9 _.-]{0,14}[a-zA-Z0-9]",
            "[a-c]{0,8}",
            "[a-c%_]{0,6}",
            "[a-z0-9.]{1,6}",
            "[a-z0-9]{1,5}",
        ] {
            RegexGen::parse(p).unwrap();
        }
    }

    #[test]
    fn rejects_unsupported() {
        assert!(RegexGen::parse("(ab)+").is_err());
        assert!(RegexGen::parse("[^a]").is_err());
    }
}

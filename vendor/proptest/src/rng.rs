//! Deterministic PRNG feeding the strategies.

/// splitmix64-based generator; one instance per test case, seeded from the
/// case index so every run regenerates identical inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case number `case`.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(case.wrapping_add(0x0DDB_1ACC)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case(3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let mut r = TestRng::for_case(3);
        assert_eq!(a, (0..8).map(|_| r.next_u64()).collect::<Vec<_>>());
        let mut other = TestRng::for_case(4);
        assert_ne!(a[0], other.next_u64());
    }
}

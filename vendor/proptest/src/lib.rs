//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_filter`, integer-range
//! and regex-string strategies, tuples, `prop::collection::vec`,
//! `prop_oneof!`, `any::<T>()`, `ProptestConfig`, and the `proptest!` /
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **Deterministic**: every case is generated from a seed derived from the
//!   case index, so failures reproduce exactly — in line with the repo-wide
//!   determinism rule enforced by `cargo xtask lint`.
//! * **No shrinking**: a failing case reports its inputs verbatim.
//! * Regex strategies support the character-class + `{m,n}` quantifier
//!   subset actually present in the test suite.

mod regex_gen;
mod rng;
mod strategy;

pub use rng::TestRng;
pub use strategy::{any, Arbitrary, BoxedStrategy, Strategy, Union};

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure of a single property case (the `Err` side of a test body).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A plain failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        /// Collection strategies.
        pub mod collection {
            pub use crate::strategy::vec;
        }
    }
}

/// Top-level `prop` module, mirroring `proptest::prop` paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Define property tests (stand-in for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(__case as u64);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                    $(&$arg,)*
                );
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "property failed at case {}/{}: {}\ninputs:\n{}",
                        __case, __config.cases, __e, __inputs
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fallible assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fallible equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Fallible inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} ({})\n  both: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l
        );
    }};
}

/// Choose uniformly between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

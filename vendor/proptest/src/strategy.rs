//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::regex_gen::RegexGen;
use crate::rng::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (resampling on rejection).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Choose uniformly among `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.reason
        );
    }
}

// ------------------------------------------------------------- primitives --

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// String strategies from a regex literal (character-class subset).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        RegexGen::parse(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"))
            .sample(rng)
    }
}

// ------------------------------------------------------------ collections --

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// `prop::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(11)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (0i64..5, 10u8..12).sample(&mut r);
            assert!((0..5).contains(&v.0) && (10..12).contains(&v.1));
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut r = rng();
        for _ in 0..100 {
            let v = vec(any::<u8>(), 2..6).sample(&mut r);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn map_filter_union() {
        let mut r = rng();
        let s = prop_oneof_like();
        for _ in 0..100 {
            let v = s.sample(&mut r);
            assert!(v == "even" || v == "odd");
        }
        let evens = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(evens.sample(&mut r) % 2, 0);
        }
    }

    fn prop_oneof_like() -> Union<&'static str> {
        Union::new(vec![
            (0u8..1).prop_map(|_| "even").boxed(),
            (0u8..1).prop_map(|_| "odd").boxed(),
        ])
    }

    #[test]
    fn regex_str_strategy() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-c]{2,4}".sample(&mut r);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}

//! The paper's §4 exemplar scenario, end to end: a curator builds the
//! "Avian Culture" collection under "Cultures", gathering distributed
//! files, images, registered URLs, live SQL queries and linked objects,
//! with structural metadata ("MetaCore for Cultures"), contributor roles,
//! annotations, and finally public browsing + querying.
//!
//! ```text
//! cargo run --example avian_culture
//! ```

use srb_grid::prelude::*;

fn main() -> SrbResult<()> {
    // A three-site grid: the curator's home site plus two remote archives.
    let mut gb = GridBuilder::new();
    let sdsc = gb.site("sdsc");
    let caltech = gb.site("caltech");
    let ncsa = gb.site("ncsa");
    gb.default_link(LinkSpec::wan());
    gb.link(sdsc, caltech, LinkSpec::metro());
    let srv = gb.server("srb-sdsc", sdsc);
    let srv_ct = gb.server("srb-caltech", caltech);
    let srv_nc = gb.server("srb-ncsa", ncsa);
    gb.fs_resource("unix-sdsc", srv)
        .archive_resource("hpss-caltech", srv_ct)
        .fs_resource("unix-ncsa", srv_nc)
        .db_resource("oracle-dlib", srv_ct);
    let grid = gb.build();
    grid.register_user("curator", "sdsc", "pw")?;
    grid.register_user("colleague", "ncsa", "pw2")?;

    let curator = SrbConnection::connect(&grid, srv, "curator", "sdsc", "pw")?;

    // --- Build the collection hierarchy with structural metadata. -------
    curator.make_collection("/home/curator/Cultures/Avian Culture")?;
    let cultures = grid
        .mcat
        .collections
        .resolve(&LogicalPath::parse("/home/curator/Cultures")?)?;
    grid.mcat.collections.set_requirements(
        cultures,
        vec![AttrRequirement::mandatory(
            "culture",
            "MetaCore for Cultures: which culture does this item document?",
        )],
    )?;
    let avian = grid
        .mcat
        .collections
        .resolve(&LogicalPath::parse("/home/curator/Cultures/Avian Culture")?)?;
    grid.mcat.collections.set_requirements(
        avian,
        vec![AttrRequirement::vocabulary(
            "medium",
            &["image", "movie", "text", "sound"],
            "what kind of media this item is",
        )],
    )?;
    println!("collection built with structural metadata requirements");

    // --- The curator ingests her own materials. --------------------------
    curator.ingest(
        "/home/curator/Cultures/Avian Culture/condor-notes.txt",
        b"Field notes on the Andean condor, 2001.\nWingspan: 290\n",
        IngestOptions::to_resource("unix-sdsc")
            .with_type("ascii text")
            .with_metadata(Triplet::new("culture", "avian", ""))
            .with_metadata(Triplet::new("medium", "text", ""))
            .with_metadata(Triplet::new("species", "Vultur gryphus", "")),
    )?;
    // Metadata extraction with a T-language rule over the notes file.
    let extracted = curator.extract_metadata(
        "/home/curator/Cultures/Avian Culture/condor-notes.txt",
        "extract Wingspan after \"Wingspan:\"\nunits Wingspan \"cm\"\n",
    )?;
    println!(
        "extracted {} triplet(s) from the notes file",
        extracted.len()
    );

    // --- Outside materials: registered, not copied. ----------------------
    grid.web.host_static(
        "http://museum.example/avian/flight.mov",
        &b"QuickTime movie bytes"[..],
    );
    curator.register(
        "/home/curator/Cultures/Avian Culture/flight-movie",
        RegisterSpec::Url {
            url: "http://museum.example/avian/flight.mov".into(),
        },
        IngestOptions::default()
            .with_metadata(Triplet::new("culture", "avian", ""))
            .with_metadata(Triplet::new("medium", "movie", "")),
    )?;
    // A live database of specimen records, exposed as a registered SQL
    // object rendered as an HTML table.
    let db = grid.driver(grid.resource_id("oracle-dlib")?)?;
    let db = db.as_db().expect("oracle-dlib is a database");
    db.engine()
        .execute("CREATE TABLE specimens (species, museum, year)")?;
    db.engine().execute(
        "INSERT INTO specimens VALUES \
         ('Vultur gryphus','SDNHM',1998), ('Gymnogyps californianus','LACM',1987)",
    )?;
    curator.register(
        "/home/curator/Cultures/Avian Culture/specimen-table",
        RegisterSpec::Sql {
            resource: "oracle-dlib".into(),
            sql: "SELECT species, museum, year FROM specimens".into(),
            partial: false,
            template: Template::HtmlRel,
        },
        IngestOptions::default()
            .with_metadata(Triplet::new("culture", "avian", ""))
            .with_metadata(Triplet::new("medium", "text", "")),
    )?;
    println!("registered a URL object and a live SQL object");

    // --- A colleague contributes (with the required metadata). -----------
    curator.grant(
        "/home/curator/Cultures/Avian Culture",
        grid.mcat.users.find("colleague", "ncsa").unwrap().id,
        Permission::Write,
    )?;
    let colleague = SrbConnection::connect(&grid, srv_nc, "colleague", "ncsa", "pw2")?;
    // Forgetting the mandatory attribute is rejected — the structural
    // metadata is enforced, exactly as the scenario demands.
    let missing = colleague.ingest(
        "/home/curator/Cultures/Avian Culture/heron.jpg",
        b"JPEG bytes",
        IngestOptions::to_resource("unix-ncsa").with_type("jpeg image"),
    );
    println!("ingest without 'culture' attribute -> {missing:?}");
    assert!(missing.is_err());
    colleague.ingest(
        "/home/curator/Cultures/Avian Culture/heron.jpg",
        b"JPEG bytes",
        IngestOptions::to_resource("unix-ncsa")
            .with_type("jpeg image")
            .with_metadata(Triplet::new("culture", "avian", ""))
            .with_metadata(Triplet::new("medium", "image", ""))
            .with_metadata(Triplet::new("species", "Ardea herodias", "")),
    )?;

    // --- Multi-modal relationships: links across collections. ------------
    curator.make_collection("/home/curator/ByMedium/movies")?;
    curator.link(
        "/home/curator/Cultures/Avian Culture/flight-movie",
        "/home/curator/ByMedium/movies/condor-flight",
    )?;

    // --- Dialogue, ratings, errata from readers. --------------------------
    colleague.annotate(
        "/home/curator/Cultures/Avian Culture/condor-notes.txt",
        AnnotationKind::Dialogue,
        "",
        "Is the 290cm wingspan from a male specimen?",
    )?;
    colleague.annotate(
        "/home/curator/Cultures/Avian Culture/condor-notes.txt",
        AnnotationKind::Rating,
        "overall",
        "5",
    )?;

    // --- Publish and browse/query as the public. --------------------------
    curator.grant_public("/home/curator/Cultures", Permission::Read)?;
    let q = Query::everywhere()
        .under(LogicalPath::parse("/home/curator/Cultures")?)
        .and("medium", CompareOp::Eq, "image")
        .show("species")
        .show("culture");
    let (hits, _) = curator.query(&q)?;
    println!("\npublic query: images in the Cultures hierarchy");
    for h in &hits {
        println!("  {} -> {:?}", h.path, h.selected);
    }
    assert_eq!(hits.len(), 1);

    // Open the SQL object the way a browser would.
    let (content, _) = curator.open("/home/curator/Cultures/Avian Culture/specimen-table", &[])?;
    println!(
        "\nspecimen table rendered for the browser:\n{}",
        content.display()
    );

    // The annotation-aware query finds the dialogue.
    let q2 = Query::everywhere()
        .and("annotation", CompareOp::Like, "%wingspan%")
        .with_annotations();
    let (hits2, _) = curator.query(&q2)?;
    assert_eq!(hits2.len(), 1);
    println!("annotation query found: {}", hits2[0].path);
    Ok(())
}

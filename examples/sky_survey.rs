//! A digital-library workload modelled on the paper's 2-Micron All Sky
//! Survey deployment ("10 TB comprising 5 million files in a digital
//! library"), scaled to simulation size: thousands of small FITS images
//! ingested into containers, synchronized to a tape archive, indexed with
//! extracted metadata, and served to queries — demonstrating why
//! containers exist.
//!
//! ```text
//! cargo run --release --example sky_survey
//! ```

use srb_grid::prelude::*;

const N_IMAGES: usize = 2_000;
const IMAGES_PER_CONTAINER: usize = 250;

fn fits_image(idx: usize) -> Vec<u8> {
    // A miniature FITS-like header + payload.
    format!(
        "SIMPLE  = T\nOBJECT  = 'field-{:05}'\nRA      = {}\nDEC     = {}\nTELESCOP= '2MASS'\nEND\n{}",
        idx,
        (idx * 7) % 360,
        (idx * 3) % 180,
        "#".repeat(512)
    )
    .into_bytes()
}

fn main() -> SrbResult<()> {
    let mut gb = GridBuilder::new();
    let sdsc = gb.site("sdsc");
    let ipac = gb.site("ipac");
    gb.link(sdsc, ipac, LinkSpec::wan());
    let srv = gb.server("srb-sdsc", sdsc);
    let srv_ipac = gb.server("srb-ipac", ipac);
    gb.cache_resource("cache-sdsc", srv, 256 << 20)
        .archive_resource("hpss-ipac", srv_ipac)
        .logical_resource("survey-store", &["cache-sdsc", "hpss-ipac"]);
    let grid = gb.build();
    grid.register_user("survey", "sdsc", "pw")?;
    let conn = SrbConnection::connect(&grid, srv, "survey", "sdsc", "pw")?;

    conn.make_collection("/home/survey/2mass")?;

    // Ingest in container-sized batches.
    let t0 = std::time::Instant::now();
    let mut container_idx = 0;
    let mut total_receipt = Receipt::free();
    for i in 0..N_IMAGES {
        if i % IMAGES_PER_CONTAINER == 0 {
            container_idx += 1;
            conn.create_container(
                &format!("2mass-ct{container_idx}"),
                "survey-store",
                64 << 20,
            )?;
        }
        let r = conn.ingest(
            &format!("/home/survey/2mass/field-{i:05}.fits"),
            fits_image(i),
            IngestOptions::into_container(&format!("2mass-ct{container_idx}"))
                .with_type("fits image")
                .with_metadata(Triplet::new("ra", ((i * 7) % 360) as i64, "deg"))
                .with_metadata(Triplet::new("dec", ((i * 3) % 180) as i64, "deg")),
        )?;
        total_receipt.absorb(&r);
    }
    println!(
        "ingested {N_IMAGES} images into {container_idx} containers in {:?} wall, \
         {:.1} ms simulated, {} catalog datasets",
        t0.elapsed(),
        total_receipt.sim_ms(),
        grid.mcat.datasets.count()
    );

    // Extract metadata from a sample image with a T-language rule.
    let t = conn.extract_metadata(
        "/home/survey/2mass/field-00042.fits",
        "extract OBJECT keyvalue \"=\"\nextract TELESCOP keyvalue \"=\"\n",
    )?;
    println!("extracted from field 42: {t:?}");

    // Synchronize the containers to the archive and purge the caches —
    // the survey now lives on tape, as it would in production.
    for c in 1..=container_idx {
        conn.sync_container(&format!("2mass-ct{c}"))?;
        conn.purge_container_cache(&format!("2mass-ct{c}"))?;
    }
    println!("containers synchronized to hpss-ipac and caches purged");

    // A cone-search-like query: RA band + declination band.
    let q = Query::everywhere()
        .under(LogicalPath::parse("/home/survey/2mass")?)
        .and("ra", CompareOp::Ge, 100i64)
        .and("ra", CompareOp::Lt, 110i64)
        .and("dec", CompareOp::Ge, 30i64)
        .and("dec", CompareOp::Lt, 60i64)
        .show("ra")
        .show("dec");
    let t1 = std::time::Instant::now();
    let (hits, _) = conn.query(&q)?;
    println!(
        "cone query matched {} images in {:?} (indexed path)",
        hits.len(),
        t1.elapsed()
    );

    // Reading a matched image recalls its whole container once; reading
    // it (or any container neighbour) again is a cache hit.
    if let [first, ..] = hits.as_slice() {
        let (_, r1) = conn.read(&first.path)?;
        let (_, r2) = conn.read(&first.path)?;
        println!(
            "first read (container recall from tape): {:.1} ms simulated",
            r1.sim_ms()
        );
        println!(
            "second read (cache hit):                 {:.3} ms simulated",
            r2.sim_ms()
        );
        assert!(r1.sim_ns > r2.sim_ns * 10);
    }

    println!(
        "catalog summary: {}",
        serde_json::to_string(&grid.mcat.summary()).unwrap()
    );
    Ok(())
}

//! Run the MySRB web interface over a demo grid and browse it for real.
//!
//! ```text
//! cargo run --example mysrb_server
//! # then open http://127.0.0.1:8474/ and sign on as sekar / sdsc / demo
//! ```
//!
//! The demo grid is pre-seeded with the Avian Culture collection, a
//! registered SQL object, and annotations, so Figure 1 (collection page)
//! and Figure 2 (ingest form) of the paper can be reproduced in a browser.

use srb_grid::prelude::*;
use std::net::TcpListener;
use std::sync::atomic::AtomicBool;

fn main() -> SrbResult<()> {
    let mut gb = GridBuilder::new();
    let sdsc = gb.site("sdsc");
    let caltech = gb.site("caltech");
    gb.link(sdsc, caltech, LinkSpec::wan());
    let srv = gb.server("srb-sdsc", sdsc);
    let srv_ct = gb.server("srb-caltech", caltech);
    gb.fs_resource("unix-sdsc", srv)
        .archive_resource("hpss-caltech", srv_ct)
        .db_resource("oracle-dlib", srv_ct)
        .logical_resource("logrsrc1", &["unix-sdsc", "hpss-caltech"]);
    let grid = gb.build();
    grid.register_user("sekar", "sdsc", "demo")?;

    // Seed content so the first browse shows something.
    let conn = SrbConnection::connect(&grid, srv, "sekar", "sdsc", "demo")?;
    conn.make_collection("/home/sekar/Cultures/Avian Culture")?;
    let avian = grid
        .mcat
        .collections
        .resolve(&LogicalPath::parse("/home/sekar/Cultures/Avian Culture")?)?;
    grid.mcat.collections.set_requirements(
        avian,
        vec![
            AttrRequirement::mandatory("culture", "culture name"),
            AttrRequirement::vocabulary("medium", &["image", "movie", "text"], "media type"),
        ],
    )?;
    conn.ingest(
        "/home/sekar/Cultures/Avian Culture/condor-notes.txt",
        b"Field notes on the Andean condor.\n",
        IngestOptions::to_resource("logrsrc1")
            .with_type("ascii text")
            .with_metadata(Triplet::new("culture", "avian", ""))
            .with_metadata(Triplet::new("medium", "text", ""))
            .with_metadata(Triplet::new("species", "Vultur gryphus", "")),
    )?;
    conn.annotate(
        "/home/sekar/Cultures/Avian Culture/condor-notes.txt",
        AnnotationKind::Comment,
        "",
        "First entry of the collection.",
    )?;
    {
        let db = grid.driver(grid.resource_id("oracle-dlib")?)?;
        let db = db.as_db().expect("database resource");
        db.engine()
            .execute("CREATE TABLE specimens (species, museum)")?;
        db.engine()
            .execute("INSERT INTO specimens VALUES ('Vultur gryphus','SDNHM')")?;
    }
    conn.register(
        "/home/sekar/Cultures/Avian Culture/specimens",
        RegisterSpec::Sql {
            resource: "oracle-dlib".into(),
            sql: "SELECT species, museum FROM specimens".into(),
            partial: false,
            template: Template::HtmlRel,
        },
        IngestOptions::default()
            .with_metadata(Triplet::new("culture", "avian", ""))
            .with_metadata(Triplet::new("medium", "text", "")),
    )?;

    let app = MySrb::new(&grid, srv, 0xDEC0DE);
    let addr = std::env::var("MYSRB_ADDR").unwrap_or_else(|_| "127.0.0.1:8474".to_string());
    let listener = TcpListener::bind(&addr).expect("bind MySRB address");
    println!("MySRB listening on http://{addr}/");
    println!("sign on as: user 'sekar', domain 'sdsc', password 'demo'");
    println!("then browse /home/sekar/Cultures/Avian Culture (Figure 1),");
    println!("use [ingest file] for the Figure 2 form, and [query] to search.");
    let shutdown = AtomicBool::new(false);
    mysrb::http::serve(&app, listener, &shutdown);
    Ok(())
}

//! Fault tolerance and load balancing in a federated grid: replicate a
//! hot dataset across three sites, drive it from a parallel client pool,
//! kill a site mid-stream, and watch the federation redirect access —
//! "the system automatically redirecting access to a replica on a
//! separate storage system when the first storage system is unavailable".
//!
//! ```text
//! cargo run --release --example federation_failover
//! ```

use srb_grid::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn main() -> SrbResult<()> {
    let mut gb = GridBuilder::new();
    let sdsc = gb.site("sdsc");
    let caltech = gb.site("caltech");
    let ncsa = gb.site("ncsa");
    gb.default_link(LinkSpec::wan());
    let srv_sdsc = gb.server("srb-sdsc", sdsc);
    let srv_caltech = gb.server("srb-caltech", caltech);
    let srv_ncsa = gb.server("srb-ncsa", ncsa);
    gb.fs_resource("fs-sdsc", srv_sdsc)
        .fs_resource("fs-caltech", srv_caltech)
        .fs_resource("fs-ncsa", srv_ncsa);
    let grid = gb.build();
    grid.register_user("ops", "sdsc", "pw")?;

    let conn = SrbConnection::connect(&grid, srv_sdsc, "ops", "sdsc", "pw")?;
    conn.ingest(
        "/home/ops/hot.dat",
        vec![0xABu8; 64 * 1024],
        IngestOptions::to_resource("fs-sdsc"),
    )?;
    conn.replicate("/home/ops/hot.dat", "fs-caltech")?;
    conn.replicate("/home/ops/hot.dat", "fs-ncsa")?;
    println!("dataset replicated to 3 sites");

    let reads_ok = AtomicU64::new(0);
    let failovers = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Client pool spread across contact servers.
        for (i, srv) in [srv_sdsc, srv_caltech, srv_ncsa, srv_sdsc]
            .iter()
            .enumerate()
        {
            let grid = &grid;
            let reads_ok = &reads_ok;
            let failovers = &failovers;
            let srv = *srv;
            s.spawn(move || {
                let conn = SrbConnection::connect(grid, srv, "ops", "sdsc", "pw").expect("connect");
                for _ in 0..200 {
                    match conn.read("/home/ops/hot.dat") {
                        Ok((data, r)) => {
                            assert_eq!(data.len(), 64 * 1024);
                            reads_ok.fetch_add(1, Ordering::Relaxed);
                            if r.replicas_tried > 1 {
                                failovers.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) => panic!("client {i}: read failed: {e}"),
                    }
                }
            });
        }
        // Chaos: take CalTech's storage down and up repeatedly.
        let grid = &grid;
        s.spawn(move || {
            for _ in 0..30 {
                grid.fail_resource("fs-caltech").unwrap();
                std::thread::yield_now();
                grid.restore_resource("fs-caltech").unwrap();
                std::thread::yield_now();
            }
        });
    });

    let ok = reads_ok.load(Ordering::Relaxed);
    println!(
        "{ok}/800 reads succeeded; {} transparently failed over",
        failovers.load(Ordering::Relaxed)
    );
    assert_eq!(ok, 800);

    // Load-balance report: how the three replicas shared the traffic.
    for name in ["fs-sdsc", "fs-caltech", "fs-ncsa"] {
        let rid = grid.resource_id(name)?;
        println!(
            "  {name}: {} ops, {:.1} ms simulated busy time",
            grid.load.completed(rid),
            grid.load.busy_ns(rid) as f64 / 1e6
        );
    }

    // Finally: lose the *primary* site entirely and keep serving.
    grid.fail_resource("fs-sdsc")?;
    grid.fail_resource("fs-caltech")?;
    let (data, r) = conn.read("/home/ops/hot.dat")?;
    println!(
        "with two of three resources down: read {} bytes after trying {} replica(s)",
        data.len(),
        r.replicas_tried
    );
    Ok(())
}

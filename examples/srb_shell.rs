//! An Scommands-style shell over a demo grid — SRB shipped command-line
//! utilities (Sls, Sput, Sget, Smkdir, …) alongside MySRB; the paper notes
//! "the SRB allows ingestion through command line and API".
//!
//! ```text
//! cargo run --example srb_shell            # interactive
//! echo "Sls /home/sekar" | cargo run --example srb_shell   # scripted
//! ```
//!
//! Commands:
//! ```text
//! Sls [path]                 list a collection
//! Scd <path>                 change the working collection
//! Smkdir <path>              create a collection
//! Sput <path> <text…>        ingest text as a file
//! Sget <path>                print a file
//! Smeta <path> [n v [u]]     show / add metadata
//! Sannotate <path> <text…>   attach a comment
//! Squery <attr> <op> <value> conjunctive query from the working collection
//! Sreplicate <path> <rsrc>   add a replica
//! Ssync <path>               repair stale replicas
//! Schksum <path>             verify replica checksums
//! Sstat <path>               type/size/replicas/version
//! Saudit                     recent audit rows
//! Shelp / Squit
//! ```

use srb_grid::prelude::*;
use std::io::{BufRead, Write};

fn resolve(cwd: &str, arg: &str) -> String {
    if arg.starts_with('/') {
        arg.to_string()
    } else {
        format!("{}/{}", cwd.trim_end_matches('/'), arg)
    }
}

fn main() -> SrbResult<()> {
    let mut gb = GridBuilder::new();
    let sdsc = gb.site("sdsc");
    let caltech = gb.site("caltech");
    gb.link(sdsc, caltech, LinkSpec::wan());
    let srv = gb.server("srb-sdsc", sdsc);
    let srv2 = gb.server("srb-caltech", caltech);
    gb.fs_resource("unix-sdsc", srv)
        .fs_resource("unix-caltech", srv2)
        .archive_resource("hpss-caltech", srv2)
        .logical_resource("logrsrc1", &["unix-sdsc", "hpss-caltech"]);
    let mut grid = gb.build();
    // Persistence: SRB_SHELL_STATE names a grid-state file; if it exists we
    // restore the previous session's catalog and data, and `Ssave` writes
    // back to it.
    let state_file = std::env::var("SRB_SHELL_STATE").ok();
    let restored = match &state_file {
        Some(f) if std::path::Path::new(f).exists() => {
            let json = std::fs::read_to_string(f).expect("read state file");
            grid.restore_state(&json)?;
            true
        }
        _ => false,
    };
    let grid = grid; // freeze
    if !restored {
        grid.register_user("sekar", "sdsc", "demo")?;
    }
    let conn = SrbConnection::connect(&grid, srv, "sekar", "sdsc", "demo")?;
    if !restored {
        conn.ingest(
            "/home/sekar/welcome.txt",
            b"Welcome to the SRB shell. Try: Sls, Sput notes.txt hello, Squery.\n",
            IngestOptions::to_resource("unix-sdsc").with_type("ascii text"),
        )?;
    }

    let mut cwd = "/home/sekar".to_string();
    let stdin = std::io::stdin();
    let interactive = atty_guess();
    if interactive {
        println!("SRB shell — connected to srb-sdsc as sekar@sdsc. Shelp for help.");
    }
    loop {
        if interactive {
            print!("srb:{cwd}> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let Some((&cmd, args)) = parts.split_first() else {
            continue;
        };
        let result = run_command(&conn, &mut cwd, cmd, args, state_file.as_deref());
        match result {
            Ok(Some(out)) => println!("{out}"),
            Ok(None) => break,
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}

fn run_command(
    conn: &SrbConnection<'_>,
    cwd: &mut String,
    cmd: &str,
    args: &[&str],
    state_file: Option<&str>,
) -> SrbResult<Option<String>> {
    let out = match cmd {
        "Sls" => {
            let path = args.first().map(|a| resolve(cwd, a)).unwrap_or(cwd.clone());
            let (subs, files, _) = conn.list_collection(&path)?;
            let mut s = String::new();
            for c in subs {
                s.push_str(&format!("  C- {c}/\n"));
            }
            for (name, ty, size) in files {
                s.push_str(&format!("  {size:>8}  {ty:<14} {name}\n"));
            }
            s
        }
        "Scd" => {
            let target = resolve(cwd, args.first().unwrap_or(&"/"));
            conn.list_collection(&target)?; // errors if missing
            *cwd = target;
            String::new()
        }
        "Smkdir" => {
            let p = resolve(cwd, args.first().ok_or_else(usage)?);
            conn.make_collection(&p)?;
            format!("created {p}")
        }
        "Sput" => {
            let p = resolve(cwd, args.first().ok_or_else(usage)?);
            let text = args[1..].join(" ");
            conn.ingest(
                &p,
                text.as_bytes(),
                IngestOptions::to_resource("unix-sdsc").with_type("ascii text"),
            )?;
            format!("ingested {} bytes to {p}", text.len())
        }
        "Sget" => {
            let p = resolve(cwd, args.first().ok_or_else(usage)?);
            let (data, r) = conn.read(&p)?;
            format!(
                "{}\n[{} bytes, replica {:?}, {:.2} simulated ms]",
                String::from_utf8_lossy(&data),
                data.len(),
                r.served_by,
                r.sim_ms()
            )
        }
        "Smeta" => {
            let p = resolve(cwd, args.first().ok_or_else(usage)?);
            if args.len() >= 3 {
                conn.add_metadata(
                    &p,
                    Triplet::new(args[1], args[2], *args.get(3).unwrap_or(&"")),
                )?;
                "metadata added".to_string()
            } else {
                conn.metadata(&p)?
                    .iter()
                    .map(|r| {
                        format!(
                            "  {} = {} {}\n",
                            r.triplet.name,
                            r.triplet.value.lexical(),
                            r.triplet.units
                        )
                    })
                    .collect()
            }
        }
        "Sannotate" => {
            let p = resolve(cwd, args.first().ok_or_else(usage)?);
            conn.annotate(&p, AnnotationKind::Comment, "", &args[1..].join(" "))?;
            "annotated".to_string()
        }
        "Squery" => {
            if args.len() < 3 {
                return Err(usage());
            }
            let q = Query::everywhere()
                .under(LogicalPath::parse(cwd)?)
                .and(
                    args[0],
                    CompareOp::parse(args[1])?,
                    args[2..].join(" ").as_str(),
                )
                .show(args[0]);
            let (hits, _) = conn.query(&q)?;
            hits.iter()
                .map(|h| format!("  {} ({:?})\n", h.path, h.selected))
                .collect::<String>()
                + &format!("{} hit(s)", hits.len())
        }
        "Sreplicate" => {
            let p = resolve(cwd, args.first().ok_or_else(usage)?);
            conn.replicate(&p, args.get(1).ok_or_else(usage)?)?;
            "replicated".to_string()
        }
        "Ssync" => {
            let p = resolve(cwd, args.first().ok_or_else(usage)?);
            let (n, _) = conn.sync_replicas(&p)?;
            format!("{n} replica(s) repaired")
        }
        "Schksum" => {
            let p = resolve(cwd, args.first().ok_or_else(usage)?);
            conn.verify_checksums(&p)?
                .iter()
                .map(|(num, st)| format!("  replica {num}: {st:?}\n"))
                .collect()
        }
        "Sstat" => {
            let p = resolve(cwd, args.first().ok_or_else(usage)?);
            let (ty, size, nrep, ver) = conn.stat(&p)?;
            format!("type={ty} size={size} replicas={nrep} version={ver}")
        }
        "Saudit" => conn
            .grid()
            .mcat
            .audit
            .recent(10)
            .iter()
            .map(|r| {
                format!(
                    "  {} {} {} {}\n",
                    r.at,
                    r.action.name(),
                    r.subject,
                    r.outcome
                )
            })
            .collect(),
        "Ssave" => {
            let target = args
                .first()
                .map(|s| s.to_string())
                .or_else(|| state_file.map(|s| s.to_string()))
                .ok_or_else(usage)?;
            let json = conn.grid().save_state()?;
            std::fs::write(&target, &json)
                .map_err(|e| SrbError::Io(format!("write {target}: {e}")))?;
            format!("saved {} bytes of grid state to {target}", json.len())
        }
        "Shelp" => "commands: Sls Scd Smkdir Sput Sget Smeta Sannotate Squery \
                    Sreplicate Ssync Schksum Sstat Saudit Ssave Squit"
            .to_string(),
        "Squit" | "Sexit" => return Ok(None),
        other => format!("unknown command '{other}' — try Shelp"),
    };
    Ok(Some(out))
}

fn usage() -> SrbError {
    SrbError::Invalid("missing argument — see Shelp".into())
}

/// Crude interactivity guess without an extra dependency: honour an env
/// override, default to interactive.
fn atty_guess() -> bool {
    std::env::var("SRB_SHELL_BATCH").is_err()
}

//! Quickstart: build a two-site data grid, ingest a file, replicate it,
//! survive a resource failure, and query by metadata.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use srb_grid::prelude::*;

fn main() -> SrbResult<()> {
    // 1. Describe the deployment: two sites joined by a WAN link, one SRB
    //    server per site, a Unix file system at SDSC and an HPSS archive at
    //    CalTech (the paper's running example).
    let mut gb = GridBuilder::new();
    let sdsc = gb.site("sdsc");
    let caltech = gb.site("caltech");
    gb.link(sdsc, caltech, LinkSpec::wan());
    let srv_sdsc = gb.server("srb-sdsc", sdsc);
    let srv_caltech = gb.server("srb-caltech", caltech);
    gb.fs_resource("unix-sdsc", srv_sdsc)
        .archive_resource("hpss-caltech", srv_caltech)
        .logical_resource("logrsrc1", &["unix-sdsc", "hpss-caltech"]);
    let grid = gb.build();
    grid.register_user("sekar", "sdsc", "secret")?;

    // 2. Single sign-on to the nearest server.
    let conn = SrbConnection::connect(&grid, srv_sdsc, "sekar", "sdsc", "secret")?;
    println!("connected as user {}", conn.user());

    // 3. Ingest to the logical resource: one call, two synchronous
    //    replicas (disk at SDSC + tape at CalTech).
    let receipt = conn.ingest(
        "/home/sekar/first.txt",
        b"hello, data grid",
        IngestOptions::to_resource("logrsrc1")
            .with_type("ascii text")
            .with_metadata(Triplet::new("project", "quickstart", "")),
    )?;
    println!(
        "ingested with {} replicas in {:.2} ms (simulated), {} bytes moved",
        2,
        receipt.sim_ms(),
        receipt.bytes
    );

    // 4. Read it back — and again with the disk resource failed, to watch
    //    the transparent failover the paper promises.
    let (data, r) = conn.read("/home/sekar/first.txt")?;
    println!(
        "read {:?} from replica {:?} in {:.2} ms",
        std::str::from_utf8(&data).unwrap(),
        r.served_by,
        r.sim_ms()
    );
    grid.fail_resource("unix-sdsc")?;
    let (_, r) = conn.read("/home/sekar/first.txt")?;
    println!(
        "with unix-sdsc DOWN the read still works: {} replica(s) tried, {:.2} ms \
         (tape is slower!)",
        r.replicas_tried,
        r.sim_ms()
    );
    grid.restore_resource("unix-sdsc")?;

    // 5. Query by attribute across the whole name space.
    let q = Query::everywhere()
        .and("project", CompareOp::Eq, "quickstart")
        .show("project");
    let (hits, _) = conn.query(&q)?;
    for h in &hits {
        println!("query hit: {} ({:?})", h.path, h.selected);
    }
    assert_eq!(hits.len(), 1);

    println!(
        "network totals: {} messages, {} bytes",
        grid.network.message_count(),
        grid.network.bytes_moved()
    );
    Ok(())
}

//! Whole-stack integration: web app + SRB core + MCAT + storage + network
//! in one scenario, exercised through the facade crate's prelude.

use srb_grid::prelude::*;
use srb_grid::web::{MySrb, Request};

fn build_grid() -> (Grid, srb_grid::types::ServerId, srb_grid::types::ServerId) {
    let mut gb = GridBuilder::new();
    let sdsc = gb.site("sdsc");
    let caltech = gb.site("caltech");
    gb.link(sdsc, caltech, LinkSpec::wan());
    let s1 = gb.server("srb-sdsc", sdsc);
    let s2 = gb.server("srb-caltech", caltech);
    gb.fs_resource("unix-sdsc", s1)
        .cache_resource("cache-sdsc", s1, 1 << 20)
        .archive_resource("hpss-caltech", s2)
        .db_resource("oracle-dlib", s2)
        .logical_resource("logrsrc1", &["unix-sdsc", "hpss-caltech"])
        .logical_resource("ct-store", &["cache-sdsc", "hpss-caltech"]);
    let grid = gb.build();
    grid.register_user("alice", "sdsc", "pw-a").unwrap();
    grid.register_user("bob", "caltech", "pw-b").unwrap();
    (grid, s1, s2)
}

#[test]
fn library_and_web_views_agree() {
    let (grid, s1, _) = build_grid();
    let conn = SrbConnection::connect(&grid, s1, "alice", "sdsc", "pw-a").unwrap();
    conn.ingest(
        "/home/alice/report.txt",
        b"annual report",
        IngestOptions::to_resource("logrsrc1")
            .with_type("ascii text")
            .with_metadata(Triplet::new("year", 2002i64, "")),
    )
    .unwrap();

    let app = MySrb::new(&grid, s1, 3);
    let resp = app.handle(&Request::post(
        "/login",
        "user=alice&domain=sdsc&password=pw-a",
        None,
    ));
    let key = resp
        .headers
        .iter()
        .find(|(k, _)| k == "Set-Cookie")
        .and_then(|(_, v)| v.strip_prefix("mysrb_session="))
        .map(|v| v.split(';').next().unwrap().to_string())
        .unwrap();
    // The web view shows exactly what the library API ingested.
    let resp = app.handle(&Request::get(
        "/view?path=%2Fhome%2Falice%2Freport.txt",
        Some(&key),
    ));
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("annual report"));
    assert!(resp.text().contains("year"));
    // Both sessions (library ticket + web session key) coexist.
    let (data, _) = conn.read("/home/alice/report.txt").unwrap();
    assert_eq!(&data[..], b"annual report");
}

#[test]
fn cross_domain_users_share_through_grants() {
    let (grid, s1, s2) = build_grid();
    let alice = SrbConnection::connect(&grid, s1, "alice", "sdsc", "pw-a").unwrap();
    let bob = SrbConnection::connect(&grid, s2, "bob", "caltech", "pw-b").unwrap();
    alice
        .ingest(
            "/home/alice/shared.dat",
            b"hello bob",
            IngestOptions::to_resource("unix-sdsc"),
        )
        .unwrap();
    assert!(bob.read("/home/alice/shared.dat").is_err());
    alice
        .grant("/home/alice/shared.dat", bob.user(), Permission::Write)
        .unwrap();
    // Bob, connected at CalTech, reads data stored at SDSC: a federated
    // read — one hop to the (remote) MCAT, one to the data server.
    let (data, receipt) = bob.read("/home/alice/shared.dat").unwrap();
    assert_eq!(&data[..], b"hello bob");
    assert_eq!(receipt.hops, 2);
    // And writes back.
    bob.write("/home/alice/shared.dat", b"hello alice").unwrap();
    assert_eq!(
        &alice.read("/home/alice/shared.dat").unwrap().0[..],
        b"hello alice"
    );
}

#[test]
fn archive_container_web_roundtrip() {
    let (grid, s1, _) = build_grid();
    let conn = SrbConnection::connect(&grid, s1, "alice", "sdsc", "pw-a").unwrap();
    conn.create_container("webct", "ct-store", 1 << 16).unwrap();
    conn.ingest(
        "/home/alice/tiny.txt",
        b"inside a container",
        IngestOptions::into_container("webct"),
    )
    .unwrap();
    conn.sync_container("webct").unwrap();
    conn.purge_container_cache("webct").unwrap();
    // Viewing through the web triggers the archive recall transparently.
    let app = MySrb::new(&grid, s1, 3);
    let resp = app.handle(&Request::post(
        "/login",
        "user=alice&domain=sdsc&password=pw-a",
        None,
    ));
    let key = resp
        .headers
        .iter()
        .find(|(k, _)| k == "Set-Cookie")
        .and_then(|(_, v)| v.strip_prefix("mysrb_session="))
        .map(|v| v.split(';').next().unwrap().to_string())
        .unwrap();
    let resp = app.handle(&Request::get(
        "/view?path=%2Fhome%2Falice%2Ftiny.txt",
        Some(&key),
    ));
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("inside a container"));
}

#[test]
fn simulated_time_and_traffic_flow_through_the_stack() {
    let (grid, s1, _) = build_grid();
    let conn = SrbConnection::connect(&grid, s1, "alice", "sdsc", "pw-a").unwrap();
    let big = vec![9u8; 1 << 20];
    let r = conn
        .ingest(
            "/home/alice/big.bin",
            &big,
            IngestOptions::to_resource("hpss-caltech"),
        )
        .unwrap();
    // 1 MiB over a 10 MB/s WAN is ≥ ~100 ms of simulated time.
    assert!(r.sim_ns > 100_000_000, "got {} ns", r.sim_ns);
    assert!(grid.network.bytes_moved() >= 1 << 20);
    let (_, r2) = conn.read("/home/alice/big.bin").unwrap();
    assert!(r2.sim_ns > 100_000_000);
    assert_eq!(r2.hops, 1);
}

#[test]
fn roles_ladder_maps_to_capabilities() {
    let (grid, s1, _) = build_grid();
    let alice = SrbConnection::connect(&grid, s1, "alice", "sdsc", "pw-a").unwrap();
    alice
        .ingest(
            "/home/alice/doc",
            b"x",
            IngestOptions::to_resource("unix-sdsc"),
        )
        .unwrap();
    let bob_id = grid.mcat.users.find("bob", "caltech").unwrap().id;
    // Reader role: can read and annotate, cannot write.
    alice
        .grant("/home/alice/doc", bob_id, Role::Reader.permission())
        .unwrap();
    let bob = SrbConnection::connect(&grid, s1, "bob", "caltech", "pw-b").unwrap();
    assert!(bob.read("/home/alice/doc").is_ok());
    assert!(bob
        .annotate("/home/alice/doc", AnnotationKind::Comment, "", "hi")
        .is_ok());
    assert!(bob.write("/home/alice/doc", b"no").is_err());
    // Contributor role: can write, cannot change ACLs.
    alice
        .grant("/home/alice/doc", bob_id, Role::Contributor.permission())
        .unwrap();
    assert!(bob.write("/home/alice/doc", b"yes").is_ok());
    assert!(bob
        .grant("/home/alice/doc", bob_id, Permission::Own)
        .is_err());
    // Curator role: full control.
    alice
        .grant("/home/alice/doc", bob_id, Role::Curator.permission())
        .unwrap();
    assert!(bob
        .grant_public("/home/alice/doc", Permission::Read)
        .is_ok());
}

//! Property-based tests over core invariants, spanning crates.

use proptest::prelude::*;
use srb_grid::prelude::*;
use srb_grid::types::value::like_match;
use srb_grid::types::{sha256, Sha256};

fn component_strategy() -> impl Strategy<Value = String> {
    // Printable names without '/', '\0', or edge whitespace.
    "[a-zA-Z0-9][a-zA-Z0-9 _.-]{0,14}[a-zA-Z0-9]"
        .prop_map(|s| s)
        .prop_filter("no trailing space", |s| s.trim() == s)
}

proptest! {
    #[test]
    fn logical_path_parse_display_round_trip(
        parts in prop::collection::vec(component_strategy(), 0..6)
    ) {
        let joined = format!("/{}", parts.join("/"));
        let p = LogicalPath::parse(&joined).unwrap();
        prop_assert_eq!(p.depth(), parts.len());
        let reparsed = LogicalPath::parse(&p.to_string()).unwrap();
        prop_assert_eq!(&reparsed, &p);
        // parent/child are inverses along the whole chain.
        let mut cur = p.clone();
        for _ in 0..p.depth() {
            let name = cur.name().unwrap().to_string();
            let parent = cur.parent().unwrap();
            prop_assert_eq!(parent.child(&name).unwrap(), cur);
            cur = parent;
        }
        prop_assert!(cur.is_root());
    }

    #[test]
    fn rebase_preserves_suffix(
        base in prop::collection::vec(component_strategy(), 1..4),
        suffix in prop::collection::vec(component_strategy(), 0..4),
        target in prop::collection::vec(component_strategy(), 0..4),
    ) {
        let from = LogicalPath::parse(&format!("/{}", base.join("/"))).unwrap();
        let mut full = from.clone();
        for s in &suffix {
            full = full.child(s).unwrap();
        }
        let to = LogicalPath::parse(&format!("/{}", target.join("/"))).unwrap();
        let rebased = full.rebase(&from, &to).unwrap();
        prop_assert!(rebased.starts_with(&to));
        prop_assert_eq!(rebased.depth(), to.depth() + suffix.len());
    }

    #[test]
    fn like_match_agrees_with_naive_model(
        text in "[a-c]{0,8}",
        pattern in "[a-c%_]{0,6}",
    ) {
        // Naive exponential matcher as the model.
        fn model(p: &[u8], t: &[u8]) -> bool {
            match (p.first(), t.first()) {
                (None, None) => true,
                (None, Some(_)) => false,
                (Some(b'%'), _) => {
                    model(&p[1..], t) || (!t.is_empty() && model(p, &t[1..]))
                }
                (Some(b'_'), Some(_)) => model(&p[1..], &t[1..]),
                (Some(a), Some(b)) if a == b => model(&p[1..], &t[1..]),
                _ => false,
            }
        }
        prop_assert_eq!(
            like_match(&pattern, &text),
            model(pattern.as_bytes(), text.as_bytes()),
            "pattern={} text={}", pattern, text
        );
    }

    #[test]
    fn sha256_streaming_equals_one_shot(
        data in prop::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn metavalue_index_order_is_total_and_antisymmetric(
        a in "[a-z0-9.]{1,6}",
        b in "[a-z0-9.]{1,6}",
        c in "[a-z0-9.]{1,6}",
    ) {
        use std::cmp::Ordering;
        let (va, vb, vc) = (MetaValue::parse(&a), MetaValue::parse(&b), MetaValue::parse(&c));
        // Antisymmetry.
        prop_assert_eq!(va.index_cmp(&vb), vb.index_cmp(&va).reverse());
        // Transitivity (spot form): a<=b && b<=c => a<=c.
        if va.index_cmp(&vb) != Ordering::Greater && vb.index_cmp(&vc) != Ordering::Greater {
            prop_assert_ne!(va.index_cmp(&vc), Ordering::Greater);
        }
    }

    #[test]
    fn compare_op_eq_ne_duality(
        a in "[a-z0-9]{1,5}",
        b in "[a-z0-9]{1,5}",
    ) {
        let (va, vb) = (MetaValue::parse(&a), MetaValue::parse(&b));
        prop_assert_eq!(CompareOp::Eq.eval(&va, &vb), !CompareOp::Ne.eval(&va, &vb));
        prop_assert!(CompareOp::Ge.eval(&va, &va));
        prop_assert!(CompareOp::Le.eval(&va, &va));
        prop_assert!(!CompareOp::Gt.eval(&va, &va));
    }
}

// Build a random catalog, then check the indexed query path returns
// exactly the same hits as the full-scan baseline (ablation soundness).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn indexed_query_equals_scan_on_random_catalogs(
        values in prop::collection::vec(0i64..20, 10..60),
        threshold in 0i64..20,
    ) {
        let mut gb = GridBuilder::new();
        let site = gb.site("s");
        let srv = gb.server("srv", site);
        gb.fs_resource("fs", srv);
        let grid = gb.build();
        grid.register_user("u", "d", "pw").unwrap();
        let conn = SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap();
        for (i, v) in values.iter().enumerate() {
            conn.ingest(
                &format!("/home/u/f{i}"),
                b"x",
                IngestOptions::to_resource("fs")
                    .with_metadata(Triplet::new("v", *v, "")),
            ).unwrap();
        }
        for op in [CompareOp::Eq, CompareOp::Gt, CompareOp::Le, CompareOp::Ne] {
            let q = Query::everywhere().and("v", op, threshold).show("v");
            let (indexed, _) = conn.query(&q).unwrap();
            let (scanned, _) = conn.query_scan(&q).unwrap();
            prop_assert_eq!(&indexed, &scanned, "op {:?}", op);
            let expected = values.iter().filter(|v| {
                op.eval(&MetaValue::Int(**v), &MetaValue::Int(threshold))
            }).count();
            prop_assert_eq!(indexed.len(), expected, "op {:?}", op);
        }
    }

    /// Replica invariant: after any interleaving of writes and replicate
    /// operations, all up-to-date replicas carry identical checksums.
    #[test]
    fn replicas_stay_consistent(
        writes in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..8),
    ) {
        let mut gb = GridBuilder::new();
        let site = gb.site("s");
        let srv = gb.server("srv", site);
        gb.fs_resource("fs1", srv).fs_resource("fs2", srv).fs_resource("fs3", srv);
        let grid = gb.build();
        grid.register_user("u", "d", "pw").unwrap();
        let conn = SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap();
        conn.ingest("/home/u/f", b"seed", IngestOptions::to_resource("fs1")).unwrap();
        conn.replicate("/home/u/f", "fs2").unwrap();
        for (i, w) in writes.iter().enumerate() {
            conn.write("/home/u/f", w).unwrap();
            if i == writes.len() / 2 {
                conn.replicate("/home/u/f", "fs3").unwrap();
            }
        }
        let ds = grid.mcat.resolve_dataset(&LogicalPath::parse("/home/u/f").unwrap()).unwrap();
        let ds = grid.mcat.datasets.get(ds).unwrap();
        let checksums: Vec<&str> = ds.replicas.iter()
            .filter_map(|r| r.checksum.as_deref())
            .collect();
        prop_assert!(!checksums.is_empty());
        prop_assert!(checksums.windows(2).all(|w| w[0] == w[1]),
            "replica checksums diverged: {:?}", checksums);
        // And the data read back equals the last write.
        let (data, _) = conn.read("/home/u/f").unwrap();
        prop_assert_eq!(&data[..], &writes.last().unwrap()[..]);
    }

    /// Cache driver invariant: usage never exceeds capacity, whatever the
    /// insertion sequence.
    #[test]
    fn cache_usage_bounded_by_capacity(
        sizes in prop::collection::vec(1usize..40, 1..40),
    ) {
        use srb_grid::storage::{CacheDriver, StorageDriver};
        use srb_grid::types::SimClock;
        let cache = CacheDriver::new(SimClock::new(), 100);
        for (i, s) in sizes.iter().enumerate() {
            let _ = cache.create(&format!("o{i}"), &vec![0u8; *s]);
            prop_assert!(cache.used_bytes() <= 100,
                "cache over capacity: {}", cache.used_bytes());
        }
    }
}

// Grid state save/restore: a random sequence of ingests, writes and
// metadata ops must survive a save/restore cycle byte-for-byte.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn grid_state_round_trip_under_random_ops(
        files in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..48), 0i64..100),
            1..12,
        ),
    ) {
        fn build() -> Grid {
            let mut gb = GridBuilder::new();
            let site = gb.site("s");
            let srv = gb.server("srv", site);
            gb.fs_resource("fs", srv).archive_resource("tape", srv);
            gb.build()
        }
        let grid = build();
        grid.register_user("u", "d", "pw").unwrap();
        let srv = grid.servers()[0].id;
        let conn = SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap();
        for (i, (data, score)) in files.iter().enumerate() {
            conn.ingest(
                &format!("/home/u/f{i}"),
                data,
                IngestOptions::to_resource(if i % 2 == 0 { "fs" } else { "tape" })
                    .with_metadata(Triplet::new("score", *score, "")),
            ).unwrap();
        }
        let saved = grid.save_state().unwrap();
        let mut grid2 = build();
        grid2.restore_state(&saved).unwrap();
        let srv2 = grid2.servers()[0].id;
        let conn2 = SrbConnection::connect(&grid2, srv2, "u", "d", "pw").unwrap();
        for (i, (data, score)) in files.iter().enumerate() {
            let (got, _) = conn2.read(&format!("/home/u/f{i}")).unwrap();
            prop_assert_eq!(&got[..], &data[..]);
            let rows = conn2.metadata(&format!("/home/u/f{i}")).unwrap();
            prop_assert_eq!(rows[0].triplet.value.clone(), MetaValue::Int(*score));
        }
        // Queries over the restored index agree with a scan.
        let q = Query::everywhere().and("score", CompareOp::Ge, 50i64);
        let (a, _) = conn2.query(&q).unwrap();
        let (b, _) = conn2.query_scan(&q).unwrap();
        prop_assert_eq!(a, b);
    }
}

#![warn(missing_docs)]
//! Simulated wide-area network for the data grid.
//!
//! The SRB paper's deployments span SDSC, CalTech and other sites over a
//! real WAN; we model that WAN so latency-sensitive behaviour (container
//! aggregation, federated hops, replica selection) is measurable and
//! deterministic. See DESIGN.md §2 for the substitution argument.
//!
//! The model is intentionally analytic rather than packet-level: a transfer
//! of `n` bytes across a link costs `latency + n / bandwidth` (plus a
//! per-message overhead), and multi-hop routes are found with Dijkstra over
//! the link graph. Costs are charged to the shared [`srb_types::SimClock`] or returned
//! in [`Receipt`]s that concurrent workloads combine.

pub mod fault;
pub mod health;
pub mod load;
pub mod receipt;
pub mod topology;

pub use fault::{FaultMode, FaultPlan};
pub use health::{Admission, BreakerConfig, BreakerState, HealthRegistry};
pub use load::LoadTracker;
pub use receipt::Receipt;
pub use topology::{LinkSpec, Network, NetworkBuilder, Route};

//! Failure injection.
//!
//! The paper's fault-tolerance story — "the system automatically redirecting
//! access to a replica on a separate storage system when the first storage
//! system is unavailable" — needs unavailable storage systems to test
//! against. `FaultPlan` is a shared switchboard consulted before every
//! storage access, but real grid storage rarely fails *cleanly*: disks and
//! tape silos time out intermittently, respond slowly while degraded, or
//! drop exactly the next few requests. [`FaultMode`] models those shapes
//! deterministically — every flaky schedule is seeded, so a failing run
//! replays bit-for-bit.
//!
//! Mode semantics per access (one access = one [`FaultPlan::inject`] call):
//!
//! | mode                 | outcome                                        |
//! |----------------------|------------------------------------------------|
//! | `Down`               | hard `ResourceUnavailable` until restored      |
//! | `FailNext(n)`        | `Timeout` for the next `n` accesses, then heals|
//! | `FailWithProb(p, s)` | seeded coin per access: `Timeout` w.p. `p`     |
//! | `AddedLatency(ns)`   | succeeds, charges `ns` extra simulated time    |
//! | `SlowUntilHealed(ns)`| like `AddedLatency` but reads as "degraded"    |
//!
//! Site failures stay binary (a partitioned site is simply gone) and
//! surface as [`SrbError::SiteUnavailable`], distinct from a single broken
//! resource.

use srb_obs::{MetricsRegistry, ResourceLabels};
use srb_types::sync::{LockRank, RwLock};
use srb_types::{ResourceId, SiteId, SrbError, SrbResult};
use std::collections::{HashMap, HashSet};

/// How a resource misbehaves. See the module docs for per-access semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultMode {
    /// Hard down: every access fails with `ResourceUnavailable` until the
    /// resource is restored.
    Down,
    /// The next `n` accesses fail with `Timeout`; the mode then clears
    /// itself (a burst fault).
    FailNext(u32),
    /// Each access independently fails with `Timeout` with probability
    /// `p`, drawn from a splitmix64 stream over (`seed`, access counter) —
    /// deterministic and replayable per resource.
    FailWithProb(f64, u64),
    /// Accesses succeed but cost `ns` extra simulated nanoseconds each.
    AddedLatency(u64),
    /// Degraded mode: accesses succeed with `ns` extra simulated
    /// nanoseconds until the resource is healed. Health-aware policies may
    /// treat a degraded resource differently from a merely slow link.
    SlowUntilHealed(u64),
}

/// Per-resource injection state: the mode plus a monotone access counter
/// feeding the seeded coin of [`FaultMode::FailWithProb`].
#[derive(Debug, Clone)]
struct FaultState {
    mode: FaultMode,
    accesses: u64,
}

/// Shared record of which resources and sites are currently misbehaving.
#[derive(Debug)]
pub struct FaultPlan {
    inner: RwLock<Inner>,
    obs: Option<FaultObs>,
}

/// Metric handles for injected faults; attached by the grid when
/// observability is on.
#[derive(Debug, Clone)]
struct FaultObs {
    metrics: MetricsRegistry,
    labels: ResourceLabels,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            inner: RwLock::new(LockRank::Topology, "net.fault.inner", Inner::default()),
            obs: None,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    modes: HashMap<ResourceId, FaultState>,
    down_sites: HashSet<SiteId>,
}

/// splitmix64 over (seed, n): the deterministic coin behind
/// `FailWithProb`. Public within the crate so tests can predict draws.
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e3779b97f4a7c15)
        .wrapping_add(n.wrapping_mul(0xbf58476d1ce4e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Everything healthy.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Attach metric instrumentation (builder-style, called once by the
    /// grid at construction when observability is enabled). Every injected
    /// *failure* counts against `faults.injected{resource}`; injected
    /// latency is visible in receipts instead.
    pub fn with_metrics(mut self, metrics: MetricsRegistry, labels: ResourceLabels) -> Self {
        self.obs = Some(FaultObs { metrics, labels });
        self
    }

    /// Count one injected failure against `r` (site faults count against
    /// every resource they block, as they surface per-access too).
    fn count_injected(&self, r: ResourceId) {
        if let Some(obs) = &self.obs {
            obs.metrics
                .counter("faults.injected", &obs.labels.get(r))
                .inc();
        }
    }

    /// Install a fault mode on a resource, replacing any existing one
    /// (and resetting its access counter).
    pub fn set_mode(&self, r: ResourceId, mode: FaultMode) {
        self.inner
            .write()
            .modes
            .insert(r, FaultState { mode, accesses: 0 });
    }

    /// Remove any fault mode from a resource.
    pub fn clear_mode(&self, r: ResourceId) {
        self.inner.write().modes.remove(&r);
    }

    /// The currently installed mode, if any.
    pub fn mode(&self, r: ResourceId) -> Option<FaultMode> {
        self.inner.read().modes.get(&r).map(|s| s.mode)
    }

    /// Mark one storage resource hard-down.
    pub fn fail_resource(&self, r: ResourceId) {
        self.set_mode(r, FaultMode::Down);
    }

    /// Bring a storage resource back (clears any mode, not just `Down`).
    pub fn restore_resource(&self, r: ResourceId) {
        self.clear_mode(r);
    }

    /// Mark an entire site down (all its resources become unreachable).
    pub fn fail_site(&self, s: SiteId) {
        self.inner.write().down_sites.insert(s);
    }

    /// Bring a site back.
    pub fn restore_site(&self, s: SiteId) {
        self.inner.write().down_sites.remove(&s);
    }

    /// Is this resource (at this site) reachable *right now*? Flaky and
    /// slow modes count as up — only `Down` and site failures do not.
    pub fn is_up(&self, r: ResourceId, site: SiteId) -> bool {
        let g = self.inner.read();
        !g.down_sites.contains(&site)
            && !matches!(
                g.modes.get(&r),
                Some(FaultState {
                    mode: FaultMode::Down,
                    ..
                })
            )
    }

    /// Consult the switchboard for one access to `r` at `site`.
    ///
    /// Returns the injected extra latency (ns) to charge the access, or
    /// the injected failure. Each call is one draw: `FailNext` burns one
    /// of its budget, `FailWithProb` advances the seeded stream — so call
    /// exactly once per storage access.
    pub fn inject(&self, r: ResourceId, site: SiteId) -> SrbResult<u64> {
        let result = self.inject_inner(r, site);
        if result.is_err() {
            self.count_injected(r);
        }
        result
    }

    fn inject_inner(&self, r: ResourceId, site: SiteId) -> SrbResult<u64> {
        let mut g = self.inner.write();
        if g.down_sites.contains(&site) {
            return Err(SrbError::SiteUnavailable(format!(
                "site {site} is down (resource {r} unreachable)"
            )));
        }
        let Some(state) = g.modes.get_mut(&r) else {
            return Ok(0);
        };
        state.accesses += 1;
        match state.mode {
            FaultMode::Down => Err(SrbError::ResourceUnavailable(format!(
                "resource {r} at site {site} is down"
            ))),
            FaultMode::FailNext(n) => {
                if n <= 1 {
                    g.modes.remove(&r);
                } else {
                    state.mode = FaultMode::FailNext(n - 1);
                }
                Err(SrbError::Timeout(format!(
                    "injected burst failure on resource {r} ({n} left)"
                )))
            }
            FaultMode::FailWithProb(p, seed) => {
                let draw = mix(seed, state.accesses);
                let threshold = (p.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
                if draw < threshold {
                    Err(SrbError::Timeout(format!(
                        "injected flaky failure on resource {r} (access #{})",
                        state.accesses
                    )))
                } else {
                    Ok(0)
                }
            }
            FaultMode::AddedLatency(ns) | FaultMode::SlowUntilHealed(ns) => Ok(ns),
        }
    }

    /// Error unless the resource is reachable. One [`FaultPlan::inject`]
    /// draw, with the injected latency discarded — for call sites that
    /// have no receipt to charge.
    pub fn check(&self, r: ResourceId, site: SiteId) -> SrbResult<()> {
        self.inject(r, site).map(|_| ())
    }

    /// Restore everything.
    pub fn heal_all(&self) {
        let mut g = self.inner.write();
        g.modes.clear();
        g.down_sites.clear();
    }

    /// Number of currently hard-failed resources (not counting flaky or
    /// slow modes, nor site failures).
    pub fn failed_resource_count(&self) -> usize {
        self.inner
            .read()
            .modes
            .values()
            .filter(|s| matches!(s.mode, FaultMode::Down))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_failures_feed_metrics() {
        let metrics = MetricsRegistry::new();
        let labels =
            ResourceLabels::new([(ResourceId(1), "fs1".to_string())].into_iter().collect());
        let f = FaultPlan::new().with_metrics(metrics.clone(), labels);
        f.set_mode(ResourceId(1), FaultMode::FailNext(2));
        assert!(f.inject(ResourceId(1), SiteId(0)).is_err());
        assert!(f.inject(ResourceId(1), SiteId(0)).is_err());
        assert!(f.inject(ResourceId(1), SiteId(0)).is_ok(), "burst healed");
        assert_eq!(metrics.counter("faults.injected", "fs1").get(), 2);
        // Added latency is not a failure: it must not count.
        f.set_mode(ResourceId(1), FaultMode::AddedLatency(5));
        assert_eq!(f.inject(ResourceId(1), SiteId(0)).unwrap(), 5);
        assert_eq!(metrics.counter("faults.injected", "fs1").get(), 2);
    }

    #[test]
    fn resources_start_up() {
        let f = FaultPlan::new();
        assert!(f.is_up(ResourceId(1), SiteId(0)));
        assert!(f.check(ResourceId(1), SiteId(0)).is_ok());
        assert_eq!(f.inject(ResourceId(1), SiteId(0)).unwrap(), 0);
    }

    #[test]
    fn fail_and_restore_resource() {
        let f = FaultPlan::new();
        f.fail_resource(ResourceId(1));
        assert!(!f.is_up(ResourceId(1), SiteId(0)));
        assert!(f.is_up(ResourceId(2), SiteId(0)));
        let err = f.check(ResourceId(1), SiteId(0)).unwrap_err();
        assert!(err.is_retryable());
        assert!(!err.is_transient()); // hard down: fail over, don't retry
        assert!(matches!(err, SrbError::ResourceUnavailable(_)));
        f.restore_resource(ResourceId(1));
        assert!(f.is_up(ResourceId(1), SiteId(0)));
    }

    #[test]
    fn site_failure_takes_down_all_its_resources() {
        let f = FaultPlan::new();
        f.fail_site(SiteId(3));
        assert!(!f.is_up(ResourceId(1), SiteId(3)));
        assert!(!f.is_up(ResourceId(2), SiteId(3)));
        assert!(f.is_up(ResourceId(1), SiteId(0)));
        // Site-down errors say site, not resource.
        let err = f.check(ResourceId(1), SiteId(3)).unwrap_err();
        assert!(matches!(err, SrbError::SiteUnavailable(_)));
        f.restore_site(SiteId(3));
        assert!(f.is_up(ResourceId(1), SiteId(3)));
    }

    #[test]
    fn fail_next_burns_exactly_n_accesses() {
        let f = FaultPlan::new();
        let r = ResourceId(7);
        f.set_mode(r, FaultMode::FailNext(3));
        for _ in 0..3 {
            let err = f.inject(r, SiteId(0)).unwrap_err();
            assert!(matches!(err, SrbError::Timeout(_)));
            assert!(err.is_transient());
        }
        // Mode cleared itself; subsequent accesses succeed.
        assert_eq!(f.inject(r, SiteId(0)).unwrap(), 0);
        assert!(f.mode(r).is_none());
    }

    #[test]
    fn fail_with_prob_is_deterministic_and_replayable() {
        let schedule = |seed: u64| -> Vec<bool> {
            let f = FaultPlan::new();
            let r = ResourceId(9);
            f.set_mode(r, FaultMode::FailWithProb(0.5, seed));
            (0..64).map(|_| f.inject(r, SiteId(0)).is_err()).collect()
        };
        let a = schedule(42);
        let b = schedule(42);
        assert_eq!(a, b, "same seed must replay the same schedule");
        let c = schedule(43);
        assert_ne!(a, c, "different seeds should differ");
        let fails = a.iter().filter(|x| **x).count();
        assert!(
            (16..=48).contains(&fails),
            "p=0.5 over 64 draws should fail roughly half, got {fails}"
        );
    }

    #[test]
    fn fail_with_prob_extremes() {
        let f = FaultPlan::new();
        f.set_mode(ResourceId(1), FaultMode::FailWithProb(0.0, 1));
        f.set_mode(ResourceId(2), FaultMode::FailWithProb(1.0, 1));
        for _ in 0..32 {
            assert!(f.inject(ResourceId(1), SiteId(0)).is_ok());
            assert!(f.inject(ResourceId(2), SiteId(0)).is_err());
        }
        // Flaky resources still count as "up" for the binary view.
        assert!(f.is_up(ResourceId(2), SiteId(0)));
        assert_eq!(f.failed_resource_count(), 0);
    }

    #[test]
    fn latency_modes_charge_time_but_succeed() {
        let f = FaultPlan::new();
        f.set_mode(ResourceId(1), FaultMode::AddedLatency(5_000));
        f.set_mode(ResourceId(2), FaultMode::SlowUntilHealed(9_000));
        assert_eq!(f.inject(ResourceId(1), SiteId(0)).unwrap(), 5_000);
        assert_eq!(f.inject(ResourceId(2), SiteId(0)).unwrap(), 9_000);
        assert!(f.is_up(ResourceId(1), SiteId(0)));
        f.clear_mode(ResourceId(2));
        assert_eq!(f.inject(ResourceId(2), SiteId(0)).unwrap(), 0);
    }

    #[test]
    fn heal_all_clears_everything() {
        let f = FaultPlan::new();
        f.fail_resource(ResourceId(1));
        f.set_mode(ResourceId(2), FaultMode::FailWithProb(0.9, 7));
        f.fail_site(SiteId(1));
        assert_eq!(f.failed_resource_count(), 1);
        f.heal_all();
        assert!(f.is_up(ResourceId(1), SiteId(1)));
        assert!(f.inject(ResourceId(2), SiteId(0)).is_ok());
        assert_eq!(f.failed_resource_count(), 0);
    }
}

//! Failure injection.
//!
//! The paper's fault-tolerance story — "the system automatically redirecting
//! access to a replica on a separate storage system when the first storage
//! system is unavailable" — needs unavailable storage systems to test
//! against. `FaultPlan` is a shared switchboard: experiments flip resources
//! and whole sites down and the storage/federation layers consult it before
//! every access.

use srb_types::sync::{LockRank, RwLock};
use srb_types::{ResourceId, SiteId, SrbError, SrbResult};
use std::collections::HashSet;

/// Shared record of which resources and sites are currently down.
#[derive(Debug)]
pub struct FaultPlan {
    inner: RwLock<Inner>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            inner: RwLock::new(LockRank::Topology, "net.fault.inner", Inner::default()),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    down_resources: HashSet<ResourceId>,
    down_sites: HashSet<SiteId>,
}

impl FaultPlan {
    /// Everything healthy.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Mark one storage resource down.
    pub fn fail_resource(&self, r: ResourceId) {
        self.inner.write().down_resources.insert(r);
    }

    /// Bring a storage resource back.
    pub fn restore_resource(&self, r: ResourceId) {
        self.inner.write().down_resources.remove(&r);
    }

    /// Mark an entire site down (all its resources become unreachable).
    pub fn fail_site(&self, s: SiteId) {
        self.inner.write().down_sites.insert(s);
    }

    /// Bring a site back.
    pub fn restore_site(&self, s: SiteId) {
        self.inner.write().down_sites.remove(&s);
    }

    /// Is this resource (at this site) reachable?
    pub fn is_up(&self, r: ResourceId, site: SiteId) -> bool {
        let g = self.inner.read();
        !g.down_resources.contains(&r) && !g.down_sites.contains(&site)
    }

    /// Error unless the resource is reachable.
    pub fn check(&self, r: ResourceId, site: SiteId) -> SrbResult<()> {
        if self.is_up(r, site) {
            Ok(())
        } else {
            Err(SrbError::ResourceUnavailable(format!(
                "resource {r} at site {site} is down"
            )))
        }
    }

    /// Restore everything.
    pub fn heal_all(&self) {
        let mut g = self.inner.write();
        g.down_resources.clear();
        g.down_sites.clear();
    }

    /// Number of currently failed resources (not counting site failures).
    pub fn failed_resource_count(&self) -> usize {
        self.inner.read().down_resources.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resources_start_up() {
        let f = FaultPlan::new();
        assert!(f.is_up(ResourceId(1), SiteId(0)));
        assert!(f.check(ResourceId(1), SiteId(0)).is_ok());
    }

    #[test]
    fn fail_and_restore_resource() {
        let f = FaultPlan::new();
        f.fail_resource(ResourceId(1));
        assert!(!f.is_up(ResourceId(1), SiteId(0)));
        assert!(f.is_up(ResourceId(2), SiteId(0)));
        let err = f.check(ResourceId(1), SiteId(0)).unwrap_err();
        assert!(err.is_retryable());
        f.restore_resource(ResourceId(1));
        assert!(f.is_up(ResourceId(1), SiteId(0)));
    }

    #[test]
    fn site_failure_takes_down_all_its_resources() {
        let f = FaultPlan::new();
        f.fail_site(SiteId(3));
        assert!(!f.is_up(ResourceId(1), SiteId(3)));
        assert!(!f.is_up(ResourceId(2), SiteId(3)));
        assert!(f.is_up(ResourceId(1), SiteId(0)));
        f.restore_site(SiteId(3));
        assert!(f.is_up(ResourceId(1), SiteId(3)));
    }

    #[test]
    fn heal_all_clears_everything() {
        let f = FaultPlan::new();
        f.fail_resource(ResourceId(1));
        f.fail_site(SiteId(1));
        assert_eq!(f.failed_resource_count(), 1);
        f.heal_all();
        assert!(f.is_up(ResourceId(1), SiteId(1)));
        assert_eq!(f.failed_resource_count(), 0);
    }
}

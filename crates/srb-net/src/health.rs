//! Per-resource circuit breakers on the simulated clock.
//!
//! Failing over to a replica (paper §3) protects a *single* request, but a
//! flaky or dead resource still gets hammered by every subsequent request —
//! each one pays the failed attempt before failing over. The breaker adds
//! the missing memory: after enough failures inside a sliding window the
//! resource is declared `Open` and callers fast-fail without touching it;
//! after a cool-down on the *simulated* clock a single probe is let through
//! (`HalfOpen`), and a run of probe successes closes the breaker again.
//!
//! ```text
//!            failures ≥ threshold in window
//!   Closed ─────────────────────────────────▶ Open
//!     ▲                                        │ cool-down elapsed
//!     │ probe successes ≥ required             ▼ (simulated time)
//!     └──────────────────────────────────── HalfOpen
//!                       probe failure ──▶ back to Open
//! ```
//!
//! Everything is driven by [`srb_types::SimClock`]: no wall-clock reads, no
//! sleeps, so breaker behaviour is deterministic and replayable (and the
//! xtask wall-clock lint stays happy). Time only moves when the simulation
//! advances the clock, which means a breaker can only half-open after the
//! caller has charged enough simulated work.

use srb_obs::{MetricsRegistry, ResourceLabels};
use srb_types::sync::{LockRank, RwLock};
use srb_types::{ResourceId, SimClock, Timestamp};
use std::collections::HashMap;

/// The three classic breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; outcomes are being recorded in the window.
    Closed,
    /// Tripped: callers should fast-fail instead of touching the resource.
    Open,
    /// Cool-down elapsed: a probe is allowed through to test the waters.
    HalfOpen,
}

/// What the breaker tells a caller about one prospective access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed (or disabled): proceed normally.
    Allow,
    /// Breaker half-open: proceed, but this access is a probe — its outcome
    /// decides whether the breaker closes or reopens.
    Probe,
    /// Breaker open: do not touch the resource; fail over instead.
    FastFail,
}

/// Tuning knobs for every breaker in a registry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding window length, in recorded outcomes.
    pub window: usize,
    /// Failures within the window that trip the breaker. With
    /// `window = 16` and `failure_threshold = 8` a resource must be failing
    /// at ≥ 50% before tripping — enough headroom that a p = 0.3 flaky
    /// resource keeps serving, while a hard-down one trips in 8 accesses.
    pub failure_threshold: u32,
    /// Simulated nanoseconds the breaker stays `Open` before allowing a
    /// half-open probe.
    pub cooldown_ns: u64,
    /// Consecutive probe successes required to close from `HalfOpen`.
    pub halfopen_successes: u32,
    /// Master switch; when false, `admit` always allows and `record` is a
    /// no-op (the ablation arm of E3).
    pub enabled: bool,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            failure_threshold: 8,
            cooldown_ns: 500_000_000, // 0.5 simulated seconds
            halfopen_successes: 2,
            enabled: true,
        }
    }
}

impl BreakerConfig {
    /// A configuration with breakers switched off entirely.
    pub fn disabled() -> Self {
        BreakerConfig {
            enabled: false,
            ..BreakerConfig::default()
        }
    }
}

/// One resource's breaker: state plus the outcome window feeding it.
#[derive(Debug)]
struct Cell {
    state: BreakerState,
    /// Ring buffer of recent outcomes (`true` = failure), length ≤ window.
    outcomes: Vec<bool>,
    /// Next write position in `outcomes` once it reaches window length.
    cursor: usize,
    /// When the breaker last tripped (valid while `Open`).
    opened_at: Timestamp,
    /// Consecutive probe successes while `HalfOpen`.
    probe_successes: u32,
}

impl Cell {
    fn new() -> Self {
        Cell {
            state: BreakerState::Closed,
            outcomes: Vec::new(),
            cursor: 0,
            opened_at: Timestamp(0),
            probe_successes: 0,
        }
    }

    fn push_outcome(&mut self, failed: bool, window: usize) {
        if self.outcomes.len() < window {
            self.outcomes.push(failed);
        } else {
            self.outcomes[self.cursor] = failed;
            self.cursor = (self.cursor + 1) % window;
        }
    }

    fn failures(&self) -> u32 {
        self.outcomes.iter().filter(|f| **f).count() as u32
    }

    fn trip(&mut self, now: Timestamp) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.outcomes.clear();
        self.cursor = 0;
        self.probe_successes = 0;
    }

    fn close(&mut self) {
        self.state = BreakerState::Closed;
        self.outcomes.clear();
        self.cursor = 0;
        self.probe_successes = 0;
    }
}

/// Metric handles for breaker activity; attached by the grid when
/// observability is on, `None` otherwise (a pure branch on the hot path).
#[derive(Debug, Clone)]
struct HealthObs {
    metrics: MetricsRegistry,
    labels: ResourceLabels,
}

impl HealthObs {
    /// Record a state transition: bump `counter` for `r` and move the
    /// per-resource `health.breaker_state` gauge (0 closed, 1 half-open,
    /// 2 open).
    fn transition(&self, r: ResourceId, counter: &str, state: BreakerState) {
        let label = self.labels.get(r);
        self.metrics.counter(counter, &label).inc();
        self.metrics
            .gauge("health.breaker_state", &label)
            .set(match state {
                BreakerState::Closed => 0,
                BreakerState::HalfOpen => 1,
                BreakerState::Open => 2,
            });
    }
}

/// All breakers for one grid, keyed by resource.
///
/// Shared the same way as [`crate::FaultPlan`]: one registry per grid,
/// consulted at every storage access. Resources with no recorded history
/// are `Closed`.
#[derive(Debug)]
pub struct HealthRegistry {
    clock: SimClock,
    config: BreakerConfig,
    cells: RwLock<HashMap<ResourceId, Cell>>,
    obs: Option<HealthObs>,
}

impl HealthRegistry {
    /// A registry reading simulated time from `clock`.
    pub fn new(clock: SimClock, config: BreakerConfig) -> Self {
        HealthRegistry {
            clock,
            config,
            cells: RwLock::new(LockRank::Topology, "net.health.cells", HashMap::new()),
            obs: None,
        }
    }

    /// Attach metric instrumentation (builder-style, called once by the
    /// grid at construction when observability is enabled).
    pub fn with_metrics(mut self, metrics: MetricsRegistry, labels: ResourceLabels) -> Self {
        self.obs = Some(HealthObs { metrics, labels });
        self
    }

    /// The registry's configuration.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Ask permission for one access to `r`.
    ///
    /// This is where `Open → HalfOpen` happens: if the cool-down has
    /// elapsed on the simulated clock the breaker transitions and the
    /// caller is told its access is a [`Admission::Probe`].
    pub fn admit(&self, r: ResourceId) -> Admission {
        if !self.config.enabled {
            return Admission::Allow;
        }
        let now = self.clock.now();
        let mut g = self.cells.write();
        let Some(cell) = g.get_mut(&r) else {
            return Admission::Allow;
        };
        match cell.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open => {
                if now.since(cell.opened_at) >= self.config.cooldown_ns {
                    cell.state = BreakerState::HalfOpen;
                    cell.probe_successes = 0;
                    if let Some(obs) = &self.obs {
                        obs.transition(r, "health.breaker_half_opens", BreakerState::HalfOpen);
                    }
                    Admission::Probe
                } else {
                    if let Some(obs) = &self.obs {
                        obs.metrics
                            .counter("health.fast_fails", &obs.labels.get(r))
                            .inc();
                    }
                    Admission::FastFail
                }
            }
        }
    }

    /// Record the outcome of an access previously admitted.
    ///
    /// `ok = false` should only be reported for errors that indict the
    /// resource (unavailability, timeouts, I/O) — a `NotFound` or
    /// permission error says nothing about resource health.
    pub fn record(&self, r: ResourceId, ok: bool) {
        if !self.config.enabled {
            return;
        }
        let now = self.clock.now();
        let mut g = self.cells.write();
        let cell = g.entry(r).or_insert_with(Cell::new);
        match cell.state {
            BreakerState::Closed => {
                cell.push_outcome(!ok, self.config.window);
                if cell.failures() >= self.config.failure_threshold {
                    cell.trip(now);
                    if let Some(obs) = &self.obs {
                        obs.transition(r, "health.breaker_trips", BreakerState::Open);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    cell.probe_successes += 1;
                    if cell.probe_successes >= self.config.halfopen_successes {
                        cell.close();
                        if let Some(obs) = &self.obs {
                            obs.transition(r, "health.breaker_closes", BreakerState::Closed);
                        }
                    }
                } else {
                    // Probe failed: reopen and restart the cool-down.
                    cell.trip(now);
                    if let Some(obs) = &self.obs {
                        obs.transition(r, "health.breaker_trips", BreakerState::Open);
                    }
                }
            }
            // Straggler outcome from an access admitted before the trip;
            // the breaker already made its decision.
            BreakerState::Open => {}
        }
    }

    /// Current state of `r`'s breaker, cool-down aware but non-mutating:
    /// an `Open` breaker whose cool-down has elapsed reports `HalfOpen`
    /// without transitioning (only `admit` transitions).
    pub fn state(&self, r: ResourceId) -> BreakerState {
        if !self.config.enabled {
            return BreakerState::Closed;
        }
        let g = self.cells.read();
        match g.get(&r) {
            None => BreakerState::Closed,
            Some(cell) => match cell.state {
                BreakerState::Open
                    if self.clock.now().since(cell.opened_at) >= self.config.cooldown_ns =>
                {
                    BreakerState::HalfOpen
                }
                s => s,
            },
        }
    }

    /// True when `r` should be avoided right now (breaker `Open`, cool-down
    /// not yet elapsed). Replica ordering uses this to demote resources.
    pub fn is_open(&self, r: ResourceId) -> bool {
        self.state(r) == BreakerState::Open
    }

    /// Resources whose breakers are currently not `Closed`, for status
    /// displays and the repair sweep.
    pub fn unhealthy(&self) -> Vec<(ResourceId, BreakerState)> {
        if !self.config.enabled {
            return Vec::new();
        }
        let g = self.cells.read();
        let mut v: Vec<(ResourceId, BreakerState)> = g
            .keys()
            .map(|r| (*r, self.state_locked(&g, *r)))
            .filter(|(_, s)| *s != BreakerState::Closed)
            .collect();
        v.sort_by_key(|(r, _)| *r);
        v
    }

    fn state_locked(&self, g: &HashMap<ResourceId, Cell>, r: ResourceId) -> BreakerState {
        match g.get(&r) {
            None => BreakerState::Closed,
            Some(cell) => match cell.state {
                BreakerState::Open
                    if self.clock.now().since(cell.opened_at) >= self.config.cooldown_ns =>
                {
                    BreakerState::HalfOpen
                }
                s => s,
            },
        }
    }

    /// Forget all recorded history (test helper; a fresh start).
    pub fn reset(&self) {
        self.cells.write().clear();
    }

    /// Forget recorded history for one resource — e.g. a healed link —
    /// leaving every other breaker untouched.
    pub fn reset_resource(&self, r: ResourceId) {
        self.cells.write().remove(&r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(clock: &SimClock) -> HealthRegistry {
        HealthRegistry::new(
            clock.clone(),
            BreakerConfig {
                window: 8,
                failure_threshold: 4,
                cooldown_ns: 1_000,
                halfopen_successes: 2,
                enabled: true,
            },
        )
    }

    #[test]
    fn unknown_resources_are_closed_and_allowed() {
        let clock = SimClock::new();
        let h = registry(&clock);
        assert_eq!(h.state(ResourceId(1)), BreakerState::Closed);
        assert_eq!(h.admit(ResourceId(1)), Admission::Allow);
        assert!(h.unhealthy().is_empty());
    }

    #[test]
    fn trips_after_threshold_failures() {
        let clock = SimClock::new();
        let h = registry(&clock);
        let r = ResourceId(1);
        for _ in 0..3 {
            h.record(r, false);
            assert_eq!(h.state(r), BreakerState::Closed);
        }
        h.record(r, false); // 4th failure in window of 8 trips it
        assert_eq!(h.state(r), BreakerState::Open);
        assert_eq!(h.admit(r), Admission::FastFail);
        assert!(h.is_open(r));
        assert_eq!(h.unhealthy(), vec![(r, BreakerState::Open)]);
    }

    #[test]
    fn reset_resource_leaves_other_breakers_tripped() {
        let clock = SimClock::new();
        let h = registry(&clock);
        let (a, b) = (ResourceId(1), ResourceId(2));
        for _ in 0..4 {
            h.record(a, false);
            h.record(b, false);
        }
        assert_eq!(h.admit(a), Admission::FastFail);
        assert_eq!(h.admit(b), Admission::FastFail);
        h.reset_resource(a);
        assert_eq!(h.state(a), BreakerState::Closed);
        assert_eq!(h.admit(a), Admission::Allow);
        // The other breaker's history is untouched.
        assert_eq!(h.state(b), BreakerState::Open);
        assert_eq!(h.admit(b), Admission::FastFail);
    }

    #[test]
    fn interleaved_successes_keep_it_closed() {
        let clock = SimClock::new();
        let h = registry(&clock);
        let r = ResourceId(2);
        // One failure in three: at most 3 failures inside any window of 8,
        // below the threshold of 4 — a flaky-but-working resource must not
        // trip the breaker.
        for _ in 0..32 {
            h.record(r, true);
            h.record(r, true);
            h.record(r, false);
            assert_eq!(h.state(r), BreakerState::Closed);
        }
    }

    #[test]
    fn stays_open_until_simulated_cooldown() {
        let clock = SimClock::new();
        let h = registry(&clock);
        let r = ResourceId(3);
        for _ in 0..4 {
            h.record(r, false);
        }
        assert_eq!(h.admit(r), Admission::FastFail);
        clock.advance(999); // one ns short of the cool-down
        assert_eq!(h.admit(r), Admission::FastFail);
        assert_eq!(h.state(r), BreakerState::Open);
        clock.advance(1);
        assert_eq!(h.state(r), BreakerState::HalfOpen);
        assert_eq!(h.admit(r), Admission::Probe);
    }

    #[test]
    fn halfopen_closes_after_required_successes() {
        let clock = SimClock::new();
        let h = registry(&clock);
        let r = ResourceId(4);
        for _ in 0..4 {
            h.record(r, false);
        }
        clock.advance(1_000);
        assert_eq!(h.admit(r), Admission::Probe);
        h.record(r, true);
        assert_eq!(h.state(r), BreakerState::HalfOpen); // 1 of 2 probes
        assert_eq!(h.admit(r), Admission::Probe);
        h.record(r, true);
        assert_eq!(h.state(r), BreakerState::Closed);
        assert_eq!(h.admit(r), Admission::Allow);
    }

    #[test]
    fn halfopen_probe_failure_reopens_and_restarts_cooldown() {
        let clock = SimClock::new();
        let h = registry(&clock);
        let r = ResourceId(5);
        for _ in 0..4 {
            h.record(r, false);
        }
        clock.advance(1_000);
        assert_eq!(h.admit(r), Admission::Probe);
        h.record(r, false);
        assert_eq!(h.state(r), BreakerState::Open);
        // Cool-down restarted from the probe failure, not the first trip.
        clock.advance(999);
        assert_eq!(h.admit(r), Admission::FastFail);
        clock.advance(1);
        assert_eq!(h.admit(r), Admission::Probe);
    }

    #[test]
    fn disabled_registry_never_trips() {
        let clock = SimClock::new();
        let h = HealthRegistry::new(clock.clone(), BreakerConfig::disabled());
        let r = ResourceId(6);
        for _ in 0..100 {
            h.record(r, false);
        }
        assert_eq!(h.state(r), BreakerState::Closed);
        assert_eq!(h.admit(r), Admission::Allow);
        assert!(h.unhealthy().is_empty());
    }

    #[test]
    fn transitions_feed_metrics() {
        let clock = SimClock::new();
        let metrics = MetricsRegistry::new();
        let labels =
            ResourceLabels::new([(ResourceId(1), "fs1".to_string())].into_iter().collect());
        let h = registry(&clock).with_metrics(metrics.clone(), labels);
        let r = ResourceId(1);
        for _ in 0..4 {
            h.record(r, false);
        }
        assert_eq!(metrics.counter("health.breaker_trips", "fs1").get(), 1);
        assert_eq!(metrics.gauge("health.breaker_state", "fs1").get(), 2);
        assert_eq!(h.admit(r), Admission::FastFail);
        assert_eq!(metrics.counter("health.fast_fails", "fs1").get(), 1);
        clock.advance(1_000);
        assert_eq!(h.admit(r), Admission::Probe);
        assert_eq!(metrics.counter("health.breaker_half_opens", "fs1").get(), 1);
        assert_eq!(metrics.gauge("health.breaker_state", "fs1").get(), 1);
        h.record(r, true);
        h.record(r, true);
        assert_eq!(metrics.counter("health.breaker_closes", "fs1").get(), 1);
        assert_eq!(metrics.gauge("health.breaker_state", "fs1").get(), 0);
    }

    #[test]
    fn window_slides_old_outcomes_out() {
        let clock = SimClock::new();
        let h = registry(&clock);
        let r = ResourceId(7);
        // 3 failures, then enough successes to push them out of the window.
        for _ in 0..3 {
            h.record(r, false);
        }
        for _ in 0..8 {
            h.record(r, true);
        }
        // 3 fresh failures: window now holds 3 failures + 5 successes.
        for _ in 0..3 {
            h.record(r, false);
        }
        assert_eq!(h.state(r), BreakerState::Closed);
        h.record(r, false); // 4th failure within the window trips
        assert_eq!(h.state(r), BreakerState::Open);
    }
}

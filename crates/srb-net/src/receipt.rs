//! Operation receipts: the unit of virtual-cost accounting.
//!
//! Every SRB operation returns a `Receipt` describing what it cost in the
//! simulated world — virtual nanoseconds, bytes moved, network messages,
//! federation hops, and which replica ultimately served the request.
//! Receipts compose: a high-level operation sums the receipts of its parts.

use serde::{Deserialize, Serialize};
use srb_types::ReplicaId;

/// Cost and provenance of one (possibly composite) operation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Receipt {
    /// Total simulated time spent, in nanoseconds.
    pub sim_ns: u64,
    /// Payload bytes moved over the network.
    pub bytes: u64,
    /// Network messages exchanged (requests + replies).
    pub messages: u64,
    /// Federation hops traversed (0 = served by the contact server).
    pub hops: u32,
    /// Number of replicas tried before one answered.
    pub replicas_tried: u32,
    /// Same-replica retry attempts made (beyond the first attempt),
    /// including the simulated backoff they charged to `sim_ns`.
    pub retries: u32,
    /// True when the request was served from a replica known to be stale
    /// (graceful degradation under explicit opt-in).
    pub served_stale: bool,
    /// The replica that served the request, when applicable.
    pub served_by: Option<ReplicaId>,
}

impl Receipt {
    /// A zero-cost receipt.
    pub fn free() -> Self {
        Receipt::default()
    }

    /// A receipt with only simulated time.
    pub fn time(sim_ns: u64) -> Self {
        Receipt {
            sim_ns,
            ..Receipt::default()
        }
    }

    /// Fold another receipt's costs into this one (sequential composition).
    pub fn absorb(&mut self, other: &Receipt) {
        self.sim_ns += other.sim_ns;
        self.bytes += other.bytes;
        self.messages += other.messages;
        self.hops += other.hops;
        self.replicas_tried += other.replicas_tried;
        self.retries += other.retries;
        self.served_stale |= other.served_stale;
        if other.served_by.is_some() {
            self.served_by = other.served_by;
        }
    }

    /// Sequential composition, by value.
    pub fn then(mut self, other: &Receipt) -> Self {
        self.absorb(other);
        self
    }

    /// Parallel composition: costs that overlap in time take the maximum
    /// duration, while byte/message counters still add up.
    pub fn join_parallel(&mut self, other: &Receipt) {
        self.sim_ns = self.sim_ns.max(other.sim_ns);
        self.bytes += other.bytes;
        self.messages += other.messages;
        self.hops = self.hops.max(other.hops);
        self.replicas_tried += other.replicas_tried;
        self.retries += other.retries;
        self.served_stale |= other.served_stale;
        if other.served_by.is_some() {
            self.served_by = other.served_by;
        }
    }

    /// Simulated milliseconds (for reporting).
    pub fn sim_ms(&self) -> f64 {
        self.sim_ns as f64 / 1e6
    }

    /// One-line leg breakdown for status pages and the slow-op log:
    /// `"1.50ms · 4096B · 3 msgs · 1 hop · 2 tried · 1 retry · stale"`,
    /// omitting zero legs.
    pub fn breakdown(&self) -> String {
        let mut parts = vec![format!("{:.2}ms", self.sim_ms())];
        if self.bytes > 0 {
            parts.push(format!("{}B", self.bytes));
        }
        if self.messages > 0 {
            parts.push(format!("{} msgs", self.messages));
        }
        if self.hops > 0 {
            parts.push(format!("{} hops", self.hops));
        }
        if self.replicas_tried > 0 {
            parts.push(format!("{} tried", self.replicas_tried));
        }
        if self.retries > 0 {
            parts.push(format!("{} retries", self.retries));
        }
        if self.served_stale {
            parts.push("stale".to_string());
        }
        parts.join(" · ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_costs() {
        let mut a = Receipt::time(100);
        a.bytes = 10;
        a.messages = 1;
        let mut b = Receipt::time(50);
        b.bytes = 5;
        b.messages = 2;
        b.hops = 1;
        b.served_by = Some(ReplicaId(7));
        a.absorb(&b);
        assert_eq!(a.sim_ns, 150);
        assert_eq!(a.bytes, 15);
        assert_eq!(a.messages, 3);
        assert_eq!(a.hops, 1);
        assert_eq!(a.served_by, Some(ReplicaId(7)));
    }

    #[test]
    fn breakdown_omits_zero_legs() {
        assert_eq!(Receipt::time(1_500_000).breakdown(), "1.50ms");
        let mut r = Receipt::time(2_000_000);
        r.bytes = 4096;
        r.messages = 3;
        r.replicas_tried = 2;
        r.served_stale = true;
        assert_eq!(r.breakdown(), "2.00ms · 4096B · 3 msgs · 2 tried · stale");
    }

    #[test]
    fn then_chains() {
        let r = Receipt::time(10)
            .then(&Receipt::time(20))
            .then(&Receipt::time(30));
        assert_eq!(r.sim_ns, 60);
    }

    #[test]
    fn parallel_takes_max_time_but_sums_bytes() {
        let mut a = Receipt::time(100);
        a.bytes = 10;
        let mut b = Receipt::time(300);
        b.bytes = 20;
        a.join_parallel(&b);
        assert_eq!(a.sim_ns, 300);
        assert_eq!(a.bytes, 30);
    }

    #[test]
    fn served_by_keeps_latest() {
        let mut a = Receipt::free();
        a.served_by = Some(ReplicaId(1));
        a.absorb(&Receipt::free());
        assert_eq!(a.served_by, Some(ReplicaId(1)));
        let mut b = Receipt::free();
        b.served_by = Some(ReplicaId(2));
        a.absorb(&b);
        assert_eq!(a.served_by, Some(ReplicaId(2)));
    }

    #[test]
    fn sim_ms_converts() {
        assert_eq!(Receipt::time(2_500_000).sim_ms(), 2.5);
    }

    #[test]
    fn retries_add_and_stale_is_sticky() {
        let mut a = Receipt::time(10);
        a.retries = 2;
        let mut b = Receipt::time(20);
        b.retries = 1;
        b.served_stale = true;
        a.absorb(&b);
        assert_eq!(a.retries, 3);
        assert!(a.served_stale);
        // Stale-ness survives parallel joins with fresh legs too.
        let fresh = Receipt::time(5);
        a.join_parallel(&fresh);
        assert!(a.served_stale);
        assert_eq!(a.retries, 3);
    }
}

//! Site/link topology and the analytic transfer-cost model.

use serde::{Deserialize, Serialize};
use srb_types::sync::{LockRank, RwLock};
use srb_types::{SiteId, SrbError, SrbResult};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Characteristics of one directed link between two sites.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way propagation latency in microseconds.
    pub latency_us: u64,
    /// Sustained bandwidth in megabytes per second.
    pub bandwidth_mbps: f64,
}

impl LinkSpec {
    /// A typical early-2000s transcontinental WAN link (~30 ms, 10 MB/s).
    pub fn wan() -> Self {
        LinkSpec {
            latency_us: 30_000,
            bandwidth_mbps: 10.0,
        }
    }

    /// A metro/regional link (~2 ms, 40 MB/s).
    pub fn metro() -> Self {
        LinkSpec {
            latency_us: 2_000,
            bandwidth_mbps: 40.0,
        }
    }

    /// A site-local LAN (~0.1 ms, 100 MB/s).
    pub fn lan() -> Self {
        LinkSpec {
            latency_us: 100,
            bandwidth_mbps: 100.0,
        }
    }

    /// Cost in nanoseconds to move `bytes` across this link, including one
    /// propagation delay.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        let serial_ns = if self.bandwidth_mbps > 0.0 {
            (bytes as f64 / (self.bandwidth_mbps * 1_000_000.0) * 1e9) as u64
        } else {
            0
        };
        self.latency_us * 1_000 + serial_ns
    }
}

/// A route between two sites: the per-hop links along the cheapest path.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Sites visited, source first, destination last.
    pub hops: Vec<SiteId>,
    /// The links traversed (`hops.len() - 1` entries).
    pub links: Vec<LinkSpec>,
}

impl Route {
    /// A degenerate local route (source == destination).
    pub fn local(site: SiteId) -> Self {
        Route {
            hops: vec![site],
            links: Vec::new(),
        }
    }

    /// Number of network hops (0 for a local route).
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// Cost in nanoseconds to push `bytes` along the whole route.
    ///
    /// Store-and-forward model: each hop pays full latency plus
    /// serialization; this keeps multi-hop strictly worse than direct,
    /// which is the property experiment E4 measures.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.links.iter().map(|l| l.transfer_ns(bytes)).sum()
    }

    /// Round-trip cost of a small control message (request + reply).
    pub fn rpc_ns(&self) -> u64 {
        2 * self.transfer_ns(RPC_MESSAGE_BYTES)
    }
}

/// Nominal size of a control message (headers + marshalled call).
pub const RPC_MESSAGE_BYTES: u64 = 512;

/// Builder for a [`Network`].
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    names: Vec<String>,
    links: HashMap<(SiteId, SiteId), LinkSpec>,
    default_link: Option<LinkSpec>,
}

impl NetworkBuilder {
    /// Start an empty topology.
    pub fn new() -> Self {
        NetworkBuilder::default()
    }

    /// Register a site and get its id (ids are dense, starting at 0).
    pub fn site(&mut self, name: &str) -> SiteId {
        let id = SiteId(self.names.len() as u64);
        self.names.push(name.to_string());
        id
    }

    /// Add a symmetric link between two sites.
    pub fn link(&mut self, a: SiteId, b: SiteId, spec: LinkSpec) -> &mut Self {
        self.links.insert((a, b), spec);
        self.links.insert((b, a), spec);
        self
    }

    /// Use `spec` for any site pair without an explicit link, making the
    /// topology fully connected.
    pub fn default_link(&mut self, spec: LinkSpec) -> &mut Self {
        self.default_link = Some(spec);
        self
    }

    /// Finish; routes are computed lazily and cached.
    pub fn build(self) -> Network {
        Network {
            names: self.names,
            links: self.links,
            default_link: self.default_link,
            route_cache: RwLock::new(LockRank::Topology, "net.route_cache", HashMap::new()),
            messages: AtomicU64::new(0),
            bytes_moved: AtomicU64::new(0),
        }
    }
}

/// The site graph plus traffic counters.
///
/// Thread-safe: routing reads a cached table under an `RwLock`; counters are
/// atomics so concurrent client pools can charge traffic without contention.
#[derive(Debug)]
pub struct Network {
    names: Vec<String>,
    links: HashMap<(SiteId, SiteId), LinkSpec>,
    default_link: Option<LinkSpec>,
    route_cache: RwLock<HashMap<(SiteId, SiteId), Route>>,
    messages: AtomicU64,
    bytes_moved: AtomicU64,
}

impl Network {
    /// Single-site network (everything local) — handy for unit tests.
    pub fn single_site() -> (Network, SiteId) {
        let mut b = NetworkBuilder::new();
        let s = b.site("local");
        (b.build(), s)
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.names.len()
    }

    /// Site display name.
    pub fn site_name(&self, s: SiteId) -> &str {
        self.names
            .get(s.raw() as usize)
            .map(|n| n.as_str())
            .unwrap_or("?")
    }

    fn neighbors(&self, from: SiteId) -> Vec<(SiteId, LinkSpec)> {
        let n = self.names.len() as u64;
        let mut out = Vec::new();
        for to in 0..n {
            let to = SiteId(to);
            if to == from {
                continue;
            }
            if let Some(l) = self.links.get(&(from, to)) {
                out.push((to, *l));
            } else if let Some(d) = self.default_link {
                out.push((to, d));
            }
        }
        out
    }

    /// Cheapest route between two sites (Dijkstra on 1 KiB transfer cost).
    ///
    /// Errors when the sites are disconnected.
    pub fn route(&self, from: SiteId, to: SiteId) -> SrbResult<Route> {
        if from == to {
            return Ok(Route::local(from));
        }
        if let Some(r) = self.route_cache.read().get(&(from, to)) {
            return Ok(r.clone());
        }
        let n = self.names.len();
        if from.raw() as usize >= n || to.raw() as usize >= n {
            return Err(SrbError::NotFound(format!(
                "site {from} or {to} not in network"
            )));
        }
        // Dijkstra keyed on the cost of a small transfer, so low-latency
        // paths win even if a long path has more bandwidth.
        let metric = |l: &LinkSpec| l.transfer_ns(1024);
        let mut dist: Vec<u64> = vec![u64::MAX; n];
        let mut prev: Vec<Option<(usize, LinkSpec)>> = vec![None; n];
        let mut visited = vec![false; n];
        dist[from.raw() as usize] = 0;
        for _ in 0..n {
            let mut u = usize::MAX;
            let mut best = u64::MAX;
            for (i, (&d, &v)) in dist.iter().zip(visited.iter()).enumerate() {
                if !v && d < best {
                    best = d;
                    u = i;
                }
            }
            if u == usize::MAX {
                break;
            }
            visited[u] = true;
            if u == to.raw() as usize {
                break;
            }
            for (v, l) in self.neighbors(SiteId(u as u64)) {
                let vi = v.raw() as usize;
                let nd = dist[u].saturating_add(metric(&l));
                if nd < dist[vi] {
                    dist[vi] = nd;
                    prev[vi] = Some((u, l));
                }
            }
        }
        if dist[to.raw() as usize] == u64::MAX {
            return Err(SrbError::ResourceUnavailable(format!(
                "no route from {} to {}",
                self.site_name(from),
                self.site_name(to)
            )));
        }
        let mut hops = vec![to];
        let mut links = Vec::new();
        let mut cur = to.raw() as usize;
        while let Some((p, l)) = prev[cur] {
            links.push(l);
            hops.push(SiteId(p as u64));
            cur = p;
        }
        hops.reverse();
        links.reverse();
        let route = Route { hops, links };
        self.route_cache.write().insert((from, to), route.clone());
        Ok(route)
    }

    /// Charge a transfer of `bytes` from `from` to `to`; returns the cost in
    /// nanoseconds and updates the traffic counters.
    pub fn charge_transfer(&self, from: SiteId, to: SiteId, bytes: u64) -> SrbResult<u64> {
        let route = self.route(from, to)?;
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes_moved.fetch_add(bytes, Ordering::Relaxed);
        Ok(route.transfer_ns(bytes))
    }

    /// Charge one control-message round trip.
    pub fn charge_rpc(&self, from: SiteId, to: SiteId) -> SrbResult<u64> {
        let route = self.route(from, to)?;
        self.messages.fetch_add(2, Ordering::Relaxed);
        self.bytes_moved
            .fetch_add(2 * RPC_MESSAGE_BYTES, Ordering::Relaxed);
        Ok(route.rpc_ns())
    }

    /// Total messages charged so far.
    pub fn message_count(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total bytes charged so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_site() -> (Network, SiteId, SiteId, SiteId) {
        let mut b = NetworkBuilder::new();
        let sdsc = b.site("sdsc");
        let caltech = b.site("caltech");
        let ncsa = b.site("ncsa");
        b.link(sdsc, caltech, LinkSpec::metro());
        b.link(caltech, ncsa, LinkSpec::wan());
        (b.build(), sdsc, caltech, ncsa)
    }

    #[test]
    fn link_cost_model() {
        let l = LinkSpec {
            latency_us: 1_000,
            bandwidth_mbps: 10.0,
        };
        // 10 MB at 10 MB/s = 1 s + 1 ms latency.
        assert_eq!(l.transfer_ns(10_000_000), 1_000_000 + 1_000_000_000);
        // Zero bytes costs just the latency.
        assert_eq!(l.transfer_ns(0), 1_000_000);
    }

    #[test]
    fn local_route_is_free() {
        let (net, s) = Network::single_site();
        let r = net.route(s, s).unwrap();
        assert_eq!(r.hop_count(), 0);
        assert_eq!(r.transfer_ns(1 << 20), 0);
        assert_eq!(r.rpc_ns(), 0);
    }

    #[test]
    fn multi_hop_route_found_when_no_direct_link() {
        let (net, sdsc, caltech, ncsa) = three_site();
        let r = net.route(sdsc, ncsa).unwrap();
        assert_eq!(r.hops, vec![sdsc, caltech, ncsa]);
        assert_eq!(r.hop_count(), 2);
        // Cost is the sum of the two links.
        assert_eq!(
            r.transfer_ns(1024),
            LinkSpec::metro().transfer_ns(1024) + LinkSpec::wan().transfer_ns(1024)
        );
    }

    #[test]
    fn disconnected_sites_error() {
        let mut b = NetworkBuilder::new();
        let a = b.site("a");
        let _ = b.site("island");
        let net = b.build();
        assert!(net.route(a, SiteId(1)).is_err());
    }

    #[test]
    fn default_link_makes_full_mesh() {
        let mut b = NetworkBuilder::new();
        let a = b.site("a");
        let c = b.site("c");
        b.default_link(LinkSpec::wan());
        let net = b.build();
        let r = net.route(a, c).unwrap();
        assert_eq!(r.hop_count(), 1);
    }

    #[test]
    fn direct_beats_detour() {
        let mut b = NetworkBuilder::new();
        let a = b.site("a");
        let m = b.site("m");
        let z = b.site("z");
        b.link(a, z, LinkSpec::wan());
        b.link(a, m, LinkSpec::lan());
        b.link(m, z, LinkSpec::lan());
        let net = b.build();
        // Two LAN hops are cheaper than one WAN hop for small messages.
        let r = net.route(a, z).unwrap();
        assert_eq!(r.hops, vec![a, m, z]);
    }

    #[test]
    fn traffic_counters_accumulate() {
        let (net, sdsc, caltech, _) = three_site();
        net.charge_transfer(sdsc, caltech, 1000).unwrap();
        net.charge_rpc(sdsc, caltech).unwrap();
        assert_eq!(net.message_count(), 3);
        assert_eq!(net.bytes_moved(), 1000 + 2 * RPC_MESSAGE_BYTES);
    }

    #[test]
    fn route_cache_returns_same_route() {
        let (net, sdsc, _, ncsa) = three_site();
        let r1 = net.route(sdsc, ncsa).unwrap();
        let r2 = net.route(sdsc, ncsa).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn charges_are_thread_safe() {
        let (net, sdsc, caltech, _) = three_site();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        net.charge_transfer(sdsc, caltech, 10).unwrap();
                    }
                });
            }
        });
        assert_eq!(net.message_count(), 400);
        assert_eq!(net.bytes_moved(), 4000);
    }
}

//! Per-resource load accounting for replica selection.
//!
//! The paper lists "load balancing" as a reason to replicate. To make a
//! least-loaded replica-selection policy meaningful in a simulation, each
//! resource accumulates the virtual busy-time charged against it; the
//! selector reads these counters. Lock-free (a fixed-capacity table of
//! atomics behind an RwLock used only for insertion) so a 32-thread client
//! pool doesn't serialize on bookkeeping.

use srb_types::sync::{LockRank, RwLock};
use srb_types::ResourceId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tracks cumulative busy nanoseconds and in-flight operations per resource.
#[derive(Debug)]
pub struct LoadTracker {
    entries: RwLock<HashMap<ResourceId, Arc<Entry>>>,
}

impl Default for LoadTracker {
    fn default() -> Self {
        LoadTracker {
            entries: RwLock::new(LockRank::Topology, "net.load.entries", HashMap::new()),
        }
    }
}

#[derive(Debug, Default)]
struct Entry {
    busy_ns: AtomicU64,
    inflight: AtomicU64,
    completed: AtomicU64,
}

/// RAII guard marking an operation in flight on a resource.
pub struct InflightGuard {
    entry: Arc<Entry>,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.entry.inflight.fetch_sub(1, Ordering::AcqRel);
        self.entry.completed.fetch_add(1, Ordering::Relaxed);
    }
}

impl LoadTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        LoadTracker::default()
    }

    fn entry(&self, r: ResourceId) -> Arc<Entry> {
        if let Some(e) = self.entries.read().get(&r) {
            return e.clone();
        }
        self.entries
            .write()
            .entry(r)
            .or_insert_with(|| Arc::new(Entry::default()))
            .clone()
    }

    /// Charge `ns` of busy time to a resource.
    pub fn charge(&self, r: ResourceId, ns: u64) {
        self.entry(r).busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Mark an operation as started; dropping the guard marks it done.
    pub fn begin(&self, r: ResourceId) -> InflightGuard {
        let entry = self.entry(r);
        entry.inflight.fetch_add(1, Ordering::AcqRel);
        InflightGuard { entry }
    }

    /// Cumulative busy nanoseconds.
    pub fn busy_ns(&self, r: ResourceId) -> u64 {
        self.entries
            .read()
            .get(&r)
            .map(|e| e.busy_ns.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Operations currently in flight.
    pub fn inflight(&self, r: ResourceId) -> u64 {
        self.entries
            .read()
            .get(&r)
            .map(|e| e.inflight.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// Operations completed so far.
    pub fn completed(&self, r: ResourceId) -> u64 {
        self.entries
            .read()
            .get(&r)
            .map(|e| e.completed.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Composite load score used by the least-loaded selector: in-flight
    /// operations dominate; accumulated busy time breaks ties.
    pub fn score(&self, r: ResourceId) -> u128 {
        let g = self.entries.read();
        match g.get(&r) {
            Some(e) => {
                let inflight = e.inflight.load(Ordering::Acquire) as u128;
                let busy = e.busy_ns.load(Ordering::Relaxed) as u128;
                inflight * 1_000_000_000_000 + busy
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let t = LoadTracker::new();
        t.charge(ResourceId(1), 100);
        t.charge(ResourceId(1), 50);
        assert_eq!(t.busy_ns(ResourceId(1)), 150);
        assert_eq!(t.busy_ns(ResourceId(2)), 0);
    }

    #[test]
    fn inflight_guard_counts_and_releases() {
        let t = LoadTracker::new();
        let r = ResourceId(1);
        assert_eq!(t.inflight(r), 0);
        {
            let _g1 = t.begin(r);
            let _g2 = t.begin(r);
            assert_eq!(t.inflight(r), 2);
        }
        assert_eq!(t.inflight(r), 0);
        assert_eq!(t.completed(r), 2);
    }

    #[test]
    fn score_prefers_idle_resources() {
        let t = LoadTracker::new();
        let busy = ResourceId(1);
        let idle = ResourceId(2);
        t.charge(busy, 1_000_000);
        assert!(t.score(busy) > t.score(idle));
        // An in-flight op outweighs any accumulated busy time.
        let _g = t.begin(idle);
        assert!(t.score(idle) > t.score(busy));
    }

    #[test]
    fn concurrent_charges_do_not_lose_updates() {
        let t = LoadTracker::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        t.charge(ResourceId(9), 1);
                        let _g = t.begin(ResourceId(9));
                    }
                });
            }
        });
        assert_eq!(t.busy_ns(ResourceId(9)), 8000);
        assert_eq!(t.completed(ResourceId(9)), 8000);
        assert_eq!(t.inflight(ResourceId(9)), 0);
    }
}

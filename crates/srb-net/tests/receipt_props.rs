//! Property tests for the receipt algebra behind the fan-out engine.
//!
//! `absorb` models sequential composition (every cost adds); a
//! `join_parallel` fold models legs overlapping in time (durations take
//! the maximum, traffic counters still add). The fan-out engine's receipt
//! composition is exactly these folds, so the invariants here are the
//! cost model's correctness argument.

use proptest::prelude::*;
use srb_net::Receipt;
use srb_types::ReplicaId;

fn receipt_strategy() -> impl Strategy<Value = Receipt> {
    (
        (0u64..1_000_000_000_000, 0u64..1_000_000_000, 0u64..10_000),
        (0u32..16, 0u32..64, any::<bool>(), 0u64..1_000),
        (0u32..8, any::<bool>()),
    )
        .prop_map(
            |(
                (sim_ns, bytes, messages),
                (hops, replicas_tried, has_server, served),
                (retries, served_stale),
            )| Receipt {
                sim_ns,
                bytes,
                messages,
                hops,
                replicas_tried,
                retries,
                served_stale,
                served_by: has_server.then_some(ReplicaId(served)),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A join_parallel fold is "max the clock, sum the traffic": the
    /// composite takes as long as the slowest leg while moving every
    /// leg's bytes and messages.
    #[test]
    fn join_parallel_fold_is_max_time_sum_traffic(
        legs in prop::collection::vec(receipt_strategy(), 1..20),
    ) {
        let mut folded = Receipt::free();
        for leg in &legs {
            folded.join_parallel(leg);
        }
        prop_assert_eq!(folded.sim_ns, legs.iter().map(|l| l.sim_ns).max().unwrap_or(0));
        prop_assert_eq!(folded.bytes, legs.iter().map(|l| l.bytes).sum::<u64>());
        prop_assert_eq!(folded.messages, legs.iter().map(|l| l.messages).sum::<u64>());
        prop_assert_eq!(folded.hops, legs.iter().map(|l| l.hops).max().unwrap_or(0));
        prop_assert_eq!(
            folded.replicas_tried,
            legs.iter().map(|l| l.replicas_tried).sum::<u32>()
        );
        prop_assert_eq!(folded.retries, legs.iter().map(|l| l.retries).sum::<u32>());
        prop_assert_eq!(folded.served_stale, legs.iter().any(|l| l.served_stale));
        // The latest leg with a server wins provenance.
        prop_assert_eq!(
            folded.served_by,
            legs.iter().rev().find_map(|l| l.served_by)
        );
    }

    /// An absorb fold sums everything — the sequential baseline the
    /// parallel engine is measured against.
    #[test]
    fn absorb_fold_sums_all_costs(
        legs in prop::collection::vec(receipt_strategy(), 1..20),
    ) {
        let mut folded = Receipt::free();
        for leg in &legs {
            folded.absorb(leg);
        }
        prop_assert_eq!(folded.sim_ns, legs.iter().map(|l| l.sim_ns).sum::<u64>());
        prop_assert_eq!(folded.bytes, legs.iter().map(|l| l.bytes).sum::<u64>());
        prop_assert_eq!(folded.messages, legs.iter().map(|l| l.messages).sum::<u64>());
        prop_assert_eq!(folded.hops, legs.iter().map(|l| l.hops).sum::<u32>());
        prop_assert_eq!(folded.retries, legs.iter().map(|l| l.retries).sum::<u32>());
        prop_assert_eq!(folded.served_stale, legs.iter().any(|l| l.served_stale));
    }

    /// Parallel composition never takes longer than sequential and never
    /// loses traffic: for any leg set, max-of-legs <= sum-of-legs with
    /// byte counts identical. This is the "fan-out can't be slower in
    /// simulated time" half of the bench invariant.
    #[test]
    fn parallel_no_slower_than_sequential_same_bytes(
        legs in prop::collection::vec(receipt_strategy(), 1..20),
    ) {
        let mut par = Receipt::free();
        let mut seq = Receipt::free();
        for leg in &legs {
            par.join_parallel(leg);
            seq.absorb(leg);
        }
        prop_assert!(par.sim_ns <= seq.sim_ns);
        prop_assert_eq!(par.bytes, seq.bytes);
        prop_assert_eq!(par.messages, seq.messages);
    }

    /// join_parallel is commutative and associative on the cost counters,
    /// so the engine may fold legs in any order without changing the
    /// composite cost.
    #[test]
    fn join_parallel_cost_order_independent(
        a in receipt_strategy(),
        b in receipt_strategy(),
        c in receipt_strategy(),
    ) {
        let mut ab_c = a.clone();
        ab_c.join_parallel(&b);
        ab_c.join_parallel(&c);
        let mut a_bc = b.clone();
        a_bc.join_parallel(&c);
        a_bc.join_parallel(&a);
        prop_assert_eq!(ab_c.sim_ns, a_bc.sim_ns);
        prop_assert_eq!(ab_c.bytes, a_bc.bytes);
        prop_assert_eq!(ab_c.messages, a_bc.messages);
        prop_assert_eq!(ab_c.hops, a_bc.hops);
        prop_assert_eq!(ab_c.replicas_tried, a_bc.replicas_tried);
        prop_assert_eq!(ab_c.retries, a_bc.retries);
        prop_assert_eq!(ab_c.served_stale, a_bc.served_stale);
    }
}

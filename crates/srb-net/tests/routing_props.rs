//! Property tests for the WAN model: Dijkstra routes are validated against
//! a Floyd–Warshall reference on random topologies.

use proptest::prelude::*;
use srb_net::{LinkSpec, NetworkBuilder};
use srb_types::SiteId;

fn random_topology(n: usize, edges: &[(u8, u8, u8)]) -> (srb_net::Network, Vec<Vec<Option<u64>>>) {
    let mut b = NetworkBuilder::new();
    for i in 0..n {
        b.site(&format!("s{i}"));
    }
    // Reference all-pairs cost matrix on the 1 KiB metric.
    let mut dist: Vec<Vec<Option<u64>>> = vec![vec![None; n]; n];
    for (i, row) in dist.iter_mut().enumerate() {
        row[i] = Some(0);
    }
    for (a, bb, lat) in edges {
        let (a, bb) = ((*a as usize) % n, (*bb as usize) % n);
        if a == bb {
            continue;
        }
        let spec = LinkSpec {
            latency_us: 100 + *lat as u64 * 997,
            bandwidth_mbps: 10.0,
        };
        b.link(SiteId(a as u64), SiteId(bb as u64), spec);
        let w = spec.transfer_ns(1024);
        // Keep the *minimum* weight if proptest generated a duplicate edge
        // (NetworkBuilder last-write-wins, so mirror that instead).
        dist[a][bb] = Some(w);
        dist[bb][a] = Some(w);
    }
    // Floyd–Warshall.
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if let (Some(ik), Some(kj)) = (dist[i][k], dist[k][j]) {
                    let via = ik + kj;
                    if dist[i][j].map(|d| via < d).unwrap_or(true) {
                        dist[i][j] = Some(via);
                    }
                }
            }
        }
    }
    (b.build(), dist)
}

#[allow(clippy::needless_range_loop)] // i/j index two matrices at once
mod props {
    use super::*;
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn dijkstra_matches_floyd_warshall(
            n in 2usize..8,
            edges in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..20),
        ) {
            let (net, reference) = random_topology(n, &edges);
            for i in 0..n {
                for j in 0..n {
                    let route = net.route(SiteId(i as u64), SiteId(j as u64));
                    match reference[i][j] {
                        Some(expected) => {
                            let r = route.unwrap();
                            prop_assert_eq!(
                                r.transfer_ns(1024), expected,
                                "route {}->{}", i, j
                            );
                            // Route endpoints are correct and hops are
                            // consistent with the link count.
                            prop_assert_eq!(r.hops.first(), Some(&SiteId(i as u64)));
                            prop_assert_eq!(r.hops.last(), Some(&SiteId(j as u64)));
                            prop_assert_eq!(r.hops.len(), r.links.len() + 1);
                        }
                        None => prop_assert!(route.is_err(), "route {}->{} should not exist", i, j),
                    }
                }
            }
        }

        #[test]
        fn transfer_cost_is_monotone_in_size(
            latency in 1u64..100_000,
            mbps in 1u32..1000,
            a in 0u64..1_000_000,
            b in 0u64..1_000_000,
        ) {
            let l = LinkSpec { latency_us: latency, bandwidth_mbps: mbps as f64 };
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(l.transfer_ns(lo) <= l.transfer_ns(hi));
            prop_assert!(l.transfer_ns(0) == latency * 1000);
        }
    }
}

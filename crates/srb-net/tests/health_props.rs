//! Property tests for the circuit-breaker state machine and the seeded
//! fault switchboard.
//!
//! The health engine's guarantees are temporal: an `Open` breaker must not
//! admit traffic before its cool-down elapses on the simulated clock, a
//! failed half-open probe must reopen it, and fault schedules must be
//! replayable from their seed. We drive the machine with arbitrary
//! outcome/advance scripts and check the invariants on every step.

use proptest::prelude::*;
use srb_net::fault::FaultMode;
use srb_net::{Admission, BreakerConfig, BreakerState, FaultPlan, HealthRegistry};
use srb_types::{ResourceId, SimClock, SiteId};

const COOLDOWN: u64 = 1_000;

fn config() -> BreakerConfig {
    BreakerConfig {
        window: 8,
        failure_threshold: 4,
        cooldown_ns: COOLDOWN,
        halfopen_successes: 2,
        enabled: true,
    }
}

/// One step of a driving script: record an outcome or advance the clock.
#[derive(Debug, Clone, Copy)]
enum Step {
    Outcome(bool),
    Advance(u64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // ~3:1 outcomes to clock advances.
    (0u8..4, any::<bool>(), 0u64..2_500).prop_map(|(kind, ok, d)| {
        if kind < 3 {
            Step::Outcome(ok)
        } else {
            Step::Advance(d)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever outcomes are recorded, an `Open` breaker never admits an
    /// access (reports `FastFail`) until at least `cooldown_ns` of
    /// *simulated* time has passed since it tripped.
    #[test]
    fn no_exit_from_open_before_cooldown(
        script in prop::collection::vec(step_strategy(), 1..200),
    ) {
        let clock = SimClock::new();
        let h = HealthRegistry::new(clock.clone(), config());
        let r = ResourceId(1);
        // Shadow model: when did the breaker last trip?
        let mut opened_at: Option<u64> = None;
        for step in script {
            match step {
                Step::Advance(d) => { clock.advance(d); }
                Step::Outcome(ok) => {
                    let before = h.state(r);
                    let admission = h.admit(r);
                    if admission == Admission::FastFail {
                        // The invariant: fast-fails only happen inside the
                        // cool-down window of a tripped breaker.
                        let t = opened_at.expect("FastFail without a recorded trip");
                        prop_assert!(
                            clock.now().nanos() - t < COOLDOWN,
                            "admitted FastFail after cooldown elapsed"
                        );
                        prop_assert_eq!(before, BreakerState::Open);
                        continue; // a fast-failed access records no outcome
                    }
                    let was_probe = admission == Admission::Probe;
                    h.record(r, ok);
                    let after = h.state(r);
                    if after == BreakerState::Open && before != BreakerState::Open {
                        opened_at = Some(clock.now().nanos());
                    }
                    // A failed half-open probe must reopen immediately.
                    if was_probe && !ok {
                        prop_assert_eq!(after, BreakerState::Open);
                        opened_at = Some(clock.now().nanos());
                    }
                }
            }
        }
    }

    /// From `HalfOpen`, one probe failure reopens the breaker and restarts
    /// the cool-down; the required number of probe successes closes it.
    #[test]
    fn halfopen_probe_outcomes_decide(probe_fails_first in any::<bool>()) {
        let clock = SimClock::new();
        let h = HealthRegistry::new(clock.clone(), config());
        let r = ResourceId(2);
        for _ in 0..4 {
            h.record(r, false);
        }
        prop_assert_eq!(h.state(r), BreakerState::Open);
        clock.advance(COOLDOWN);
        prop_assert_eq!(h.admit(r), Admission::Probe);
        if probe_fails_first {
            h.record(r, false);
            prop_assert_eq!(h.state(r), BreakerState::Open);
            prop_assert_eq!(h.admit(r), Admission::FastFail);
            clock.advance(COOLDOWN);
        }
        // Two successful probes close it regardless of history.
        prop_assert_eq!(h.admit(r), Admission::Probe);
        h.record(r, true);
        prop_assert_eq!(h.admit(r), Admission::Probe);
        h.record(r, true);
        prop_assert_eq!(h.state(r), BreakerState::Closed);
        prop_assert_eq!(h.admit(r), Admission::Allow);
    }

    /// A seeded flaky schedule replays identically: same seed and access
    /// sequence, same pass/fail pattern — the foundation of reproducible
    /// chaos tests.
    #[test]
    fn seeded_fault_schedules_replay(
        seed in any::<u64>(),
        p_millis in 0u32..1001,
        accesses in 1usize..128,
    ) {
        let p = p_millis as f64 / 1000.0;
        let run = || -> Vec<bool> {
            let f = FaultPlan::new();
            let r = ResourceId(3);
            f.set_mode(r, FaultMode::FailWithProb(p, seed));
            (0..accesses).map(|_| f.inject(r, SiteId(0)).is_err()).collect()
        };
        prop_assert_eq!(run(), run());
    }

    /// The empirical failure rate of `FailWithProb` tracks `p` (loose
    /// bound — this is a sanity check on the splitmix64 coin, not a
    /// statistical test).
    #[test]
    fn fail_with_prob_rate_tracks_p(seed in any::<u64>(), p_millis in 0u32..1001) {
        let p = p_millis as f64 / 1000.0;
        let f = FaultPlan::new();
        let r = ResourceId(4);
        f.set_mode(r, FaultMode::FailWithProb(p, seed));
        let n = 512;
        let fails = (0..n).filter(|_| f.inject(r, SiteId(0)).is_err()).count();
        let rate = fails as f64 / n as f64;
        prop_assert!((rate - p).abs() < 0.15, "p={p} but measured {rate}");
    }
}

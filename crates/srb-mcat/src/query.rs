//! Query types for the conjunctive attribute search.
//!
//! MySRB's query page builds a conjunction of conditions, each with four
//! parts: an attribute name (drop-down of queryable names in the scope
//! collection and everything under it), a comparison operator, a value, and
//! a check-box selecting the attribute for display in the result listing.
//! "The query is taken as a conjunctive query … an AND of all the
//! conditions." Execution lives in [`crate::catalog::Mcat`].

use srb_types::{CompareOp, DatasetId, LogicalPath, MetaValue, SrbError, SrbResult};

/// One condition of a conjunctive query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCondition {
    /// Attribute name (user metadata, or a system attribute when the query
    /// enables system metadata: `name`, `data_type`, `size`, `owner`).
    pub attr: String,
    /// Comparison operator.
    pub op: CompareOp,
    /// Comparison value.
    pub value: MetaValue,
}

impl QueryCondition {
    /// Convenience constructor parsing the operator spelling.
    pub fn parse(attr: &str, op: &str, value: &str) -> SrbResult<Self> {
        if attr.trim().is_empty() {
            return Err(SrbError::Invalid("empty attribute name".into()));
        }
        Ok(QueryCondition {
            attr: attr.trim().to_string(),
            op: CompareOp::parse(op)?,
            value: MetaValue::parse(value),
        })
    }
}

/// A conjunctive attribute query, scoped to a collection subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Search this collection and every collection under it ("one can
    /// query across collections by being above the collections").
    pub scope: LogicalPath,
    /// ANDed conditions.
    pub conditions: Vec<QueryCondition>,
    /// Attribute names whose values appear in the result listing (the
    /// check-boxes; may include attributes not used in any condition).
    pub select: Vec<String>,
    /// Also match system-defined metadata (name/data_type/size/owner).
    pub include_system: bool,
    /// Also match annotation text (attribute name `annotation`).
    pub include_annotations: bool,
    /// Stop after this many hits (0 = unlimited).
    pub limit: usize,
    /// When `true` (the default), hits are the first `limit` in global
    /// path order, so every candidate must be verified before truncation.
    /// When `false` ("any `limit` matching hits will do"), the engine
    /// short-circuits candidate verification as soon as `limit` hits are
    /// confirmed — the paging pattern of the MySRB result listing.
    pub ordered: bool,
}

impl Query {
    /// A query over the whole name space.
    pub fn everywhere() -> Self {
        Query {
            scope: LogicalPath::root(),
            conditions: Vec::new(),
            select: Vec::new(),
            include_system: false,
            include_annotations: false,
            limit: 0,
            ordered: true,
        }
    }

    /// Scope the query to a collection subtree.
    pub fn under(mut self, scope: LogicalPath) -> Self {
        self.scope = scope;
        self
    }

    /// Add a condition.
    pub fn and(mut self, attr: &str, op: CompareOp, value: impl Into<MetaValue>) -> Self {
        self.conditions.push(QueryCondition {
            attr: attr.to_string(),
            op,
            value: value.into(),
        });
        self
    }

    /// Request an attribute in the result listing.
    pub fn show(mut self, attr: &str) -> Self {
        self.select.push(attr.to_string());
        self
    }

    /// Enable system-attribute matching.
    pub fn with_system(mut self) -> Self {
        self.include_system = true;
        self
    }

    /// Enable annotation matching.
    pub fn with_annotations(mut self) -> Self {
        self.include_annotations = true;
        self
    }

    /// Cap the number of hits.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = n;
        self
    }

    /// Accept *any* `limit` matching hits instead of the first `limit` in
    /// path order, enabling the limit push-down short-circuit. The hits
    /// returned are still real matches, still sorted among themselves.
    pub fn any_order(mut self) -> Self {
        self.ordered = false;
        self
    }

    /// Convenience: `limit(n)` + [`Self::any_order`] — "give me `n`
    /// matches, whichever are cheapest to confirm".
    pub fn first_hits(self, n: usize) -> Self {
        self.limit(n).any_order()
    }
}

/// One query hit.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryHit {
    /// The matching dataset.
    pub dataset: DatasetId,
    /// Its logical path at query time.
    pub path: String,
    /// `(attribute, value)` pairs for the selected attributes, in `select`
    /// order; missing attributes render as empty strings.
    pub selected: Vec<(String, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let q = Query::everywhere()
            .under(LogicalPath::parse("/Cultures").unwrap())
            .and("species", CompareOp::Like, "%condor%")
            .and("wingspan", CompareOp::Gt, 100i64)
            .show("species")
            .show("rating")
            .with_system()
            .with_annotations()
            .limit(10);
        assert_eq!(q.scope.to_string(), "/Cultures");
        assert_eq!(q.conditions.len(), 2);
        assert_eq!(q.select, vec!["species", "rating"]);
        assert!(q.include_system);
        assert!(q.include_annotations);
        assert_eq!(q.limit, 10);
    }

    #[test]
    fn condition_parse() {
        let c = QueryCondition::parse("wingspan", ">=", "250").unwrap();
        assert_eq!(c.op, CompareOp::Ge);
        assert_eq!(c.value, MetaValue::Int(250));
        assert!(QueryCondition::parse("", "=", "x").is_err());
        assert!(QueryCondition::parse("a", "~~", "x").is_err());
    }
}

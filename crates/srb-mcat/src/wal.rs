//! ARIES-style redo-only write-ahead log for the MCAT.
//!
//! Production SRB keeps the MCAT in a commercial database; its durability
//! guarantee — an acknowledged registration survives `kill -9` — comes from
//! a redo log fsynced at commit. This module reproduces that guarantee over
//! the simulated [`LogDevice`]:
//!
//! * Every catalog mutation appends one or more **logical redo records**
//!   ([`WalOp`]) *while the table's write guard is held*, so log order
//!   equals apply order per table. Records are LSN-stamped and carry the
//!   post-mutation generation of their table, making recovered generation
//!   counters exact (continuation tokens either resume or cleanly fail).
//! * After the guard is released the table calls `Wal::commit`, which
//!   appends a `Commit` marker and fsyncs. Commits **group**: records from
//!   concurrent mutations share one fsync, and a commit whose marker is
//!   already durable (a concurrent leader synced past it) skips the fsync
//!   entirely. `wal.appends` counts records, `wal.group_commits` counts
//!   actual fsyncs.
//! * **Checkpoints** are full-catalog snapshots installed when the virtual
//!   clock passes the configured interval. The covered LSN is captured
//!   *before* the snapshot is taken, so a fuzzy snapshot may contain
//!   effects of slightly later records — harmless, because redo records
//!   are idempotent row images (`Put` overwrites, `Delete` tolerates
//!   absence).
//! * **Recovery** (`replay_device`) loads the latest checkpoint, patches
//!   its row vectors with every *complete* commit group in the durable
//!   tail (an unterminated trailing group was never acknowledged and is
//!   discarded), and rebuilds the catalog in one restore — no per-record
//!   index maintenance.
//!
//! Durability is not free: appends, fsyncs, checkpoint writes and the
//! recovery read-back all return virtual costs. The WAL pools them in a
//! pending-cost accumulator that ops drain into their `Receipt`s, so the
//! price of group commit shows up in experiments (`srb_net::Receipt`).
//!
//! Determinism: everything is driven by the shared [`SimClock`] and the
//! deterministic device; two identically-seeded runs produce byte-identical
//! logs, checkpoints and recovered catalogs.

use crate::annotation::Annotation;
use crate::audit::AuditRow;
use crate::collection::Collection;
use crate::container::ContainerRecord;
use crate::dataset::Dataset;
use crate::metadata::{MetaRow, Subject};
use crate::resource::{LogicalResource, Resource};
use crate::snapshot::{CatalogSnapshot, SnapshotGenerations, SNAPSHOT_VERSION};
use crate::user::{Group, User};
use serde::{Deserialize, Serialize};
use srb_storage::LogDevice;
use srb_types::sync::{LockRank, Mutex};
use srb_types::{
    AnnotationId, CollectionId, ContainerId, DatasetId, Lsn, MetaId, SimClock, SrbError, SrbResult,
    Timestamp,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One logical redo operation. Variants are full row images (`*Put`) or
/// bare ids (`*Delete`): replay patches the checkpoint's row vectors and
/// rebuilds all derived indexes in a single restore, so records never
/// describe index maintenance. `Commit` terminates a group; only complete
/// groups are applied.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WalOp {
    /// Upsert a user row.
    UserPut {
        /// The full post-mutation row.
        row: User,
    },
    /// Upsert a group row.
    GroupPut {
        /// The full post-mutation row.
        row: Group,
    },
    /// Upsert a physical-resource row.
    ResourcePut {
        /// The full post-mutation row.
        row: Resource,
    },
    /// Upsert a logical-resource row.
    LogicalResourcePut {
        /// The full post-mutation row.
        row: LogicalResource,
    },
    /// Upsert a collection row.
    CollectionPut {
        /// The full post-mutation row.
        row: Collection,
    },
    /// Remove a collection row.
    CollectionDelete {
        /// Row to remove (absence tolerated on replay).
        id: CollectionId,
    },
    /// Upsert a dataset row (covers replicas, locks, ACLs, versions —
    /// everything the row embeds).
    DatasetPut {
        /// The full post-mutation row.
        row: Dataset,
    },
    /// Remove a dataset row.
    DatasetDelete {
        /// Row to remove (absence tolerated on replay).
        id: DatasetId,
    },
    /// Upsert a container row.
    ContainerPut {
        /// The full post-mutation row.
        row: ContainerRecord,
    },
    /// Remove a container row.
    ContainerDelete {
        /// Row to remove (absence tolerated on replay).
        id: ContainerId,
    },
    /// Upsert a metadata triplet row.
    MetaPut {
        /// The full post-mutation row.
        row: MetaRow,
    },
    /// Remove a metadata triplet row.
    MetaDelete {
        /// Row to remove (absence tolerated on replay).
        id: MetaId,
    },
    /// Replace a subject's file-based metadata association list.
    MetaFilesPut {
        /// The subject the files describe.
        subject: Subject,
        /// The full post-mutation association list.
        files: Vec<DatasetId>,
    },
    /// Drop a subject's file-based metadata associations.
    MetaFilesClear {
        /// The subject to clear.
        subject: Subject,
    },
    /// Upsert an annotation row.
    AnnotationPut {
        /// The full post-mutation row.
        row: Annotation,
    },
    /// Remove an annotation row.
    AnnotationDelete {
        /// Row to remove (absence tolerated on replay).
        id: AnnotationId,
    },
    /// Remove every annotation on a subject.
    AnnotationClear {
        /// The subject to clear.
        subject: Subject,
    },
    /// Append an audit-trail row.
    AuditPut {
        /// The full row.
        row: AuditRow,
    },
    /// Commit marker: every record since the previous marker belongs to
    /// one acknowledged mutation (or batch).
    Commit {
        /// Virtual time at commit.
        at_ns: u64,
    },
}

/// One log record: LSN, the post-mutation generation of the mutated table
/// (0 when the table has no generation counter or the op does not bump
/// it), and the logical op.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalRecord {
    /// Position in the log.
    pub lsn: u64,
    /// Post-mutation generation stamp, or 0.
    pub gen: u64,
    /// The logical redo operation.
    pub op: WalOp,
}

/// What the device stores as its checkpoint: the catalog snapshot plus
/// the virtual time it was taken, so recovery restores the clock even when
/// the checkpoint covers the entire log and the replay tail is empty.
#[derive(Debug, Serialize, Deserialize)]
struct CheckpointEnvelope {
    /// Virtual time the snapshot was taken.
    at_ns: u64,
    /// [`CatalogSnapshot`] JSON.
    snapshot: String,
}

/// WAL tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Virtual nanoseconds between checkpoints (0 disables periodic
    /// checkpoints; explicit [`Mcat::checkpoint_now`] still works).
    ///
    /// [`Mcat::checkpoint_now`]: crate::Mcat::checkpoint_now
    pub checkpoint_interval_ns: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            // 30 virtual seconds: long enough that steady-state workloads
            // pay mostly group commits, short enough to bound the log tail.
            checkpoint_interval_ns: 30_000_000_000,
        }
    }
}

/// Virtual cost of applying one replayed record to the in-memory image.
const REPLAY_NS_PER_RECORD: u64 = 2_000;

#[derive(Debug)]
struct WalState {
    /// Next LSN to assign.
    next_lsn: u64,
    /// Virtual time of the last checkpoint (claim time).
    last_ckpt_ns: u64,
}

/// Metric handles, registered when the grid has observability enabled.
#[derive(Debug)]
struct WalObs {
    appends: srb_obs::Counter,
    group_commits: srb_obs::Counter,
    checkpoints: srb_obs::Counter,
    recovery_ns: srb_obs::Counter,
}

/// The write-ahead log attached to a catalog. See the module docs.
#[derive(Debug)]
pub struct Wal {
    device: Arc<LogDevice>,
    clock: SimClock,
    config: WalConfig,
    state: Mutex<WalState>,
    /// Durability cost (ns) not yet folded into a receipt.
    pending_ns: AtomicU64,
    obs: Option<WalObs>,
}

impl Wal {
    /// A WAL over `device`, resuming LSN assignment after the device's
    /// durable tail (1 on a fresh device).
    pub(crate) fn new(
        device: Arc<LogDevice>,
        clock: SimClock,
        config: WalConfig,
        metrics: Option<&srb_obs::MetricsRegistry>,
    ) -> Wal {
        let next_lsn = device.synced_lsn().raw() + 1;
        let last_ckpt_ns = clock.now().nanos();
        Wal {
            device,
            clock,
            config,
            state: Mutex::new(
                LockRank::Wal,
                "mcat.wal",
                WalState {
                    next_lsn,
                    last_ckpt_ns,
                },
            ),
            pending_ns: AtomicU64::new(0),
            obs: metrics.map(|m| WalObs {
                appends: m.counter("wal.appends", ""),
                group_commits: m.counter("wal.group_commits", ""),
                checkpoints: m.counter("wal.checkpoints", ""),
                recovery_ns: m.counter("wal.recovery_ns", ""),
            }),
        }
    }

    /// Append one redo record. Called while the mutated table's write
    /// guard is held (legal: `Wal` ranks below `McatTable`), so the log
    /// orders records exactly as the table applied them. Buffered, not
    /// yet durable.
    pub(crate) fn append(&self, op: WalOp, gen: u64) -> Lsn {
        let mut st = self.state.lock();
        let lsn = Lsn(st.next_lsn);
        st.next_lsn += 1;
        let record = WalRecord {
            lsn: lsn.raw(),
            gen,
            op,
        };
        let json = match serde_json::to_string(&record) {
            Ok(j) => j,
            // Row types are plain data; a serialization failure is a
            // programming bug, and losing a redo record silently would
            // corrupt recovery.
            Err(e) => panic!("WAL record serialization: {e}"),
        };
        let cost = self.device.append(lsn, &json);
        drop(st);
        self.pending_ns.fetch_add(cost, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.appends.add(1);
        }
        lsn
    }

    /// Terminate the current group and make it durable. Called after the
    /// table guard is released. Returns the virtual cost charged (0 when a
    /// concurrent leader's fsync already covered our marker — the group
    /// commit win).
    pub(crate) fn commit(&self) -> u64 {
        let marker = self.append(
            WalOp::Commit {
                at_ns: self.clock.now().nanos(),
            },
            0,
        );
        if self.device.synced_lsn() >= marker {
            return 0; // piggybacked on a concurrent leader's fsync
        }
        let (_, cost) = self.device.sync();
        if cost > 0 {
            self.pending_ns.fetch_add(cost, Ordering::Relaxed);
            if let Some(obs) = &self.obs {
                obs.group_commits.add(1);
            }
        }
        cost
    }

    /// If a periodic checkpoint is due at `now`, claim it: the claim
    /// resets the interval timer (so concurrent callers don't stampede)
    /// and returns the LSN the checkpoint will cover — captured *before*
    /// the caller takes the snapshot, per the fuzzy-checkpoint rule in the
    /// module docs.
    pub(crate) fn checkpoint_claim(&self, now: Timestamp) -> Option<Lsn> {
        if self.config.checkpoint_interval_ns == 0 {
            return None;
        }
        let mut st = self.state.lock();
        if now.nanos().saturating_sub(st.last_ckpt_ns) < self.config.checkpoint_interval_ns {
            return None;
        }
        st.last_ckpt_ns = now.nanos();
        Some(Lsn(st.next_lsn - 1))
    }

    /// Unconditionally claim a checkpoint cover LSN (explicit checkpoints).
    pub(crate) fn checkpoint_cover(&self) -> Lsn {
        let mut st = self.state.lock();
        st.last_ckpt_ns = self.clock.now().nanos();
        Lsn(st.next_lsn - 1)
    }

    /// Install a checkpoint snapshot covering records through `cover`.
    pub(crate) fn install_checkpoint(&self, cover: Lsn, snapshot_json: &str) {
        let envelope = CheckpointEnvelope {
            at_ns: self.clock.now().nanos(),
            snapshot: snapshot_json.to_string(),
        };
        let json = match serde_json::to_string(&envelope) {
            Ok(j) => j,
            // Same reasoning as in `append`: silently dropping a
            // checkpoint would corrupt recovery.
            Err(e) => panic!("checkpoint envelope serialization: {e}"),
        };
        let cost = self.device.install_checkpoint(cover, &json);
        self.pending_ns.fetch_add(cost, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.checkpoints.add(1);
        }
    }

    /// Record the virtual cost of a recovery read-back + replay.
    pub(crate) fn charge_recovery(&self, ns: u64) {
        self.pending_ns.fetch_add(ns, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.recovery_ns.add(ns);
        }
    }

    /// Drain the durability cost accumulated since the last drain, for
    /// absorption into the current op's receipt. Under concurrency a cost
    /// may be attributed to a neighbouring op; totals are exact.
    pub fn take_pending_ns(&self) -> u64 {
        self.pending_ns.swap(0, Ordering::Relaxed)
    }

    /// Highest LSN guaranteed durable right now — after a mutation
    /// returns, its records are at or below this point.
    pub fn durable_lsn(&self) -> Lsn {
        self.device.synced_lsn()
    }

    /// The device this WAL writes to (chaos tests crash it directly).
    pub fn device(&self) -> &Arc<LogDevice> {
        &self.device
    }
}

/// A table's handle on the catalog's WAL: empty until durability is
/// enabled, then a shared [`Wal`]. Every table owns one; logging through
/// it is a no-op for catalogs running without a WAL, so the mutation paths
/// pay only an atomic load when durability is off.
#[derive(Debug, Default)]
pub(crate) struct WalHook(std::sync::OnceLock<Arc<Wal>>);

impl WalHook {
    /// Wire the hook to a live WAL. Idempotent per catalog lifetime —
    /// attaching twice is a programming bug.
    pub(crate) fn attach(&self, wal: Arc<Wal>) {
        if self.0.set(wal).is_err() {
            panic!("WAL attached twice to the same table");
        }
    }

    /// Append a redo record if a WAL is attached. Called under the
    /// mutated table's write guard. The op is built lazily so catalogs
    /// running without durability never pay the row clone.
    pub(crate) fn log(&self, gen: u64, op: impl FnOnce() -> WalOp) {
        if let Some(wal) = self.0.get() {
            wal.append(op(), gen);
        }
    }

    /// Terminate and fsync the current group if a WAL is attached. Called
    /// after the table guard is released.
    pub(crate) fn commit(&self) {
        if let Some(wal) = self.0.get() {
            wal.commit();
        }
    }
}

/// What recovery found and did; returned by [`Mcat::recover`].
///
/// [`Mcat::recover`]: crate::Mcat::recover
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN covered by the checkpoint recovery started from.
    pub checkpoint_lsn: Lsn,
    /// Highest durable LSN found on the device.
    pub durable_lsn: Lsn,
    /// Records read from the durable tail (markers included).
    pub records_replayed: usize,
    /// Complete commit groups applied.
    pub groups_applied: usize,
    /// Records in the unterminated trailing group, discarded because the
    /// mutation was never acknowledged.
    pub records_discarded: usize,
    /// Virtual cost of the read-back and replay.
    pub recovery_ns: u64,
}

/// The outcome of [`replay_device`]: a patched snapshot ready for
/// [`Mcat::restore`], plus bookkeeping.
///
/// [`Mcat::restore`]: crate::Mcat::restore
pub(crate) struct Replayed {
    pub snapshot: CatalogSnapshot,
    /// Highest commit-marker virtual time (restore the clock to at least
    /// this).
    pub max_at_ns: u64,
    pub report: RecoveryReport,
}

/// Mutable row-image maps built from a checkpoint, patched by replay.
struct Patch {
    users: BTreeMap<u64, User>,
    groups: BTreeMap<u64, Group>,
    resources: BTreeMap<u64, Resource>,
    logical_resources: BTreeMap<u64, LogicalResource>,
    collections: BTreeMap<u64, Collection>,
    datasets: BTreeMap<u64, Dataset>,
    containers: BTreeMap<u64, ContainerRecord>,
    metadata: BTreeMap<u64, MetaRow>,
    meta_files: Vec<(Subject, Vec<DatasetId>)>,
    annotations: BTreeMap<u64, Annotation>,
    audit: BTreeMap<u64, AuditRow>,
    /// Max generation stamp seen per table: collections, datasets,
    /// metadata — the order continuation tokens embed them.
    gens: [u64; 3],
    /// Highest raw id seen in any replayed row (drives the id floor).
    max_id: u64,
}

impl Patch {
    fn from_snapshot(snap: CatalogSnapshot) -> Patch {
        let gens = snap
            .generations
            .map(|g| [g.collections, g.datasets, g.metadata])
            .unwrap_or([0; 3]);
        Patch {
            users: snap.users.into_iter().map(|r| (r.id.raw(), r)).collect(),
            groups: snap.groups.into_iter().map(|r| (r.id.raw(), r)).collect(),
            resources: snap
                .resources
                .into_iter()
                .map(|r| (r.id.raw(), r))
                .collect(),
            logical_resources: snap
                .logical_resources
                .into_iter()
                .map(|r| (r.id.raw(), r))
                .collect(),
            collections: snap
                .collections
                .into_iter()
                .map(|r| (r.id.raw(), r))
                .collect(),
            datasets: snap.datasets.into_iter().map(|r| (r.id.raw(), r)).collect(),
            containers: snap
                .containers
                .into_iter()
                .map(|r| (r.id.raw(), r))
                .collect(),
            metadata: snap.metadata.into_iter().map(|r| (r.id.raw(), r)).collect(),
            meta_files: snap.meta_files,
            annotations: snap
                .annotations
                .into_iter()
                .map(|r| (r.id.raw(), r))
                .collect(),
            audit: snap.audit.into_iter().map(|r| (r.id.raw(), r)).collect(),
            gens,
            max_id: snap.next_id_floor,
        }
    }

    fn note_id(&mut self, raw: u64) {
        self.max_id = self.max_id.max(raw);
    }

    fn apply(&mut self, record: WalRecord) {
        let gen = record.gen;
        match record.op {
            WalOp::UserPut { row } => {
                self.note_id(row.id.raw());
                self.users.insert(row.id.raw(), row);
            }
            WalOp::GroupPut { row } => {
                self.note_id(row.id.raw());
                self.groups.insert(row.id.raw(), row);
            }
            WalOp::ResourcePut { row } => {
                self.note_id(row.id.raw());
                self.resources.insert(row.id.raw(), row);
            }
            WalOp::LogicalResourcePut { row } => {
                self.note_id(row.id.raw());
                self.logical_resources.insert(row.id.raw(), row);
            }
            WalOp::CollectionPut { row } => {
                self.note_id(row.id.raw());
                self.gens[0] = self.gens[0].max(gen);
                self.collections.insert(row.id.raw(), row);
            }
            WalOp::CollectionDelete { id } => {
                self.gens[0] = self.gens[0].max(gen);
                self.collections.remove(&id.raw());
            }
            WalOp::DatasetPut { row } => {
                self.note_id(row.id.raw());
                for r in &row.replicas {
                    self.note_id(r.id.raw());
                }
                self.gens[1] = self.gens[1].max(gen);
                self.datasets.insert(row.id.raw(), row);
            }
            WalOp::DatasetDelete { id } => {
                self.gens[1] = self.gens[1].max(gen);
                self.datasets.remove(&id.raw());
            }
            WalOp::ContainerPut { row } => {
                self.note_id(row.id.raw());
                self.containers.insert(row.id.raw(), row);
            }
            WalOp::ContainerDelete { id } => {
                self.containers.remove(&id.raw());
            }
            WalOp::MetaPut { row } => {
                self.note_id(row.id.raw());
                self.gens[2] = self.gens[2].max(gen);
                self.metadata.insert(row.id.raw(), row);
            }
            WalOp::MetaDelete { id } => {
                self.gens[2] = self.gens[2].max(gen);
                self.metadata.remove(&id.raw());
            }
            WalOp::MetaFilesPut { subject, files } => {
                self.gens[2] = self.gens[2].max(gen);
                match self.meta_files.iter_mut().find(|(s, _)| *s == subject) {
                    Some((_, fs)) => *fs = files,
                    None => self.meta_files.push((subject, files)),
                }
            }
            WalOp::MetaFilesClear { subject } => {
                self.gens[2] = self.gens[2].max(gen);
                self.meta_files.retain(|(s, _)| *s != subject);
            }
            WalOp::AnnotationPut { row } => {
                self.note_id(row.id.raw());
                self.annotations.insert(row.id.raw(), row);
            }
            WalOp::AnnotationDelete { id } => {
                self.annotations.remove(&id.raw());
            }
            WalOp::AnnotationClear { subject } => {
                self.annotations.retain(|_, a| a.subject != subject);
            }
            WalOp::AuditPut { row } => {
                self.note_id(row.id.raw());
                self.audit.insert(row.id.raw(), row);
            }
            WalOp::Commit { .. } => {}
        }
    }

    fn into_snapshot(mut self, admin: srb_types::UserId) -> CatalogSnapshot {
        // dump() orders meta_files by subject display; match it so a
        // recovered catalog's snapshot is byte-identical to a live one's.
        self.meta_files.sort_by_key(|(s, _)| format!("{s}"));
        CatalogSnapshot {
            version: SNAPSHOT_VERSION,
            next_id_floor: self.max_id,
            admin,
            users: self.users.into_values().collect(),
            groups: self.groups.into_values().collect(),
            resources: self.resources.into_values().collect(),
            logical_resources: self.logical_resources.into_values().collect(),
            collections: self.collections.into_values().collect(),
            datasets: self.datasets.into_values().collect(),
            containers: self.containers.into_values().collect(),
            metadata: self.metadata.into_values().collect(),
            meta_files: self.meta_files,
            annotations: self.annotations.into_values().collect(),
            audit: self.audit.into_values().collect(),
            generations: Some(SnapshotGenerations {
                collections: self.gens[0],
                datasets: self.gens[1],
                metadata: self.gens[2],
            }),
        }
    }
}

/// Redo recovery: read the device's durable image and produce the
/// catalog snapshot it proves — checkpoint plus every complete commit
/// group of the tail, trailing incomplete group discarded.
pub(crate) fn replay_device(device: &LogDevice) -> SrbResult<Replayed> {
    let (checkpoint, tail, read_ns) = device.read_back()?;
    let Some((ckpt_lsn, snapshot_json)) = checkpoint else {
        return Err(SrbError::Invalid(
            "log device has no checkpoint (was durability ever enabled?)".into(),
        ));
    };
    let envelope: CheckpointEnvelope = serde_json::from_str(&snapshot_json)
        .map_err(|e| SrbError::Parse(format!("checkpoint envelope JSON: {e}")))?;
    let snap: CatalogSnapshot = serde_json::from_str(&envelope.snapshot)
        .map_err(|e| SrbError::Parse(format!("checkpoint snapshot JSON: {e}")))?;
    let admin = snap.admin;
    let mut patch = Patch::from_snapshot(snap);

    let durable_lsn = tail.last().map(|&(lsn, _)| lsn).unwrap_or(ckpt_lsn);
    // The clock never runs backwards through a checkpoint, even when the
    // replay tail is empty.
    let mut max_at_ns = envelope.at_ns;
    let mut group: Vec<WalRecord> = Vec::new();
    let mut groups_applied = 0usize;
    let mut records_replayed = 0usize;
    for (lsn, payload) in &tail {
        let record: WalRecord = serde_json::from_str(payload)
            .map_err(|e| SrbError::Parse(format!("WAL record at {lsn}: {e}")))?;
        records_replayed += 1;
        if let WalOp::Commit { at_ns } = record.op {
            max_at_ns = max_at_ns.max(at_ns);
            for r in group.drain(..) {
                patch.apply(r);
            }
            groups_applied += 1;
        } else {
            group.push(record);
        }
    }
    let records_discarded = group.len();
    let recovery_ns = read_ns + REPLAY_NS_PER_RECORD * records_replayed as u64;

    Ok(Replayed {
        snapshot: patch.into_snapshot(admin),
        max_at_ns,
        report: RecoveryReport {
            checkpoint_lsn: ckpt_lsn,
            durable_lsn,
            records_replayed,
            groups_applied,
            records_discarded,
            recovery_ns,
        },
    })
}

/// One committed catalog delta exported for zone replication: the redo
/// record plus the virtual time its commit group was acknowledged. The
/// commit time is what lets a subscriber measure replication lag — the
/// exposure window between the home zone acknowledging a write and the
/// subscriber applying its mirror.
#[derive(Debug, Clone)]
pub struct Delta {
    /// The committed redo record.
    pub record: WalRecord,
    /// `Commit { at_ns }` of the group this record belonged to.
    pub committed_at_ns: u64,
}

/// What one delta fetch against a peer's log device produced.
#[derive(Debug)]
pub enum DeltaFetch {
    /// Committed records with `lsn > since`, LSN-ascending, commit markers
    /// stripped.
    Deltas {
        /// The committed records.
        deltas: Vec<Delta>,
        /// Payload bytes the fetch shipped (drives the link transfer cost).
        bytes: u64,
        /// Highest LSN of a *complete* commit group scanned (`>= since`).
        /// A fetch cursor must advance here rather than to the last
        /// delta's LSN: commit markers are stripped from `deltas`, so a
        /// cursor tracking only delta LSNs sits permanently below the
        /// next checkpoint's cover LSN and every prune looks like a gap.
        horizon: Lsn,
    },
    /// A checkpoint pruned the log past `since` — the gap is unrecoverable
    /// from the log alone and the subscriber must resync from a full
    /// subtree export before fetching deltas again.
    Resync {
        /// LSN covered by the pruning checkpoint.
        checkpoint: Lsn,
    },
}

/// Read committed catalog deltas with `lsn > since` off a zone's log
/// device. Only *complete* commit groups are returned: an unterminated
/// trailing group was never acknowledged and will reappear, terminated, on
/// a later fetch. Commit markers themselves are consumed (their `at_ns`
/// stamps the group) and never exported.
pub fn export_deltas(device: &LogDevice, since: Lsn) -> SrbResult<DeltaFetch> {
    if let Some(checkpoint) = device.checkpoint_lsn() {
        if checkpoint > since {
            return Ok(DeltaFetch::Resync { checkpoint });
        }
    }
    let (_checkpoint, tail, _read_ns) = device.read_back()?;
    let mut deltas = Vec::new();
    let mut bytes = 0u64;
    let mut horizon = since;
    let mut group: Vec<(WalRecord, u64)> = Vec::new();
    for (lsn, payload) in &tail {
        let record: WalRecord = serde_json::from_str(payload)
            .map_err(|e| SrbError::Parse(format!("WAL record at {lsn}: {e}")))?;
        if let WalOp::Commit { at_ns } = record.op {
            for (r, len) in group.drain(..) {
                if r.lsn > since.raw() {
                    bytes += len;
                    deltas.push(Delta {
                        record: r,
                        committed_at_ns: at_ns,
                    });
                }
            }
            if record.lsn > horizon.raw() {
                horizon = Lsn(record.lsn);
            }
        } else {
            group.push((record, payload.len() as u64));
        }
    }
    Ok(DeltaFetch::Deltas {
        deltas,
        bytes,
        horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_json() {
        let rec = WalRecord {
            lsn: 7,
            gen: 3,
            op: WalOp::MetaFilesPut {
                subject: Subject::Dataset(DatasetId(9)),
                files: vec![DatasetId(1), DatasetId(2)],
            },
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: WalRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.lsn, 7);
        assert_eq!(back.gen, 3);
        match back.op {
            WalOp::MetaFilesPut { subject, files } => {
                assert_eq!(subject, Subject::Dataset(DatasetId(9)));
                assert_eq!(files.len(), 2);
            }
            other => panic!("wrong op after round trip: {other:?}"),
        }
    }

    #[test]
    fn commit_groups_batched_appends_into_one_fsync() {
        let device = Arc::new(LogDevice::new());
        let wal = Wal::new(device.clone(), SimClock::new(), WalConfig::default(), None);
        wal.append(
            WalOp::AuditPut {
                row: AuditRow {
                    id: srb_types::AuditId(1),
                    at: Timestamp(0),
                    user: srb_types::UserId(1),
                    action: crate::audit::AuditAction::Ingest,
                    subject: "/a".into(),
                    outcome: "ok".into(),
                },
            },
            0,
        );
        wal.append(
            WalOp::MetaFilesClear {
                subject: Subject::Dataset(DatasetId(1)),
            },
            2,
        );
        assert_eq!(wal.durable_lsn(), Lsn(0));
        let cost = wal.commit();
        assert!(cost > 0, "first commit must fsync");
        assert_eq!(wal.durable_lsn(), Lsn(3), "2 records + marker durable");
        let (appends, syncs, _) = device.stats();
        assert_eq!((appends, syncs), (3, 1), "one fsync for the whole group");
        assert!(wal.take_pending_ns() > 0);
        assert_eq!(wal.take_pending_ns(), 0, "drain empties the pool");
    }

    #[test]
    fn checkpoint_claim_respects_the_interval() {
        let clock = SimClock::new();
        let device = Arc::new(LogDevice::new());
        let config = WalConfig {
            checkpoint_interval_ns: 1_000,
        };
        let wal = Wal::new(device, clock.clone(), config, None);
        assert_eq!(wal.checkpoint_claim(clock.now()), None, "not yet due");
        clock.advance(1_000);
        let cover = wal.checkpoint_claim(clock.now());
        assert_eq!(cover, Some(Lsn(0)));
        assert_eq!(
            wal.checkpoint_claim(clock.now()),
            None,
            "claim resets the timer"
        );
        // Disabled interval never claims.
        let off = Wal::new(
            Arc::new(LogDevice::new()),
            clock.clone(),
            WalConfig {
                checkpoint_interval_ns: 0,
            },
            None,
        );
        clock.advance(u64::MAX / 2);
        assert_eq!(off.checkpoint_claim(clock.now()), None);
    }

    #[test]
    fn replay_discards_the_unterminated_trailing_group() {
        let device = Arc::new(LogDevice::new());
        // A checkpoint is required; build one from an empty-ish catalog.
        let mcat = crate::Mcat::new(SimClock::new(), "pw");
        let json = mcat.snapshot_json().unwrap();
        let wal = Wal::new(device.clone(), SimClock::new(), WalConfig::default(), None);
        wal.install_checkpoint(Lsn(0), &json);
        // Group 1: a metadata row, committed.
        wal.append(
            WalOp::MetaPut {
                row: MetaRow {
                    id: MetaId(100),
                    subject: Subject::Dataset(DatasetId(5)),
                    triplet: srb_types::Triplet::new("k", "v", ""),
                    kind: crate::metadata::MetaKind::UserDefined,
                },
            },
            1,
        );
        wal.commit();
        // Group 2: appended but never committed (crash before fsync).
        wal.append(
            WalOp::MetaPut {
                row: MetaRow {
                    id: MetaId(101),
                    subject: Subject::Dataset(DatasetId(5)),
                    triplet: srb_types::Triplet::new("k2", "v2", ""),
                    kind: crate::metadata::MetaKind::UserDefined,
                },
            },
            2,
        );
        device.crash();
        let replayed = replay_device(&device).unwrap();
        assert_eq!(replayed.snapshot.metadata.len(), 1, "only the acked row");
        assert_eq!(replayed.report.groups_applied, 1);
        assert_eq!(replayed.report.records_discarded, 0, "lost, not discarded");
        assert_eq!(replayed.snapshot.generations.unwrap().metadata, 1);
        assert!(replayed.snapshot.next_id_floor >= 100);
        // Now a durable-but-unterminated group: synced without a marker.
        wal.append(WalOp::MetaDelete { id: MetaId(100) }, 3);
        device.sync();
        let replayed = replay_device(&device).unwrap();
        assert_eq!(replayed.report.records_discarded, 1);
        assert_eq!(replayed.snapshot.metadata.len(), 1, "delete not applied");
    }

    #[test]
    fn replay_without_a_checkpoint_is_an_error() {
        let device = LogDevice::new();
        assert!(replay_device(&device).is_err());
    }
}

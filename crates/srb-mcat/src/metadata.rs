//! The metadata triplet store and its attribute indexes.
//!
//! Five kinds of metadata (paper §5): system-defined, user-defined,
//! type-oriented (e.g. Dublin Core), file-based, and annotations (the last
//! live in [`crate::annotation`]). User/type metadata are *(name, value,
//! units)* triplets. The store keeps a per-attribute ordered value index so
//! the query engine can answer `=` and range conditions without scanning —
//! the design choice ablated in experiment E5/A1.

use crate::wal::{WalHook, WalOp};
use serde::{Deserialize, Serialize};
use srb_types::sync::{LockRank, RwLock, RwLockReadGuard};
use srb_types::{
    like_scan_prefix, CollectionId, CompareOp, DatasetId, GenCounter, Generation, IdGen, MetaId,
    MetaValue, SrbError, SrbResult, Triplet,
};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::ops::Bound;

/// What a metadata row is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Subject {
    /// A dataset.
    Dataset(DatasetId),
    /// A collection.
    Collection(CollectionId),
}

impl std::fmt::Display for Subject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Subject::Dataset(d) => write!(f, "{d}"),
            Subject::Collection(c) => write!(f, "{c}"),
        }
    }
}

/// Which of the paper's metadata categories a row belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetaKind {
    /// Maintained by SRB itself.
    System,
    /// Free-form user-defined triplet.
    UserDefined,
    /// Part of a named type-oriented schema (e.g. `DublinCore`).
    TypeOriented(String),
    /// Extracted from / carried by a metadata file (the carrying dataset).
    FileBased(DatasetId),
}

/// One metadata row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaRow {
    /// Catalog id.
    pub id: MetaId,
    /// What the row describes.
    pub subject: Subject,
    /// The (name, value, units) triplet.
    pub triplet: Triplet,
    /// Category.
    pub kind: MetaKind,
}

/// The fifteen Dublin Core elements, as the paper's canonical example of a
/// type-oriented schema.
pub const DUBLIN_CORE: [&str; 15] = [
    "Title",
    "Creator",
    "Subject",
    "Description",
    "Publisher",
    "Contributor",
    "Date",
    "Type",
    "Format",
    "Identifier",
    "Source",
    "Language",
    "Relation",
    "Coverage",
    "Rights",
];

/// Ordered wrapper so `MetaValue`s can key a BTreeMap: numbers first (by
/// numeric value), then text in case-folded order with a raw tie-break —
/// the same total order as `MetaValue::index_cmp`, but with the numeric
/// view and the case fold computed **once** at insertion instead of on
/// every comparison (a B-tree insert at 10⁶ keys performs ~20 of them).
#[derive(Debug, Clone)]
struct IndexKey {
    v: MetaValue,
    /// Cached numeric view (`MetaValue::as_f64`); `None` for pure text.
    num: Option<f64>,
    /// Cached lowercase fold of the lexical form; populated only for pure
    /// text (numeric keys order by value, never by fold).
    fold: Option<String>,
}

impl IndexKey {
    fn new(v: MetaValue) -> Self {
        let num = v.as_f64();
        let fold = if num.is_none() {
            Some(v.lexical().to_lowercase())
        } else {
            None
        };
        IndexKey { v, num, fold }
    }

    /// A synthetic lower bound for the case-folded text region starting at
    /// `fold`: it sorts after every numeric key, and at-or-before every
    /// text key whose fold is ≥ `fold` (its raw form is empty, the minimum
    /// tie-break). Used only as a range-scan probe, never stored.
    fn text_probe(fold: String) -> Self {
        IndexKey {
            v: MetaValue::Text(String::new()),
            num: None,
            fold: Some(fold),
        }
    }

    /// Raw lexical form of a text key, borrowed. Text keys are always the
    /// `Text` variant: any `Int`/`Float` (or numeric-looking text) has
    /// `num = Some(_)` and never reaches the text comparison leg.
    fn raw(&self) -> &str {
        match &self.v {
            MetaValue::Text(s) => s.as_str(),
            // Unreachable for keys in the text region; harmless fallback.
            _ => "",
        }
    }
}

impl PartialEq for IndexKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.num, other.num) {
            (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => {
                let (fa, fb) = (self.fold.as_deref(), other.fold.as_deref());
                match fa.cmp(&fb) {
                    Ordering::Equal => self.raw().cmp(other.raw()),
                    o => o,
                }
            }
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    rows: HashMap<MetaId, MetaRow>,
    by_subject: HashMap<Subject, Vec<MetaId>>,
    /// attribute name → ordered value → row ids.
    index: HashMap<String, BTreeMap<IndexKey, Vec<MetaId>>>,
    /// attribute name → total row count, maintained incrementally so the
    /// planner's partition-wide selectivity estimate is O(1) instead of a
    /// walk over every distinct value.
    attr_counts: HashMap<String, usize>,
    /// file-based metadata associations: subject → carrying datasets.
    meta_files: HashMap<Subject, Vec<DatasetId>>,
}

/// The triplet store.
#[derive(Debug)]
pub struct MetaStore {
    inner: RwLock<Inner>,
    /// Bumped by every row mutation; paging cursors over query results
    /// stamp themselves with this counter (plus the dataset and collection
    /// ones) and are rejected once it moves.
    generation: GenCounter,
    /// Redo-log hook; a no-op until the catalog enables durability.
    wal: WalHook,
}

impl Default for MetaStore {
    fn default() -> Self {
        MetaStore {
            inner: RwLock::new(LockRank::McatTable, "mcat.metadata", Inner::default()),
            generation: GenCounter::new(),
            wal: WalHook::default(),
        }
    }
}

impl MetaStore {
    /// Empty store.
    pub fn new() -> Self {
        MetaStore::default()
    }

    /// Attach a triplet to a subject. There is no limit on rows per
    /// subject ("this operation can be performed as many times as
    /// required").
    pub fn add(&self, ids: &IdGen, subject: Subject, triplet: Triplet, kind: MetaKind) -> MetaId {
        let id: MetaId = ids.next();
        let row = MetaRow {
            id,
            subject,
            triplet,
            kind,
        };
        let mut g = self.inner.write();
        let gen = self.generation.bump_get().raw();
        self.wal.log(gen, || WalOp::MetaPut { row: row.clone() });
        Self::insert_locked(&mut g, row);
        drop(g);
        self.wal.commit();
        id
    }

    /// Add many rows under a single write-lock acquisition — the metadata
    /// half of bulk ingest. Ids are assigned in iteration order.
    pub fn add_batch<I>(&self, ids: &IdGen, rows: I) -> Vec<MetaId>
    where
        I: IntoIterator<Item = (Subject, Triplet, MetaKind)>,
    {
        let mut g = self.inner.write();
        let gen = self.generation.bump_get().raw();
        let out = rows
            .into_iter()
            .map(|(subject, triplet, kind)| {
                let id: MetaId = ids.next();
                let row = MetaRow {
                    id,
                    subject,
                    triplet,
                    kind,
                };
                self.wal.log(gen, || WalOp::MetaPut { row: row.clone() });
                Self::insert_locked(&mut g, row);
                id
            })
            .collect();
        drop(g);
        self.wal.commit();
        out
    }

    fn insert_locked(g: &mut Inner, row: MetaRow) {
        g.by_subject.entry(row.subject).or_default().push(row.id);
        g.index
            .entry(row.triplet.name.clone())
            .or_default()
            .entry(IndexKey::new(row.triplet.value.clone()))
            .or_default()
            .push(row.id);
        *g.attr_counts.entry(row.triplet.name.clone()).or_default() += 1;
        g.rows.insert(row.id, row);
    }

    /// Update a row's value/units in place.
    pub fn update(&self, id: MetaId, value: MetaValue, units: String) -> SrbResult<()> {
        let mut g = self.inner.write();
        let row = g
            .rows
            .get(&id)
            .cloned()
            .ok_or_else(|| SrbError::NotFound(format!("metadata {id}")))?;
        // Re-index under the new value (the attribute name is unchanged, so
        // the per-attribute row count is too).
        if let Some(vals) = g.index.get_mut(&row.triplet.name) {
            let old_key = IndexKey::new(row.triplet.value.clone());
            if let Some(v) = vals.get_mut(&old_key) {
                v.retain(|&m| m != id);
                if v.is_empty() {
                    vals.remove(&old_key);
                }
            }
        }
        g.index
            .entry(row.triplet.name.clone())
            .or_default()
            .entry(IndexKey::new(value.clone()))
            .or_default()
            .push(id);
        if let Some(row) = g.rows.get_mut(&id) {
            row.triplet.value = value;
            row.triplet.units = units;
        }
        let gen = self.generation.bump_get().raw();
        if let Some(row) = g.rows.get(&id) {
            self.wal.log(gen, || WalOp::MetaPut { row: row.clone() });
        }
        drop(g);
        self.wal.commit();
        Ok(())
    }

    /// Remove one row.
    pub fn remove(&self, id: MetaId) -> SrbResult<()> {
        let mut g = self.inner.write();
        let row = g
            .rows
            .remove(&id)
            .ok_or_else(|| SrbError::NotFound(format!("metadata {id}")))?;
        if let Some(v) = g.by_subject.get_mut(&row.subject) {
            v.retain(|&m| m != id);
        }
        if let Some(vals) = g.index.get_mut(&row.triplet.name) {
            let key = IndexKey::new(row.triplet.value);
            if let Some(v) = vals.get_mut(&key) {
                v.retain(|&m| m != id);
                if v.is_empty() {
                    vals.remove(&key);
                }
            }
        }
        if let Some(n) = g.attr_counts.get_mut(&row.triplet.name) {
            *n = n.saturating_sub(1);
        }
        let gen = self.generation.bump_get().raw();
        self.wal.log(gen, || WalOp::MetaDelete { id });
        drop(g);
        self.wal.commit();
        Ok(())
    }

    /// Remove every row attached to a subject ("when the last replica is
    /// deleted all the metadata … are also deleted").
    pub fn remove_all(&self, subject: Subject) {
        let ids = self
            .inner
            .read()
            .by_subject
            .get(&subject)
            .cloned()
            .unwrap_or_default();
        for id in ids {
            let _ = self.remove(id);
        }
        let mut g = self.inner.write();
        if g.meta_files.remove(&subject).is_some() {
            self.wal.log(0, || WalOp::MetaFilesClear { subject });
            drop(g);
            self.wal.commit();
        }
    }

    /// All rows for a subject, in insertion order.
    pub fn for_subject(&self, subject: Subject) -> Vec<MetaRow> {
        let g = self.inner.read();
        g.by_subject
            .get(&subject)
            .map(|ids| ids.iter().filter_map(|i| g.rows.get(i)).cloned().collect())
            .unwrap_or_default()
    }

    /// Copy user-defined and type-oriented rows from one subject to
    /// another (MySRB's "copy metadata from other SRB objects").
    pub fn copy(&self, ids: &IdGen, from: Subject, to: Subject) -> usize {
        let rows = self.for_subject(from);
        let mut n = 0;
        for r in rows {
            match &r.kind {
                MetaKind::UserDefined | MetaKind::TypeOriented(_) => {
                    self.add(ids, to, r.triplet.clone(), r.kind.clone());
                    n += 1;
                }
                _ => {}
            }
        }
        n
    }

    /// First value of a named attribute on a subject. One read guard, one
    /// clone: only the matched value is copied out, never the subject's
    /// full row vector.
    pub fn value_of(&self, subject: Subject, name: &str) -> Option<MetaValue> {
        let g = self.inner.read();
        g.by_subject.get(&subject)?.iter().find_map(|id| {
            g.rows
                .get(id)
                .filter(|r| r.triplet.name == name)
                .map(|r| r.triplet.value.clone())
        })
    }

    /// Row ids whose attribute `name` satisfies `op value`, found via the
    /// ordered index. `Like`/`NotLike`/`Ne` scan only the index partition
    /// for that attribute name.
    pub fn candidates(&self, name: &str, op: CompareOp, value: &MetaValue) -> Vec<MetaId> {
        let g = self.inner.read();
        let mut out = Vec::new();
        walk_index(&g, name, op, value, |ids| out.extend_from_slice(ids));
        out
    }

    /// Dataset subjects with at least one row whose attribute `name`
    /// satisfies `op value` — exactly the datasets satisfying that query
    /// condition through user metadata. Index walk and row resolution run
    /// under a single read guard; the planner intersects these sets.
    pub fn dataset_candidates(
        &self,
        name: &str,
        op: CompareOp,
        value: &MetaValue,
    ) -> HashSet<DatasetId> {
        let g = self.inner.read();
        let mut out = HashSet::new();
        walk_index(&g, name, op, value, |ids| {
            for id in ids {
                if let Some(MetaRow {
                    subject: Subject::Dataset(d),
                    ..
                }) = g.rows.get(id)
                {
                    out.insert(*d);
                }
            }
        });
        out
    }

    /// Drop from `set` every dataset with **no** row satisfying
    /// `name op value`. Equivalent to intersecting with
    /// [`Self::dataset_candidates`], but probes each survivor's own rows
    /// under one read guard — the planner picks this form when the
    /// condition's match count dwarfs the surviving candidate set.
    pub fn filter_datasets(
        &self,
        set: &mut HashSet<DatasetId>,
        name: &str,
        op: CompareOp,
        value: &MetaValue,
    ) {
        let g = self.inner.read();
        set.retain(|d| subject_matches_locked(&g, Subject::Dataset(*d), name, op, value));
    }

    /// Keys examined before a range-selectivity estimate gives up and
    /// reports "at least this many". Keeps the estimate O(1)-ish while
    /// still separating a 10-row range from a 10⁶-row one.
    const RANGE_SELECTIVITY_CAP: usize = 4096;

    /// Estimated number of matches for a condition, used by the planner to
    /// pick the most selective condition first and to decide between an
    /// index plan and a full scan. `Eq` is exact; range and prefix-`Like`
    /// conditions walk their index range up to
    /// `RANGE_SELECTIVITY_CAP` rows (a lower bound past the cap);
    /// other patterns fall back to the O(1) whole-partition count.
    pub fn selectivity(&self, name: &str, op: CompareOp, value: &MetaValue) -> usize {
        let g = self.inner.read();
        let Some(vals) = g.index.get(name) else {
            return 0;
        };
        let partition = g.attr_counts.get(name).copied().unwrap_or(0);
        let capped_count = |it: &mut dyn Iterator<Item = usize>| -> usize {
            let mut n = 0usize;
            for len in it {
                n += len;
                if n >= Self::RANGE_SELECTIVITY_CAP {
                    break;
                }
            }
            n.min(partition)
        };
        match op {
            CompareOp::Eq => vals
                .get(&IndexKey::new(value.clone()))
                .map(|v| v.len())
                .unwrap_or(0),
            CompareOp::Gt => {
                let key = IndexKey::new(value.clone());
                capped_count(
                    &mut vals
                        .range((Bound::Excluded(key), Bound::Unbounded))
                        .map(|(_, v)| v.len()),
                )
            }
            CompareOp::Ge => {
                let key = IndexKey::new(value.clone());
                capped_count(&mut vals.range(key..).map(|(_, v)| v.len()))
            }
            CompareOp::Lt => {
                let key = IndexKey::new(value.clone());
                capped_count(&mut vals.range(..key).map(|(_, v)| v.len()))
            }
            CompareOp::Le => {
                let key = IndexKey::new(value.clone());
                capped_count(&mut vals.range(..=key).map(|(_, v)| v.len()))
            }
            CompareOp::Like => match like_scan_prefix(&value.lexical()) {
                Some(prefix) => {
                    let probe = IndexKey::text_probe(prefix.clone());
                    capped_count(
                        &mut vals
                            .range(probe..)
                            .take_while(|(k, _)| {
                                k.fold.as_deref().is_some_and(|f| f.starts_with(&prefix))
                            })
                            .map(|(_, v)| v.len()),
                    )
                }
                None => partition,
            },
            // `Ne`/`NotLike` scan the whole partition.
            _ => partition,
        }
    }

    /// Resolve row ids to their subjects.
    pub fn subjects_of(&self, ids: &[MetaId]) -> Vec<Subject> {
        let g = self.inner.read();
        ids.iter()
            .filter_map(|i| g.rows.get(i).map(|r| r.subject))
            .collect()
    }

    /// A read guard over the store for a whole verification sweep: one
    /// lock acquisition serves any number of per-candidate condition
    /// probes, and rows are borrowed rather than cloned. This is what
    /// keeps a 6-condition query over 10⁵ candidates at one lock
    /// acquisition instead of ~600k.
    pub fn batch(&self) -> MetaBatch<'_> {
        MetaBatch {
            g: self.inner.read(),
        }
    }

    /// Attribute names carried by any dataset in `datasets`, sorted and
    /// deduplicated — the scoped form of [`Self::attr_names`]. One pass
    /// over the subject index with set-membership probes; no `Vec<Subject>`
    /// is materialized.
    pub fn attr_names_in(&self, datasets: &HashSet<DatasetId>) -> Vec<String> {
        let g = self.inner.read();
        let mut names = BTreeSet::new();
        for (subject, ids) in &g.by_subject {
            let Subject::Dataset(d) = subject else {
                continue;
            };
            if !datasets.contains(d) {
                continue;
            }
            for id in ids {
                if let Some(r) = g.rows.get(id) {
                    if !names.contains(r.triplet.name.as_str()) {
                        names.insert(r.triplet.name.clone());
                    }
                }
            }
        }
        names.into_iter().collect()
    }

    /// Attribute names present on the given subject set plus all names in
    /// the store when `subjects` is `None` — feeds MySRB's query drop-down.
    pub fn attr_names(&self, subjects: Option<&[Subject]>) -> Vec<String> {
        let g = self.inner.read();
        let mut names: Vec<String> = match subjects {
            None => g.index.keys().cloned().collect(),
            Some(subs) => {
                let mut names = Vec::new();
                for s in subs {
                    if let Some(ids) = g.by_subject.get(s) {
                        for id in ids {
                            if let Some(r) = g.rows.get(id) {
                                names.push(r.triplet.name.clone());
                            }
                        }
                    }
                }
                names
            }
        };
        names.sort();
        names.dedup();
        names
    }

    /// Associate `carrier` as a metadata-carrying file for `subject`. One
    /// file may serve many subjects.
    pub fn attach_meta_file(&self, subject: Subject, carrier: DatasetId) {
        let mut g = self.inner.write();
        let v = g.meta_files.entry(subject).or_default();
        if !v.contains(&carrier) {
            v.push(carrier);
            let files = &*v;
            self.wal.log(0, || WalOp::MetaFilesPut {
                subject,
                files: files.clone(),
            });
            drop(g);
            self.wal.commit();
        }
    }

    /// The metadata-carrying files of a subject.
    pub fn meta_files_of(&self, subject: Subject) -> Vec<DatasetId> {
        self.inner
            .read()
            .meta_files
            .get(&subject)
            .cloned()
            .unwrap_or_default()
    }

    /// Every metadata row plus the meta-file associations (snapshots).
    pub fn dump(&self) -> (Vec<MetaRow>, Vec<(Subject, Vec<DatasetId>)>) {
        let g = self.inner.read();
        let mut rows: Vec<MetaRow> = g.rows.values().cloned().collect();
        rows.sort_by_key(|r| r.id);
        let mut files: Vec<(Subject, Vec<DatasetId>)> =
            g.meta_files.iter().map(|(k, v)| (*k, v.clone())).collect();
        files.sort_by_key(|(s, _)| format!("{s}"));
        (rows, files)
    }

    /// Rebuild the store (subject lists + value indexes) from snapshot
    /// rows.
    pub fn restore(rows: Vec<MetaRow>, meta_files: Vec<(Subject, Vec<DatasetId>)>) -> Self {
        let t = MetaStore::new();
        {
            let mut g = t.inner.write();
            for r in rows {
                g.by_subject.entry(r.subject).or_default().push(r.id);
                g.index
                    .entry(r.triplet.name.clone())
                    .or_default()
                    .entry(IndexKey::new(r.triplet.value.clone()))
                    .or_default()
                    .push(r.id);
                *g.attr_counts.entry(r.triplet.name.clone()).or_default() += 1;
                g.rows.insert(r.id, r);
            }
            for (s, v) in meta_files {
                g.meta_files.insert(s, v);
            }
        }
        t
    }

    /// Total number of rows.
    pub fn count(&self) -> usize {
        self.inner.read().rows.len()
    }

    /// Current mutation generation (cursor invalidation and tests).
    pub fn generation(&self) -> Generation {
        self.generation.current()
    }

    /// Raise the mutation counter to at least `raw` (snapshot restore /
    /// WAL recovery — recovered cursors must see the stamps they embed).
    pub fn restore_generation(&self, raw: u64) {
        self.generation.ensure_at_least(raw);
    }

    /// Wire this table to the catalog's WAL.
    pub(crate) fn attach_wal(&self, wal: std::sync::Arc<crate::wal::Wal>) {
        self.wal.attach(wal);
    }
}

/// Borrowed view for batch condition verification; see [`MetaStore::batch`].
pub struct MetaBatch<'a> {
    g: RwLockReadGuard<'a, Inner>,
}

impl MetaBatch<'_> {
    /// Does `subject` carry any row whose attribute `name` satisfies
    /// `op value`? Evaluated against borrowed rows — no clones, no extra
    /// lock traffic.
    pub fn subject_matches(
        &self,
        subject: Subject,
        name: &str,
        op: CompareOp,
        value: &MetaValue,
    ) -> bool {
        subject_matches_locked(&self.g, subject, name, op, value)
    }

    /// First value of a named attribute on a subject, borrowed.
    pub fn value_of(&self, subject: Subject, name: &str) -> Option<&MetaValue> {
        self.g.by_subject.get(&subject)?.iter().find_map(|id| {
            self.g
                .rows
                .get(id)
                .filter(|r| r.triplet.name == name)
                .map(|r| &r.triplet.value)
        })
    }
}

/// Shared body of [`MetaBatch::subject_matches`] and
/// [`MetaStore::filter_datasets`]: probe a subject's own rows under an
/// already-held guard.
fn subject_matches_locked(
    g: &Inner,
    subject: Subject,
    name: &str,
    op: CompareOp,
    value: &MetaValue,
) -> bool {
    g.by_subject.get(&subject).is_some_and(|ids| {
        ids.iter().any(|id| {
            g.rows
                .get(id)
                .is_some_and(|r| r.triplet.name == name && op.eval(&r.triplet.value, value))
        })
    })
}

/// Walk the ordered value index for `name`, invoking `emit` with each row-id
/// slice whose key satisfies `op value`. The guard is already held by the
/// caller, so resolving the emitted ids costs no further locking.
fn walk_index(
    g: &Inner,
    name: &str,
    op: CompareOp,
    value: &MetaValue,
    mut emit: impl FnMut(&[MetaId]),
) {
    let Some(vals) = g.index.get(name) else {
        return;
    };
    let key = IndexKey::new(value.clone());
    match op {
        CompareOp::Eq => {
            if let Some(v) = vals.get(&key) {
                emit(v);
            }
        }
        CompareOp::Gt => {
            for (k, v) in vals.range((Bound::Excluded(key), Bound::Unbounded)) {
                if op_applies(op, &k.v, value) {
                    emit(v);
                }
            }
        }
        CompareOp::Ge => {
            for (k, v) in vals.range(key..) {
                if op_applies(op, &k.v, value) {
                    emit(v);
                }
            }
        }
        CompareOp::Lt => {
            for (k, v) in vals.range(..key) {
                if op_applies(op, &k.v, value) {
                    emit(v);
                }
            }
        }
        CompareOp::Le => {
            for (k, v) in vals.range(..=key) {
                if op_applies(op, &k.v, value) {
                    emit(v);
                }
            }
        }
        // A pattern with a usable literal prefix is a bounded range scan
        // over the case-folded text region: every `LIKE` match must start
        // (case-insensitively) with the prefix, folds are contiguous in the
        // index order, and numeric keys are excluded by `like_scan_prefix`
        // — so the scan starts at the prefix probe and stops at the first
        // fold that no longer extends it. The full pattern is still
        // evaluated per key (it may carry further wildcards).
        CompareOp::Like => {
            if let Some(prefix) = like_scan_prefix(&value.lexical()) {
                let probe = IndexKey::text_probe(prefix.clone());
                for (k, v) in vals.range(probe..) {
                    match k.fold.as_deref() {
                        Some(f) if f.starts_with(&prefix) => {
                            if op.eval(&k.v, value) {
                                emit(v);
                            }
                        }
                        _ => break,
                    }
                }
            } else {
                for (k, v) in vals.iter() {
                    if op.eval(&k.v, value) {
                        emit(v);
                    }
                }
            }
        }
        CompareOp::Ne | CompareOp::NotLike => {
            for (k, v) in vals.iter() {
                if op.eval(&k.v, value) {
                    emit(v);
                }
            }
        }
    }
}

/// Range scans over the index can cross the number/text boundary (numbers
/// sort before text); re-check the operator against mixed types.
fn op_applies(op: CompareOp, candidate: &MetaValue, value: &MetaValue) -> bool {
    op.eval(candidate, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (MetaStore, IdGen) {
        (MetaStore::new(), IdGen::new())
    }

    fn ds(n: u64) -> Subject {
        Subject::Dataset(DatasetId(n))
    }

    #[test]
    fn add_and_list() {
        let (s, ids) = store();
        s.add(
            &ids,
            ds(1),
            Triplet::new("species", "condor", ""),
            MetaKind::UserDefined,
        );
        s.add(
            &ids,
            ds(1),
            Triplet::new("wingspan", 290, "cm"),
            MetaKind::UserDefined,
        );
        let rows = s.for_subject(ds(1));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].triplet.name, "species");
        assert_eq!(s.value_of(ds(1), "wingspan"), Some(MetaValue::Int(290)));
        assert_eq!(s.value_of(ds(1), "absent"), None);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn eq_candidates_via_index() {
        let (s, ids) = store();
        for i in 0..10 {
            s.add(
                &ids,
                ds(i),
                Triplet::new("n", i as i64, ""),
                MetaKind::UserDefined,
            );
        }
        let hits = s.candidates("n", CompareOp::Eq, &MetaValue::Int(4));
        assert_eq!(hits.len(), 1);
        assert_eq!(s.subjects_of(&hits), vec![ds(4)]);
    }

    #[test]
    fn range_candidates() {
        let (s, ids) = store();
        for i in 0..10 {
            s.add(
                &ids,
                ds(i),
                Triplet::new("n", i as i64, ""),
                MetaKind::UserDefined,
            );
        }
        assert_eq!(
            s.candidates("n", CompareOp::Gt, &MetaValue::Int(7)).len(),
            2
        );
        assert_eq!(
            s.candidates("n", CompareOp::Ge, &MetaValue::Int(7)).len(),
            3
        );
        assert_eq!(
            s.candidates("n", CompareOp::Lt, &MetaValue::Int(2)).len(),
            2
        );
        assert_eq!(
            s.candidates("n", CompareOp::Le, &MetaValue::Int(2)).len(),
            3
        );
        assert_eq!(
            s.candidates("n", CompareOp::Ne, &MetaValue::Int(5)).len(),
            9
        );
    }

    #[test]
    fn range_does_not_leak_text_values() {
        let (s, ids) = store();
        s.add(&ids, ds(1), Triplet::new("v", 5, ""), MetaKind::UserDefined);
        s.add(
            &ids,
            ds(2),
            Triplet::new("v", "pear", ""),
            MetaKind::UserDefined,
        );
        // "pear" sorts after numbers in the index but must not satisfy > 3.
        let hits = s.candidates("v", CompareOp::Gt, &MetaValue::Int(3));
        assert_eq!(s.subjects_of(&hits), vec![ds(1)]);
    }

    #[test]
    fn like_candidates() {
        let (s, ids) = store();
        s.add(
            &ids,
            ds(1),
            Triplet::new("species", "condor", ""),
            MetaKind::UserDefined,
        );
        s.add(
            &ids,
            ds(2),
            Triplet::new("species", "condor andino", ""),
            MetaKind::UserDefined,
        );
        s.add(
            &ids,
            ds(3),
            Triplet::new("species", "sparrow", ""),
            MetaKind::UserDefined,
        );
        let hits = s.candidates("species", CompareOp::Like, &MetaValue::parse("condor%"));
        assert_eq!(hits.len(), 2);
        let hits = s.candidates("species", CompareOp::NotLike, &MetaValue::parse("condor%"));
        assert_eq!(s.subjects_of(&hits), vec![ds(3)]);
    }

    #[test]
    fn update_reindexes() {
        let (s, ids) = store();
        let id = s.add(&ids, ds(1), Triplet::new("n", 1, ""), MetaKind::UserDefined);
        s.update(id, MetaValue::Int(9), "".into()).unwrap();
        assert!(s
            .candidates("n", CompareOp::Eq, &MetaValue::Int(1))
            .is_empty());
        assert_eq!(
            s.candidates("n", CompareOp::Eq, &MetaValue::Int(9)).len(),
            1
        );
        assert!(s.update(MetaId(999), MetaValue::Int(0), "".into()).is_err());
    }

    #[test]
    fn remove_and_remove_all() {
        let (s, ids) = store();
        let a = s.add(&ids, ds(1), Triplet::new("x", 1, ""), MetaKind::UserDefined);
        s.add(&ids, ds(1), Triplet::new("y", 2, ""), MetaKind::UserDefined);
        s.remove(a).unwrap();
        assert_eq!(s.for_subject(ds(1)).len(), 1);
        assert!(s
            .candidates("x", CompareOp::Eq, &MetaValue::Int(1))
            .is_empty());
        s.remove_all(ds(1));
        assert!(s.for_subject(ds(1)).is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn copy_skips_system_rows() {
        let (s, ids) = store();
        s.add(&ids, ds(1), Triplet::new("u", 1, ""), MetaKind::UserDefined);
        s.add(
            &ids,
            ds(1),
            Triplet::new("Title", "X", ""),
            MetaKind::TypeOriented("DublinCore".into()),
        );
        s.add(&ids, ds(1), Triplet::new("size", 10, ""), MetaKind::System);
        let n = s.copy(&ids, ds(1), ds(2));
        assert_eq!(n, 2);
        let rows = s.for_subject(ds(2));
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.kind != MetaKind::System));
    }

    #[test]
    fn attr_names_for_dropdown() {
        let (s, ids) = store();
        s.add(&ids, ds(1), Triplet::new("b", 1, ""), MetaKind::UserDefined);
        s.add(&ids, ds(2), Triplet::new("a", 1, ""), MetaKind::UserDefined);
        s.add(&ids, ds(2), Triplet::new("a", 2, ""), MetaKind::UserDefined);
        assert_eq!(s.attr_names(None), vec!["a", "b"]);
        assert_eq!(s.attr_names(Some(&[ds(2)])), vec!["a"]);
    }

    #[test]
    fn meta_file_associations() {
        let (s, _) = store();
        s.attach_meta_file(ds(1), DatasetId(9));
        s.attach_meta_file(ds(1), DatasetId(9)); // idempotent
        s.attach_meta_file(ds(2), DatasetId(9)); // one file, many subjects
        assert_eq!(s.meta_files_of(ds(1)), vec![DatasetId(9)]);
        assert_eq!(s.meta_files_of(ds(2)), vec![DatasetId(9)]);
        s.remove_all(ds(1));
        assert!(s.meta_files_of(ds(1)).is_empty());
    }

    #[test]
    fn selectivity_prefers_point_queries() {
        let (s, ids) = store();
        for i in 0..100 {
            s.add(
                &ids,
                ds(i),
                Triplet::new("common", i as i64 % 2, ""),
                MetaKind::UserDefined,
            );
            if i < 3 {
                s.add(
                    &ids,
                    ds(i),
                    Triplet::new("rare", i as i64, ""),
                    MetaKind::UserDefined,
                );
            }
        }
        let sel_rare = s.selectivity("rare", CompareOp::Eq, &MetaValue::Int(1));
        let sel_common = s.selectivity("common", CompareOp::Eq, &MetaValue::Int(1));
        assert!(sel_rare < sel_common);
        assert_eq!(
            s.selectivity("absent", CompareOp::Eq, &MetaValue::Int(1)),
            0
        );
    }

    /// Regression: `foo%` patterns are answered by a bounded prefix range
    /// scan over the case-folded text region, and that scan agrees with
    /// direct evaluation — including mixed case, multi-wildcard suffixes,
    /// and numeric keys sitting in the same partition.
    #[test]
    fn prefix_like_range_scan_matches_eval() {
        let (s, ids) = store();
        let values = [
            "condor",
            "Condor Andino",
            "CONDUIT",
            "con",
            "sparrow",
            "Sparrow",
            "-cond",
            "12cond",
        ];
        for (i, v) in values.iter().enumerate() {
            s.add(
                &ids,
                ds(i as u64),
                Triplet::new("species", MetaValue::Text(v.to_string()), ""),
                MetaKind::UserDefined,
            );
        }
        // Numeric rows share the partition but must never satisfy `con%`.
        s.add(
            &ids,
            ds(100),
            Triplet::new("species", 42, ""),
            MetaKind::UserDefined,
        );
        for pattern in ["con%", "Con%", "con%o%", "co_d%", "sparrow", "%cond%", "1%"] {
            let pat = MetaValue::Text(pattern.to_string());
            let mut got: Vec<Subject> =
                s.subjects_of(&s.candidates("species", CompareOp::Like, &pat));
            got.sort_by_key(|x| format!("{x}"));
            let mut want: Vec<Subject> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| CompareOp::Like.eval(&MetaValue::Text(v.to_string()), &pat))
                .map(|(i, _)| ds(i as u64))
                .chain(
                    CompareOp::Like
                        .eval(&MetaValue::Int(42), &pat)
                        .then_some(ds(100)),
                )
                .collect();
            want.sort_by_key(|x| format!("{x}"));
            assert_eq!(got, want, "pattern {pattern}");
        }
    }

    #[test]
    fn range_selectivity_is_capped_but_ordering_preserved() {
        let (s, ids) = store();
        for i in 0..10_000u64 {
            s.add(
                &ids,
                ds(i),
                Triplet::new("n", i as i64, ""),
                MetaKind::UserDefined,
            );
        }
        // A narrow range reports its true count.
        assert_eq!(s.selectivity("n", CompareOp::Lt, &MetaValue::Int(10)), 10);
        // A huge range stops at the cap instead of walking 10⁴ keys…
        let wide = s.selectivity("n", CompareOp::Gt, &MetaValue::Int(-1));
        assert!((MetaStore::RANGE_SELECTIVITY_CAP..10_000).contains(&wide));
        // …and still estimates below the whole-partition patterns.
        assert!(wide <= s.selectivity("n", CompareOp::Ne, &MetaValue::Int(0)));
        // Prefix-like estimates walk only the prefix region.
        s.add(
            &ids,
            ds(20_000),
            Triplet::new("n", "xyz", ""),
            MetaKind::UserDefined,
        );
        assert_eq!(
            s.selectivity("n", CompareOp::Like, &MetaValue::Text("xy%".into())),
            1
        );
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let (s, ids) = store();
        let g0 = s.generation();
        let id = s.add(&ids, ds(1), Triplet::new("x", 1, ""), MetaKind::UserDefined);
        let g1 = s.generation();
        assert_ne!(g0, g1);
        s.update(id, MetaValue::Int(2), "".into()).unwrap();
        let g2 = s.generation();
        assert_ne!(g1, g2);
        s.remove(id).unwrap();
        assert_ne!(g2, s.generation());
    }

    #[test]
    fn dublin_core_has_fifteen_elements() {
        assert_eq!(DUBLIN_CORE.len(), 15);
        assert!(DUBLIN_CORE.contains(&"Title"));
        assert!(DUBLIN_CORE.contains(&"Rights"));
    }
}

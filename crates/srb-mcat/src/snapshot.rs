//! Catalog snapshots — serialize the entire MCAT to JSON and restore it.
//!
//! The paper's persistent-archive capability migrates *data* onto new
//! media (experiment E9); preserving the *catalog* itself — name space,
//! ACLs, metadata, annotations, audit trail — is the complementary half a
//! production deployment needs across restarts and technology generations.
//! A snapshot captures every table; restoring rebuilds all derived indexes
//! (path maps, child lists, attribute value indexes) from the rows.

use crate::annotation::{Annotation, AnnotationTable};
use crate::audit::{AuditLog, AuditRow};
use crate::catalog::Mcat;
use crate::collection::{Collection, CollectionTable};
use crate::container::{ContainerRecord, ContainerTable};
use crate::dataset::{Dataset, DatasetTable};
use crate::metadata::{MetaRow, MetaStore, Subject};
use crate::resource::{LogicalResource, Resource, ResourceTable};
use crate::user::{Group, User, UserTable};
use serde::{Deserialize, Serialize};
use srb_types::{DatasetId, IdGen, SimClock, SrbError, SrbResult, UserId};

/// Generation stamps of the three cursor-relevant tables at snapshot
/// time, in the order continuation tokens embed them. Persisting them
/// lets a recovered catalog either resume outstanding cursors (stamps
/// unchanged) or cleanly invalidate them (stamps moved on) instead of
/// silently accepting stale tokens against reset counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotGenerations {
    /// [`CollectionTable`] mutation counter.
    pub collections: u64,
    /// [`DatasetTable`] mutation counter.
    pub datasets: u64,
    /// [`MetaStore`] mutation counter.
    pub metadata: u64,
}

/// A complete, self-contained image of a catalog.
#[derive(Debug, Serialize, Deserialize)]
pub struct CatalogSnapshot {
    /// Snapshot format version.
    pub version: u32,
    /// Highest id allocated when the snapshot was taken.
    pub next_id_floor: u64,
    /// The bootstrap administrator.
    pub admin: UserId,
    /// Users.
    pub users: Vec<User>,
    /// Groups.
    pub groups: Vec<Group>,
    /// Physical resources.
    pub resources: Vec<Resource>,
    /// Logical resources.
    pub logical_resources: Vec<LogicalResource>,
    /// Collections (including the root).
    pub collections: Vec<Collection>,
    /// Datasets with their replicas.
    pub datasets: Vec<Dataset>,
    /// Containers.
    pub containers: Vec<ContainerRecord>,
    /// Metadata triplets.
    pub metadata: Vec<MetaRow>,
    /// File-based metadata associations.
    pub meta_files: Vec<(Subject, Vec<DatasetId>)>,
    /// Annotations.
    pub annotations: Vec<Annotation>,
    /// The audit trail.
    pub audit: Vec<AuditRow>,
    /// Cursor-relevant generation stamps (absent in pre-WAL snapshots,
    /// which restore with counters at their rebuilt values).
    pub generations: Option<SnapshotGenerations>,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

impl Mcat {
    /// Capture the whole catalog.
    pub fn snapshot(&self) -> CatalogSnapshot {
        let (metadata, meta_files) = self.metadata.dump();
        CatalogSnapshot {
            version: SNAPSHOT_VERSION,
            next_id_floor: self.ids.allocated(),
            admin: self.admin(),
            users: self.users.list_users(),
            groups: self.users.list_groups(),
            resources: self.resources.list(),
            logical_resources: self.resources.list_logical(),
            collections: self.collections.dump(),
            datasets: self.datasets.dump(),
            containers: self.containers.list(),
            metadata,
            meta_files,
            annotations: self.annotations.dump(),
            audit: self.audit.dump(),
            generations: Some(SnapshotGenerations {
                collections: self.collections.generation().raw(),
                datasets: self.datasets.generation().raw(),
                metadata: self.metadata.generation().raw(),
            }),
        }
    }

    /// Capture the whole catalog as a JSON string.
    pub fn snapshot_json(&self) -> SrbResult<String> {
        serde_json::to_string(&self.snapshot())
            .map_err(|e| SrbError::Invalid(format!("snapshot serialization: {e}")))
    }

    /// Rebuild a catalog from a snapshot, sharing `clock`.
    pub fn restore(clock: SimClock, snap: CatalogSnapshot) -> SrbResult<Mcat> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(SrbError::Invalid(format!(
                "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
                snap.version
            )));
        }
        if !snap.collections.iter().any(|c| c.path.is_root()) {
            return Err(SrbError::Invalid("snapshot has no root collection".into()));
        }
        if !snap.users.iter().any(|u| u.id == snap.admin) {
            return Err(SrbError::Invalid(
                "snapshot admin is not among its users".into(),
            ));
        }
        let ids = IdGen::new();
        ids.ensure_floor(snap.next_id_floor);
        let mcat = Mcat::from_parts(
            ids,
            clock,
            snap.admin,
            UserTable::restore(snap.users, snap.groups),
            ResourceTable::restore(snap.resources, snap.logical_resources),
            CollectionTable::restore(snap.collections),
            DatasetTable::restore(snap.datasets),
            ContainerTable::restore(snap.containers),
            MetaStore::restore(snap.metadata, snap.meta_files),
            AnnotationTable::restore(snap.annotations),
            AuditLog::restore(snap.audit),
        );
        if let Some(gens) = snap.generations {
            mcat.collections.restore_generation(gens.collections);
            mcat.datasets.restore_generation(gens.datasets);
            mcat.metadata.restore_generation(gens.metadata);
        }
        Ok(mcat)
    }

    /// Rebuild from a JSON snapshot string.
    pub fn restore_json(clock: SimClock, json: &str) -> SrbResult<Mcat> {
        let snap: CatalogSnapshot = serde_json::from_str(json)
            .map_err(|e| SrbError::Parse(format!("snapshot JSON: {e}")))?;
        Mcat::restore(clock, snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::AccessSpec;
    use crate::metadata::MetaKind;
    use crate::query::Query;
    use srb_types::{CompareOp, LogicalPath, ResourceId, Triplet};

    fn seeded() -> Mcat {
        let m = Mcat::new(SimClock::new(), "pw");
        let root = m.collections.root();
        let admin = m.admin();
        let now = m.clock.now();
        let zoo = m
            .collections
            .create(&m.ids, root, "zoo", admin, now)
            .unwrap();
        let ds = m
            .datasets
            .create(
                &m.ids,
                zoo,
                "condor.jpg",
                "jpeg image",
                admin,
                vec![(
                    AccessSpec::Stored {
                        resource: ResourceId(1),
                        phys_path: "/p/1".into(),
                    },
                    1000,
                    Some("abc".into()),
                )],
                now,
            )
            .unwrap();
        m.metadata.add(
            &m.ids,
            Subject::Dataset(ds),
            Triplet::new("wingspan", 290, "cm"),
            MetaKind::UserDefined,
        );
        m.annotations.add(
            &m.ids,
            Subject::Dataset(ds),
            admin,
            now,
            crate::annotation::AnnotationKind::Comment,
            "",
            "nice bird",
        );
        m.users
            .register(&m.ids, "sekar", "sdsc", "pw2", false)
            .unwrap();
        let g = m.users.create_group(&m.ids, "curators").unwrap();
        m.users
            .add_to_group(m.users.find("sekar", "sdsc").unwrap().id, g)
            .unwrap();
        m
    }

    #[test]
    fn snapshot_round_trip_preserves_everything() {
        let m = seeded();
        let json = m.snapshot_json().unwrap();
        let clock = SimClock::new();
        let r = Mcat::restore_json(clock, &json).unwrap();
        // Counts match.
        assert_eq!(r.summary(), m.summary());
        // Path resolution and indexes were rebuilt.
        let path = LogicalPath::parse("/zoo/condor.jpg").unwrap();
        let ds = r.resolve_dataset(&path).unwrap();
        assert_eq!(r.dataset_path(ds).unwrap(), path);
        let q = Query::everywhere().and("wingspan", CompareOp::Gt, 100i64);
        assert_eq!(r.query(&q).unwrap().len(), 1);
        assert_eq!(r.query(&q).unwrap(), r.query_scan(&q).unwrap());
        // Users, groups and verifiers survived (sekar can authenticate).
        let sekar = r.users.find("sekar", "sdsc").unwrap();
        assert_eq!(
            sekar.verifier,
            crate::user::derive_verifier("pw2"),
            "password verifier preserved"
        );
        assert_eq!(r.users.groups_of(sekar.id).len(), 1);
        // Annotations and audit survived.
        assert_eq!(r.annotations.for_subject(Subject::Dataset(ds)).len(), 1);
        assert_eq!(r.audit.count(), m.audit.count());
    }

    #[test]
    fn generation_stamps_survive_restore() {
        let m = seeded();
        let before = m.snapshot().generations.unwrap();
        assert!(before.collections > 0 && before.datasets > 0 && before.metadata > 0);
        let r = Mcat::restore_json(SimClock::new(), &m.snapshot_json().unwrap()).unwrap();
        assert_eq!(r.snapshot().generations.unwrap(), before);
        // A pre-WAL snapshot without stamps still restores.
        let mut snap = m.snapshot();
        snap.generations = None;
        assert!(Mcat::restore(SimClock::new(), snap).is_ok());
    }

    #[test]
    fn restored_catalog_keeps_allocating_fresh_ids() {
        let m = seeded();
        let floor = m.ids.allocated();
        let r = Mcat::restore_json(SimClock::new(), &m.snapshot_json().unwrap()).unwrap();
        let root = r.collections.root();
        let new_coll = r
            .collections
            .create(&r.ids, root, "fresh", r.admin(), r.clock.now())
            .unwrap();
        assert!(new_coll.raw() > floor, "ids must not collide after restore");
    }

    #[test]
    fn bad_snapshots_rejected() {
        assert!(Mcat::restore_json(SimClock::new(), "not json").is_err());
        let m = seeded();
        let mut snap = m.snapshot();
        snap.version = 99;
        assert!(Mcat::restore(SimClock::new(), snap).is_err());
        let mut snap = m.snapshot();
        snap.collections.clear();
        assert!(Mcat::restore(SimClock::new(), snap).is_err());
        let mut snap = m.snapshot();
        snap.users.clear();
        assert!(Mcat::restore(SimClock::new(), snap).is_err());
    }

    #[test]
    fn mutations_after_restore_do_not_corrupt_indexes() {
        let m = seeded();
        let r = Mcat::restore_json(SimClock::new(), &m.snapshot_json().unwrap()).unwrap();
        let path = LogicalPath::parse("/zoo/condor.jpg").unwrap();
        let ds = r.resolve_dataset(&path).unwrap();
        // Move the dataset and delete its metadata — the rebuilt indexes
        // must behave exactly like the originals.
        let root = r.collections.root();
        r.datasets.move_dataset(ds, root, "renamed.jpg").unwrap();
        assert!(r.resolve_dataset(&path).is_err());
        let new_path = LogicalPath::parse("/renamed.jpg").unwrap();
        assert_eq!(r.resolve_dataset(&new_path).unwrap(), ds);
        r.metadata.remove_all(Subject::Dataset(ds));
        let q = Query::everywhere().and("wingspan", CompareOp::Gt, 100i64);
        assert!(r.query(&q).unwrap().is_empty());
    }
}

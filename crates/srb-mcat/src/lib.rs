#![warn(missing_docs)]
//! MCAT — the Metadata Catalog.
//!
//! "The SRB, in conjunction with the Metadata Catalog, supports location
//! transparency by accessing data sets and resources based on their
//! attributes rather than their names or physical locations."
//!
//! This crate is the catalog: a concurrent, in-memory relational store of
//! every entity the data grid knows about — users and groups, physical and
//! logical storage resources, the collection hierarchy, datasets and their
//! replicas, containers, metadata triplets (system, user-defined,
//! type-oriented, file-based), annotations, and the audit trail — plus the
//! conjunctive attribute-query engine MySRB's query builder targets.
//!
//! MCAT stores facts and enforces *catalog-local* invariants (name
//! uniqueness, structural-metadata requirements, lock compatibility). All
//! distributed policy — replica selection, failover, permission checks on
//! data access — lives in `srb-core`, which reads the facts recorded here.

pub mod annotation;
pub mod audit;
pub mod catalog;
pub mod collection;
pub mod container;
pub mod dataset;
pub mod metadata;
pub mod query;
pub mod resource;
pub mod snapshot;
pub mod user;
pub mod wal;

pub use annotation::{Annotation, AnnotationKind};
pub use audit::{AuditAction, AuditRow};
pub use catalog::{Mcat, ZONE_HOME_ATTR, ZONE_PATH_ATTR, ZONE_URL_SCHEME};
pub use collection::{AttrRequirement, Collection};
pub use container::ContainerRecord;
pub use dataset::{
    AccessSpec, CheckoutState, Dataset, LockKind, LockState, NewDataset, Replica, ReplicaStatus,
    Template, VersionRecord,
};
pub use metadata::{MetaKind, MetaRow, Subject};
pub use query::{Query, QueryCondition, QueryHit};
pub use resource::{LogicalResource, Resource};
pub use snapshot::{CatalogSnapshot, SnapshotGenerations};
pub use user::{Group, User};
pub use wal::{export_deltas, Delta, DeltaFetch, RecoveryReport, Wal, WalConfig, WalOp, WalRecord};

//! The audit trail.
//!
//! Paper §2: "in some cases, it may be necessary to audit usage of the
//! collections/datasets. Hence, auditing facilities will be needed as part
//! of the framework." Every brokered operation can record an audit row;
//! auditing can be toggled per catalog.

use crate::wal::{WalHook, WalOp};
use serde::{Deserialize, Serialize};
use srb_types::sync::{LockRank, Mutex};
use srb_types::{AuditId, IdGen, Timestamp, UserId};
use std::sync::atomic::{AtomicBool, Ordering};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditAction {
    /// Session establishment.
    Connect,
    /// Failed authentication attempt.
    AuthFail,
    /// New data ingested.
    Ingest,
    /// Object registered (file/dir/SQL/URL/method).
    Register,
    /// Data read.
    Read,
    /// Data written/updated.
    Write,
    /// Object or replica deleted.
    Delete,
    /// Replica created.
    Replicate,
    /// Object copied.
    Copy,
    /// Object or collection moved.
    Move,
    /// Link created.
    Link,
    /// Metadata added or updated.
    MetaChange,
    /// Query executed.
    Query,
    /// ACL changed.
    AclChange,
    /// Lock/unlock/pin/unpin/checkout/checkin.
    LockOp,
    /// Proxy command executed.
    Proxy,
}

impl AuditAction {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AuditAction::Connect => "connect",
            AuditAction::AuthFail => "auth-fail",
            AuditAction::Ingest => "ingest",
            AuditAction::Register => "register",
            AuditAction::Read => "read",
            AuditAction::Write => "write",
            AuditAction::Delete => "delete",
            AuditAction::Replicate => "replicate",
            AuditAction::Copy => "copy",
            AuditAction::Move => "move",
            AuditAction::Link => "link",
            AuditAction::MetaChange => "meta-change",
            AuditAction::Query => "query",
            AuditAction::AclChange => "acl-change",
            AuditAction::LockOp => "lock-op",
            AuditAction::Proxy => "proxy",
        }
    }
}

/// One audit row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditRow {
    /// Catalog id.
    pub id: AuditId,
    /// When (virtual time).
    pub at: Timestamp,
    /// Acting user.
    pub user: UserId,
    /// What they did.
    pub action: AuditAction,
    /// What they did it to (logical path or entity id).
    pub subject: String,
    /// `ok` or an error code.
    pub outcome: String,
}

/// Append-only audit log.
#[derive(Debug)]
pub struct AuditLog {
    enabled: AtomicBool,
    rows: Mutex<Vec<AuditRow>>,
    /// Redo-log hook; a no-op until the catalog enables durability.
    wal: WalHook,
}

impl Default for AuditLog {
    fn default() -> Self {
        AuditLog {
            enabled: AtomicBool::default(),
            rows: Mutex::new(LockRank::McatTable, "mcat.audit", Vec::new()),
            wal: WalHook::default(),
        }
    }
}

impl AuditLog {
    /// New log; auditing starts enabled.
    pub fn new() -> Self {
        let log = AuditLog::default();
        log.enabled.store(true, Ordering::Relaxed);
        log
    }

    /// Toggle auditing.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is auditing currently on?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record a row (no-op while disabled).
    pub fn record(
        &self,
        ids: &IdGen,
        at: Timestamp,
        user: UserId,
        action: AuditAction,
        subject: &str,
        outcome: &str,
    ) {
        if !self.is_enabled() {
            return;
        }
        let id: AuditId = ids.next();
        let row = AuditRow {
            id,
            at,
            user,
            action,
            subject: subject.to_string(),
            outcome: outcome.to_string(),
        };
        let mut g = self.rows.lock();
        self.wal.log(0, || WalOp::AuditPut { row: row.clone() });
        g.push(row);
        drop(g);
        self.wal.commit();
    }

    /// The most recent `n` rows, newest last.
    pub fn recent(&self, n: usize) -> Vec<AuditRow> {
        let g = self.rows.lock();
        let start = g.len().saturating_sub(n);
        g[start..].to_vec()
    }

    /// All rows for one user.
    pub fn for_user(&self, user: UserId) -> Vec<AuditRow> {
        self.rows
            .lock()
            .iter()
            .filter(|r| r.user == user)
            .cloned()
            .collect()
    }

    /// All rows touching a subject (exact match).
    pub fn for_subject(&self, subject: &str) -> Vec<AuditRow> {
        self.rows
            .lock()
            .iter()
            .filter(|r| r.subject == subject)
            .cloned()
            .collect()
    }

    /// Every audit row (snapshots).
    pub fn dump(&self) -> Vec<AuditRow> {
        self.rows.lock().clone()
    }

    /// Rebuild the log from snapshot rows.
    pub fn restore(rows: Vec<AuditRow>) -> Self {
        let log = AuditLog::new();
        *log.rows.lock() = rows;
        log
    }

    /// Row count.
    pub fn count(&self) -> usize {
        self.rows.lock().len()
    }

    /// Wire this table to the catalog's WAL.
    pub(crate) fn attach_wal(&self, wal: std::sync::Arc<crate::wal::Wal>) {
        self.wal.attach(wal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_when_enabled() {
        let log = AuditLog::new();
        let ids = IdGen::new();
        log.record(
            &ids,
            Timestamp(1),
            UserId(1),
            AuditAction::Ingest,
            "/a/b",
            "ok",
        );
        assert_eq!(log.count(), 1);
        let rows = log.recent(10);
        assert_eq!(rows[0].subject, "/a/b");
        assert_eq!(rows[0].action.name(), "ingest");
    }

    #[test]
    fn silent_when_disabled() {
        let log = AuditLog::new();
        let ids = IdGen::new();
        log.set_enabled(false);
        assert!(!log.is_enabled());
        log.record(&ids, Timestamp(1), UserId(1), AuditAction::Read, "/x", "ok");
        assert_eq!(log.count(), 0);
        log.set_enabled(true);
        log.record(&ids, Timestamp(2), UserId(1), AuditAction::Read, "/x", "ok");
        assert_eq!(log.count(), 1);
    }

    #[test]
    fn filters_by_user_and_subject() {
        let log = AuditLog::new();
        let ids = IdGen::new();
        log.record(&ids, Timestamp(1), UserId(1), AuditAction::Read, "/a", "ok");
        log.record(&ids, Timestamp(2), UserId(2), AuditAction::Read, "/a", "ok");
        log.record(
            &ids,
            Timestamp(3),
            UserId(1),
            AuditAction::Write,
            "/b",
            "PERMISSION_DENIED",
        );
        assert_eq!(log.for_user(UserId(1)).len(), 2);
        assert_eq!(log.for_subject("/a").len(), 2);
        assert_eq!(log.for_subject("/b")[0].outcome, "PERMISSION_DENIED");
    }

    #[test]
    fn recent_returns_tail() {
        let log = AuditLog::new();
        let ids = IdGen::new();
        for i in 0..10 {
            log.record(
                &ids,
                Timestamp(i),
                UserId(1),
                AuditAction::Read,
                &format!("/f{i}"),
                "ok",
            );
        }
        let tail = log.recent(3);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[2].subject, "/f9");
        assert_eq!(log.recent(100).len(), 10);
    }
}

//! Container records (catalog side).
//!
//! Containers "co-locate data together … One can view containers as
//! tar-files but with more flexibility in accessing and updating files"
//! and exist "for aggregating small data files into physical blocks …
//! for storage into archives, and for decreasing latency when accessed
//! over a wide area network."
//!
//! The catalog records a container's identity, its logical-resource
//! placement, its member slices, and whether the cached copy has been
//! synchronized to the archive. Byte movement is `srb-core`'s job.

use crate::wal::{WalHook, WalOp};
use serde::{Deserialize, Serialize};
use srb_types::sync::{LockRank, RwLock};
use srb_types::{ContainerId, DatasetId, IdGen, LogicalResourceId, SrbError, SrbResult, Timestamp};
use std::collections::HashMap;

/// One member slice of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberSlice {
    /// The dataset whose bytes live in this slice.
    pub dataset: DatasetId,
    /// Byte offset within the container.
    pub offset: u64,
    /// Slice length.
    pub len: u64,
}

/// Catalog record of a container.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContainerRecord {
    /// Catalog id.
    pub id: ContainerId,
    /// Unique container name.
    pub name: String,
    /// The logical resource governing placement (cache + archive copies).
    pub logical_resource: LogicalResourceId,
    /// Member slices, in append order.
    pub members: Vec<MemberSlice>,
    /// Current fill in bytes.
    pub size: u64,
    /// Capacity: appends beyond this are rejected and a new container
    /// should be opened.
    pub max_size: u64,
    /// Has the cached copy been written back to the archive members since
    /// the last append?
    pub synced: bool,
    /// Creation time.
    pub created: Timestamp,
}

/// Container table.
#[derive(Debug)]
pub struct ContainerTable {
    inner: RwLock<Inner>,
    /// Redo-log hook; a no-op until the catalog enables durability.
    wal: WalHook,
}

impl Default for ContainerTable {
    fn default() -> Self {
        ContainerTable {
            inner: RwLock::new(LockRank::McatTable, "mcat.containers", Inner::default()),
            wal: WalHook::default(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    rows: HashMap<ContainerId, ContainerRecord>,
    by_name: HashMap<String, ContainerId>,
}

impl ContainerTable {
    /// Empty table.
    pub fn new() -> Self {
        ContainerTable::default()
    }

    /// Create a container.
    pub fn create(
        &self,
        ids: &IdGen,
        name: &str,
        logical_resource: LogicalResourceId,
        max_size: u64,
        now: Timestamp,
    ) -> SrbResult<ContainerId> {
        let mut g = self.inner.write();
        if g.by_name.contains_key(name) {
            return Err(SrbError::AlreadyExists(format!("container '{name}'")));
        }
        let id: ContainerId = ids.next();
        let row = ContainerRecord {
            id,
            name: name.to_string(),
            logical_resource,
            members: Vec::new(),
            size: 0,
            max_size,
            synced: true,
            created: now,
        };
        self.wal.log(0, || WalOp::ContainerPut { row: row.clone() });
        g.rows.insert(id, row);
        g.by_name.insert(name.to_string(), id);
        drop(g);
        self.wal.commit();
        Ok(id)
    }

    /// Get a record.
    pub fn get(&self, id: ContainerId) -> SrbResult<ContainerRecord> {
        self.inner
            .read()
            .rows
            .get(&id)
            .cloned()
            .ok_or_else(|| SrbError::NotFound(format!("container {id}")))
    }

    /// Find by name.
    pub fn find(&self, name: &str) -> Option<ContainerRecord> {
        let g = self.inner.read();
        g.by_name.get(name).and_then(|id| g.rows.get(id)).cloned()
    }

    /// Reserve a slice for `dataset` of `len` bytes; returns its offset.
    /// Marks the container out-of-sync with its archive copy.
    pub fn append_member(&self, id: ContainerId, dataset: DatasetId, len: u64) -> SrbResult<u64> {
        let mut g = self.inner.write();
        let c = g
            .rows
            .get_mut(&id)
            .ok_or_else(|| SrbError::NotFound(format!("container {id}")))?;
        if c.size + len > c.max_size {
            return Err(SrbError::ResourceUnavailable(format!(
                "container '{}' full ({} + {} > {})",
                c.name, c.size, len, c.max_size
            )));
        }
        let offset = c.size;
        c.members.push(MemberSlice {
            dataset,
            offset,
            len,
        });
        c.size += len;
        c.synced = false;
        let row = &*c;
        self.wal.log(0, || WalOp::ContainerPut { row: row.clone() });
        drop(g);
        self.wal.commit();
        Ok(offset)
    }

    /// Mark the archive copy as synchronized.
    pub fn mark_synced(&self, id: ContainerId) -> SrbResult<()> {
        let mut g = self.inner.write();
        match g.rows.get_mut(&id) {
            Some(c) => {
                c.synced = true;
                let row = &*c;
                self.wal.log(0, || WalOp::ContainerPut { row: row.clone() });
                drop(g);
                self.wal.commit();
                Ok(())
            }
            None => Err(SrbError::NotFound(format!("container {id}"))),
        }
    }

    /// Remove a member's slice record (the hole is not reclaimed — like a
    /// tar file, space is recovered only by rewriting the container).
    pub fn remove_member(&self, id: ContainerId, dataset: DatasetId) -> SrbResult<()> {
        let mut g = self.inner.write();
        let c = g
            .rows
            .get_mut(&id)
            .ok_or_else(|| SrbError::NotFound(format!("container {id}")))?;
        let before = c.members.len();
        c.members.retain(|m| m.dataset != dataset);
        if c.members.len() == before {
            return Err(SrbError::NotFound(format!(
                "dataset {dataset} not in container {id}"
            )));
        }
        let row = &*c;
        self.wal.log(0, || WalOp::ContainerPut { row: row.clone() });
        drop(g);
        self.wal.commit();
        Ok(())
    }

    /// Replace the member table and size wholesale — used by container
    /// compaction after the physical image has been rewritten.
    pub fn rewrite_members(
        &self,
        id: ContainerId,
        members: Vec<(DatasetId, u64, u64)>,
        new_size: u64,
    ) -> SrbResult<()> {
        let mut g = self.inner.write();
        let c = g
            .rows
            .get_mut(&id)
            .ok_or_else(|| SrbError::NotFound(format!("container {id}")))?;
        c.members = members
            .into_iter()
            .map(|(dataset, offset, len)| MemberSlice {
                dataset,
                offset,
                len,
            })
            .collect();
        c.size = new_size;
        c.synced = false;
        let row = &*c;
        self.wal.log(0, || WalOp::ContainerPut { row: row.clone() });
        drop(g);
        self.wal.commit();
        Ok(())
    }

    /// Delete an empty container record.
    pub fn delete(&self, id: ContainerId) -> SrbResult<()> {
        let mut g = self.inner.write();
        let c = g
            .rows
            .get(&id)
            .ok_or_else(|| SrbError::NotFound(format!("container {id}")))?;
        if !c.members.is_empty() {
            return Err(SrbError::Invalid(format!(
                "container '{}' still has {} members",
                c.name,
                c.members.len()
            )));
        }
        let c = g
            .rows
            .remove(&id)
            .ok_or_else(|| SrbError::NotFound(format!("container {id}")))?;
        g.by_name.remove(&c.name);
        self.wal.log(0, || WalOp::ContainerDelete { id });
        drop(g);
        self.wal.commit();
        Ok(())
    }

    /// Rebuild the table from snapshot rows.
    pub fn restore(rows: Vec<ContainerRecord>) -> Self {
        let t = ContainerTable::new();
        {
            let mut g = t.inner.write();
            for c in rows {
                g.by_name.insert(c.name.clone(), c.id);
                g.rows.insert(c.id, c);
            }
        }
        t
    }

    /// All containers, sorted by id.
    pub fn list(&self) -> Vec<ContainerRecord> {
        let mut v: Vec<ContainerRecord> = self.inner.read().rows.values().cloned().collect();
        v.sort_by_key(|c| c.id);
        v
    }

    /// Wire this table to the catalog's WAL.
    pub(crate) fn attach_wal(&self, wal: std::sync::Arc<crate::wal::Wal>) {
        self.wal.attach(wal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (ContainerTable, IdGen) {
        (ContainerTable::new(), IdGen::new())
    }

    #[test]
    fn create_and_append() {
        let (t, ids) = table();
        let c = t
            .create(&ids, "ct1", LogicalResourceId(1), 100, Timestamp(0))
            .unwrap();
        let o1 = t.append_member(c, DatasetId(1), 30).unwrap();
        let o2 = t.append_member(c, DatasetId(2), 50).unwrap();
        assert_eq!(o1, 0);
        assert_eq!(o2, 30);
        let rec = t.get(c).unwrap();
        assert_eq!(rec.size, 80);
        assert_eq!(rec.members.len(), 2);
        assert!(!rec.synced);
    }

    #[test]
    fn full_container_rejects_append() {
        let (t, ids) = table();
        let c = t
            .create(&ids, "ct1", LogicalResourceId(1), 100, Timestamp(0))
            .unwrap();
        t.append_member(c, DatasetId(1), 90).unwrap();
        assert!(t.append_member(c, DatasetId(2), 20).is_err());
        // Exactly filling is allowed.
        assert!(t.append_member(c, DatasetId(3), 10).is_ok());
    }

    #[test]
    fn sync_state_tracks_appends() {
        let (t, ids) = table();
        let c = t
            .create(&ids, "ct1", LogicalResourceId(1), 100, Timestamp(0))
            .unwrap();
        assert!(t.get(c).unwrap().synced);
        t.append_member(c, DatasetId(1), 10).unwrap();
        assert!(!t.get(c).unwrap().synced);
        t.mark_synced(c).unwrap();
        assert!(t.get(c).unwrap().synced);
    }

    #[test]
    fn names_unique_and_findable() {
        let (t, ids) = table();
        t.create(&ids, "ct1", LogicalResourceId(1), 10, Timestamp(0))
            .unwrap();
        assert!(t
            .create(&ids, "ct1", LogicalResourceId(1), 10, Timestamp(0))
            .is_err());
        assert!(t.find("ct1").is_some());
        assert!(t.find("ct2").is_none());
    }

    #[test]
    fn holes_are_not_reclaimed() {
        let (t, ids) = table();
        let c = t
            .create(&ids, "ct1", LogicalResourceId(1), 100, Timestamp(0))
            .unwrap();
        t.append_member(c, DatasetId(1), 40).unwrap();
        t.remove_member(c, DatasetId(1)).unwrap();
        assert!(t.remove_member(c, DatasetId(1)).is_err());
        // Size stays at 40: like a tar file, the hole remains.
        let rec = t.get(c).unwrap();
        assert_eq!(rec.size, 40);
        assert!(rec.members.is_empty());
        let o = t.append_member(c, DatasetId(2), 10).unwrap();
        assert_eq!(o, 40);
    }

    #[test]
    fn delete_requires_empty() {
        let (t, ids) = table();
        let c = t
            .create(&ids, "ct1", LogicalResourceId(1), 100, Timestamp(0))
            .unwrap();
        t.append_member(c, DatasetId(1), 10).unwrap();
        assert!(t.delete(c).is_err());
        t.remove_member(c, DatasetId(1)).unwrap();
        t.delete(c).unwrap();
        assert!(t.get(c).is_err());
        assert!(t.list().is_empty());
    }
}

//! The collection hierarchy.
//!
//! Collections are the nodes of the logical name space: "hierarchies of
//! collections" with per-collection ACLs, descriptive metadata, and
//! *structural metadata* — attribute requirements the curator imposes on
//! everything ingested into the collection (paper §5: defaults, restricted
//! vocabularies shown as drop-down lists, and mandatory attributes).

use crate::wal::{WalHook, WalOp};
use serde::{Deserialize, Serialize};
use srb_types::sync::{LockRank, RwLock, RwLockReadGuard};
use srb_types::{
    AccessMatrix, CollectionId, GenCounter, Generation, IdGen, LogicalPath, SrbError, SrbResult,
    Timestamp, UserId,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;
use std::sync::Arc;

/// A structural-metadata requirement on a collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrRequirement {
    /// Attribute name the ingestor must (or may) provide.
    pub name: String,
    /// Allowed values: empty = free-form; one entry = default value;
    /// several = restricted vocabulary shown as a drop-down.
    pub allowed: Vec<String>,
    /// Curator's explanation shown in the ingest form.
    pub comment: String,
    /// Must the ingestor provide a value?
    pub mandatory: bool,
}

impl AttrRequirement {
    /// A mandatory free-form attribute.
    pub fn mandatory(name: &str, comment: &str) -> Self {
        AttrRequirement {
            name: name.to_string(),
            allowed: Vec::new(),
            comment: comment.to_string(),
            mandatory: true,
        }
    }

    /// An optional attribute with a restricted vocabulary.
    pub fn vocabulary(name: &str, allowed: &[&str], comment: &str) -> Self {
        AttrRequirement {
            name: name.to_string(),
            allowed: allowed.iter().map(|s| s.to_string()).collect(),
            comment: comment.to_string(),
            mandatory: false,
        }
    }

    /// The default value offered in the form, if any.
    pub fn default_value(&self) -> Option<&str> {
        self.allowed.first().map(|s| s.as_str())
    }
}

/// One collection node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Collection {
    /// Catalog id.
    pub id: CollectionId,
    /// Parent collection (`None` only for the root).
    pub parent: Option<CollectionId>,
    /// Full logical path.
    pub path: LogicalPath,
    /// Creating user.
    pub owner: UserId,
    /// Access matrix.
    pub acl: AccessMatrix,
    /// Structural metadata requirements for items added here.
    pub requirements: Vec<AttrRequirement>,
    /// When this collection links to another collection (paper: "one can
    /// also link a collection as a sub-collection of another collection"),
    /// the target; such a node has no children of its own.
    pub link_target: Option<CollectionId>,
    /// Creation time (virtual).
    pub created: Timestamp,
}

/// One cached subtree: the generation it was computed at plus the set itself.
type CachedScope = (Generation, Arc<HashSet<CollectionId>>);

/// The collection tree.
#[derive(Debug)]
pub struct CollectionTable {
    inner: RwLock<Inner>,
    /// Bumped by every structural mutation (create/link/move/delete); the
    /// subtree cache below stamps its entries with this counter.
    generation: GenCounter,
    /// Scope-root → cached subtree. Entries whose stamp trails
    /// [`Self::generation`] are recomputed on next use; queries sharing a
    /// scope between mutations share one `Arc`'d set.
    scope_cache: RwLock<HashMap<CollectionId, CachedScope>>,
    /// `query.scope_cache_hits` / `query.scope_cache_misses`, attached by
    /// the grid when observability is on.
    cache_obs: Option<(srb_obs::Counter, srb_obs::Counter)>,
    /// Redo-log hook; a no-op until the catalog enables durability.
    wal: WalHook,
}

impl Default for CollectionTable {
    fn default() -> Self {
        CollectionTable {
            inner: RwLock::new(LockRank::McatTable, "mcat.collections", Inner::default()),
            generation: GenCounter::new(),
            scope_cache: RwLock::new(
                LockRank::McatTable,
                "mcat.collections.scope_cache",
                HashMap::new(),
            ),
            cache_obs: None,
            wal: WalHook::default(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    nodes: HashMap<CollectionId, Collection>,
    by_path: HashMap<String, CollectionId>,
    /// Per-parent children keyed by child name — already in listing order,
    /// so `children`/`children_page` are bounded range reads, not sorts.
    children: HashMap<CollectionId, BTreeMap<String, CollectionId>>,
}

impl CollectionTable {
    /// New table containing only the root collection owned by `admin`.
    pub fn new(ids: &IdGen, admin: UserId, now: Timestamp) -> Self {
        let t = CollectionTable::default();
        let root_id: CollectionId = ids.next();
        let mut g = t.inner.write();
        let mut acl = AccessMatrix::owned_by(admin);
        acl.public = srb_types::Permission::Discover;
        g.nodes.insert(
            root_id,
            Collection {
                id: root_id,
                parent: None,
                path: LogicalPath::root(),
                owner: admin,
                acl,
                requirements: Vec::new(),
                link_target: None,
                created: now,
            },
        );
        g.by_path.insert("/".to_string(), root_id);
        g.children.insert(root_id, BTreeMap::new());
        drop(g);
        t
    }

    /// The root collection id.
    pub fn root(&self) -> CollectionId {
        match self.inner.read().by_path.get("/") {
            Some(id) => *id,
            // "/" is inserted at construction and delete() refuses the root.
            None => unreachable!("root exists for the table's lifetime"),
        }
    }

    /// Create a sub-collection under `parent`.
    pub fn create(
        &self,
        ids: &IdGen,
        parent: CollectionId,
        name: &str,
        owner: UserId,
        now: Timestamp,
    ) -> SrbResult<CollectionId> {
        let mut g = self.inner.write();
        let parent_node = g
            .nodes
            .get(&parent)
            .ok_or_else(|| SrbError::NotFound(format!("collection {parent}")))?;
        if parent_node.link_target.is_some() {
            return Err(SrbError::Unsupported(
                "cannot create children under a linked collection".into(),
            ));
        }
        let path = parent_node.path.child(name)?;
        let key = path.to_string();
        if g.by_path.contains_key(&key) {
            return Err(SrbError::AlreadyExists(format!("collection '{key}'")));
        }
        let id: CollectionId = ids.next();
        let row = Collection {
            id,
            parent: Some(parent),
            path,
            owner,
            acl: AccessMatrix::owned_by(owner),
            requirements: Vec::new(),
            link_target: None,
            created: now,
        };
        let gen = self.generation.bump_get().raw();
        self.wal
            .log(gen, || WalOp::CollectionPut { row: row.clone() });
        g.nodes.insert(id, row);
        g.by_path.insert(key, id);
        g.children
            .entry(parent)
            .or_default()
            .insert(name.to_string(), id);
        g.children.insert(id, BTreeMap::new());
        drop(g);
        self.wal.commit();
        Ok(id)
    }

    /// Link `target` as a sub-collection of `parent` under `name`.
    /// Chaining is collapsed: linking to a link links to its target.
    pub fn link(
        &self,
        ids: &IdGen,
        parent: CollectionId,
        name: &str,
        target: CollectionId,
        owner: UserId,
        now: Timestamp,
    ) -> SrbResult<CollectionId> {
        let mut g = self.inner.write();
        let resolved_target = {
            let t = g
                .nodes
                .get(&target)
                .ok_or_else(|| SrbError::NotFound(format!("collection {target}")))?;
            t.link_target.unwrap_or(target)
        };
        let parent_node = g
            .nodes
            .get(&parent)
            .ok_or_else(|| SrbError::NotFound(format!("collection {parent}")))?;
        let path = parent_node.path.child(name)?;
        let key = path.to_string();
        if g.by_path.contains_key(&key) {
            return Err(SrbError::AlreadyExists(format!("collection '{key}'")));
        }
        let id: CollectionId = ids.next();
        let row = Collection {
            id,
            parent: Some(parent),
            path,
            owner,
            acl: AccessMatrix::owned_by(owner),
            requirements: Vec::new(),
            link_target: Some(resolved_target),
            created: now,
        };
        let gen = self.generation.bump_get().raw();
        self.wal
            .log(gen, || WalOp::CollectionPut { row: row.clone() });
        g.nodes.insert(id, row);
        g.by_path.insert(key, id);
        g.children
            .entry(parent)
            .or_default()
            .insert(name.to_string(), id);
        drop(g);
        self.wal.commit();
        Ok(id)
    }

    /// Get a collection by id.
    pub fn get(&self, id: CollectionId) -> SrbResult<Collection> {
        self.inner
            .read()
            .nodes
            .get(&id)
            .cloned()
            .ok_or_else(|| SrbError::NotFound(format!("collection {id}")))
    }

    /// Resolve a path to a collection id, following collection links.
    pub fn resolve(&self, path: &LogicalPath) -> SrbResult<CollectionId> {
        let g = self.inner.read();
        let id = g
            .by_path
            .get(&path.to_string())
            .copied()
            .ok_or_else(|| SrbError::NotFound(format!("collection '{path}'")))?;
        Ok(g.nodes[&id].link_target.unwrap_or(id))
    }

    /// Resolve without following a final link (to operate on the link
    /// object itself, e.g. unlink).
    pub fn resolve_nofollow(&self, path: &LogicalPath) -> SrbResult<CollectionId> {
        self.inner
            .read()
            .by_path
            .get(&path.to_string())
            .copied()
            .ok_or_else(|| SrbError::NotFound(format!("collection '{path}'")))
    }

    /// Direct children, sorted by name (the child index's native order).
    pub fn children(&self, id: CollectionId) -> Vec<Collection> {
        let g = self.inner.read();
        g.children
            .get(&id)
            .map(|c| c.values().filter_map(|i| g.nodes.get(i)).cloned().collect())
            .unwrap_or_default()
    }

    /// One page of direct children in name order, resuming strictly after
    /// `after`. Returns up to `limit` rows plus whether more remain —
    /// O(page) however deep the cursor is.
    pub fn children_page(
        &self,
        id: CollectionId,
        after: Option<&str>,
        limit: usize,
    ) -> (Vec<Collection>, bool) {
        let g = self.inner.read();
        let Some(kids) = g.children.get(&id) else {
            return (Vec::new(), false);
        };
        let start = match after {
            Some(name) => Bound::Excluded(name.to_string()),
            None => Bound::Unbounded,
        };
        let mut iter = kids
            .range((start, Bound::Unbounded))
            .filter_map(|(_, i)| g.nodes.get(i));
        let mut page = Vec::with_capacity(limit.min(1024));
        for c in iter.by_ref() {
            if page.len() == limit {
                return (page, true);
            }
            page.push(c.clone());
        }
        (page, false)
    }

    /// All descendant collection ids (not including `id`), link nodes not
    /// followed.
    pub fn descendants(&self, id: CollectionId) -> Vec<CollectionId> {
        let g = self.inner.read();
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if let Some(kids) = g.children.get(&cur) {
                for &k in kids.values() {
                    out.push(k);
                    stack.push(k);
                }
            }
        }
        out
    }

    /// The subtree rooted at `root` as a set: `root`, every descendant,
    /// plus (one level of) collection-link targets inside that set and
    /// *their* descendants — the scope the query engine searches.
    ///
    /// Results are cached per root and stamped with the table's mutation
    /// generation; any create/link/move/delete invalidates every entry.
    /// The stamp is read **before** the set is computed, so a mutation that
    /// races the computation leaves the inserted entry already stale rather
    /// than fresh-but-wrong.
    pub fn subtree_set(&self, root: CollectionId) -> Arc<HashSet<CollectionId>> {
        let gen_before = self.generation.current();
        if let Some((stamp, set)) = self.scope_cache.read().get(&root) {
            if *stamp == gen_before {
                if let Some((hits, _)) = &self.cache_obs {
                    hits.inc();
                }
                return Arc::clone(set);
            }
        }
        if let Some((_, misses)) = &self.cache_obs {
            misses.inc();
        }
        let set = Arc::new(self.compute_subtree(root));
        self.scope_cache
            .write()
            .insert(root, (gen_before, Arc::clone(&set)));
        set
    }

    /// Attach the scope-cache hit/miss counters (called once by the grid
    /// at construction when observability is enabled).
    pub fn attach_metrics(&mut self, metrics: &srb_obs::MetricsRegistry) {
        self.cache_obs = Some((
            metrics.counter("query.scope_cache_hits", ""),
            metrics.counter("query.scope_cache_misses", ""),
        ));
    }

    fn compute_subtree(&self, root: CollectionId) -> HashSet<CollectionId> {
        let g = self.inner.read();
        let mut set = HashSet::new();
        set.insert(root);
        let mut stack = vec![root];
        while let Some(cur) = stack.pop() {
            if let Some(kids) = g.children.get(&cur) {
                for &k in kids.values() {
                    if set.insert(k) {
                        stack.push(k);
                    }
                }
            }
        }
        // Follow collection links inside the scope so linked
        // sub-collections are searched through their targets too.
        let linked: Vec<CollectionId> = set
            .iter()
            .filter_map(|c| g.nodes.get(c).and_then(|n| n.link_target))
            .collect();
        for t in linked {
            if set.insert(t) {
                let mut stack = vec![t];
                while let Some(cur) = stack.pop() {
                    if let Some(kids) = g.children.get(&cur) {
                        for &k in kids.values() {
                            if set.insert(k) {
                                stack.push(k);
                            }
                        }
                    }
                }
            }
        }
        set
    }

    /// Current mutation generation (cache diagnostics and tests).
    pub fn generation(&self) -> Generation {
        self.generation.current()
    }

    /// Raise the mutation counter to at least `raw` (snapshot restore /
    /// WAL recovery — recovered cursors must see the stamps they embed).
    pub fn restore_generation(&self, raw: u64) {
        self.generation.ensure_at_least(raw);
    }

    /// Wire this table to the catalog's WAL.
    pub(crate) fn attach_wal(&self, wal: Arc<crate::wal::Wal>) {
        self.wal.attach(wal);
    }

    /// A read guard over the tree for batch path materialization: one lock
    /// acquisition serves any number of [`CollPathBatch::path_of`] lookups,
    /// and the returned paths are borrowed, not cloned.
    pub fn path_batch(&self) -> CollPathBatch<'_> {
        CollPathBatch {
            g: self.inner.read(),
        }
    }

    /// Update the ACL.
    pub fn set_acl(&self, id: CollectionId, acl: AccessMatrix) -> SrbResult<()> {
        let mut g = self.inner.write();
        match g.nodes.get_mut(&id) {
            Some(c) => {
                c.acl = acl;
                // No generation bump: ACL changes don't reshape the tree,
                // so outstanding cursors stay valid (gen 0 on the record).
                let row = &*c;
                self.wal
                    .log(0, || WalOp::CollectionPut { row: row.clone() });
                drop(g);
                self.wal.commit();
                Ok(())
            }
            None => Err(SrbError::NotFound(format!("collection {id}"))),
        }
    }

    /// Replace the structural metadata requirements.
    pub fn set_requirements(&self, id: CollectionId, reqs: Vec<AttrRequirement>) -> SrbResult<()> {
        let mut g = self.inner.write();
        match g.nodes.get_mut(&id) {
            Some(c) => {
                c.requirements = reqs;
                let row = &*c;
                self.wal
                    .log(0, || WalOp::CollectionPut { row: row.clone() });
                drop(g);
                self.wal.commit();
                Ok(())
            }
            None => Err(SrbError::NotFound(format!("collection {id}"))),
        }
    }

    /// Move (or rename) a collection subtree under a new parent. All
    /// descendant paths are rebased; dataset paths are derived from their
    /// collection, so they follow automatically.
    pub fn move_collection(
        &self,
        id: CollectionId,
        new_parent: CollectionId,
        new_name: &str,
    ) -> SrbResult<()> {
        let mut g = self.inner.write();
        if id == self.root_locked(&g) {
            return Err(SrbError::Unsupported("cannot move the root".into()));
        }
        let old_path = g
            .nodes
            .get(&id)
            .ok_or_else(|| SrbError::NotFound(format!("collection {id}")))?
            .path
            .clone();
        let parent_path = g
            .nodes
            .get(&new_parent)
            .ok_or_else(|| SrbError::NotFound(format!("collection {new_parent}")))?
            .path
            .clone();
        if parent_path.starts_with(&old_path) {
            return Err(SrbError::Invalid(
                "cannot move a collection into its own subtree".into(),
            ));
        }
        let new_path = parent_path.child(new_name)?;
        if g.by_path.contains_key(&new_path.to_string()) {
            return Err(SrbError::AlreadyExists(format!("collection '{new_path}'")));
        }
        // Unhook from the old parent. The root cannot reach here (its path
        // prefixes every other, tripping the own-subtree check above), so
        // the defensive error is unreachable in practice.
        let Some(old_parent) = g.nodes.get(&id).and_then(|n| n.parent) else {
            return Err(SrbError::Invalid("cannot move the root collection".into()));
        };
        if let Some(kids) = g.children.get_mut(&old_parent) {
            if let Some(old_name) = old_path.name() {
                kids.remove(old_name);
            }
        }
        g.children
            .entry(new_parent)
            .or_default()
            .insert(new_name.to_string(), id);
        // Rebase this node and every descendant.
        let mut affected = vec![id];
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if let Some(kids) = g.children.get(&cur) {
                for &k in kids.values() {
                    affected.push(k);
                    stack.push(k);
                }
            }
        }
        for cid in &affected {
            let node_path = g.nodes[cid].path.clone();
            let rebased = node_path.rebase(&old_path, &new_path)?;
            g.by_path.remove(&node_path.to_string());
            g.by_path.insert(rebased.to_string(), *cid);
            if let Some(node) = g.nodes.get_mut(cid) {
                node.path = rebased;
            }
        }
        if let Some(node) = g.nodes.get_mut(&id) {
            node.parent = Some(new_parent);
        }
        // One bump covers the whole rebase; every touched row is logged
        // with the same post-move stamp.
        let gen = self.generation.bump_get().raw();
        for cid in &affected {
            if let Some(node) = g.nodes.get(cid) {
                self.wal
                    .log(gen, || WalOp::CollectionPut { row: node.clone() });
            }
        }
        drop(g);
        self.wal.commit();
        Ok(())
    }

    fn root_locked(&self, g: &Inner) -> CollectionId {
        match g.by_path.get("/") {
            Some(id) => *id,
            // See root(): "/" is present for the table's lifetime.
            None => unreachable!("root exists for the table's lifetime"),
        }
    }

    /// Delete a collection. It must have no child collections (the catalog
    /// facade checks for datasets).
    pub fn delete(&self, id: CollectionId) -> SrbResult<()> {
        let mut g = self.inner.write();
        if id == self.root_locked(&g) {
            return Err(SrbError::Unsupported("cannot delete the root".into()));
        }
        if !g.children.get(&id).map(|c| c.is_empty()).unwrap_or(true) {
            return Err(SrbError::Invalid(format!(
                "collection {id} has sub-collections"
            )));
        }
        let node = g
            .nodes
            .remove(&id)
            .ok_or_else(|| SrbError::NotFound(format!("collection {id}")))?;
        g.by_path.remove(&node.path.to_string());
        g.children.remove(&id);
        if let Some(p) = node.parent {
            if let Some(kids) = g.children.get_mut(&p) {
                if let Some(name) = node.path.name() {
                    kids.remove(name);
                }
            }
        }
        let gen = self.generation.bump_get().raw();
        self.wal.log(gen, || WalOp::CollectionDelete { id });
        drop(g);
        self.wal.commit();
        Ok(())
    }

    /// Every collection row, sorted by id (snapshots).
    pub fn dump(&self) -> Vec<Collection> {
        let g = self.inner.read();
        let mut v: Vec<Collection> = g.nodes.values().cloned().collect();
        v.sort_by_key(|c| c.id);
        v
    }

    /// Rebuild the tree (path index + child lists) from snapshot rows.
    pub fn restore(rows: Vec<Collection>) -> Self {
        let t = CollectionTable::default();
        {
            let mut g = t.inner.write();
            for c in &rows {
                g.by_path.insert(c.path.to_string(), c.id);
                g.children.entry(c.id).or_default();
                if let (Some(p), Some(name)) = (c.parent, c.path.name()) {
                    g.children
                        .entry(p)
                        .or_default()
                        .insert(name.to_string(), c.id);
                }
            }
            for c in rows {
                g.nodes.insert(c.id, c);
            }
        }
        t
    }

    /// Total number of collections.
    pub fn count(&self) -> usize {
        self.inner.read().nodes.len()
    }
}

/// Batch path lookups under one read guard; see
/// [`CollectionTable::path_batch`].
pub struct CollPathBatch<'a> {
    g: RwLockReadGuard<'a, Inner>,
}

impl CollPathBatch<'_> {
    /// The logical path of a collection, borrowed from the table.
    pub fn path_of(&self, id: CollectionId) -> Option<&LogicalPath> {
        self.g.nodes.get(&id).map(|n| &n.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srb_types::Permission;

    fn table() -> (CollectionTable, IdGen) {
        let ids = IdGen::new();
        let t = CollectionTable::new(&ids, UserId(1), Timestamp(0));
        (t, ids)
    }

    fn path(s: &str) -> LogicalPath {
        LogicalPath::parse(s).unwrap()
    }

    #[test]
    fn root_exists_and_resolves() {
        let (t, _) = table();
        let root = t.root();
        assert_eq!(t.resolve(&LogicalPath::root()).unwrap(), root);
        assert!(t.get(root).unwrap().path.is_root());
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn create_nested_collections() {
        let (t, ids) = table();
        let root = t.root();
        let cultures = t
            .create(&ids, root, "Cultures", UserId(2), Timestamp(0))
            .unwrap();
        let avian = t
            .create(&ids, cultures, "Avian Culture", UserId(2), Timestamp(0))
            .unwrap();
        assert_eq!(t.resolve(&path("/Cultures/Avian Culture")).unwrap(), avian);
        assert_eq!(t.get(avian).unwrap().parent, Some(cultures));
        assert_eq!(t.children(root).len(), 1);
        assert_eq!(t.descendants(root), vec![cultures, avian]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let (t, ids) = table();
        let root = t.root();
        t.create(&ids, root, "x", UserId(1), Timestamp(0)).unwrap();
        assert!(t.create(&ids, root, "x", UserId(1), Timestamp(0)).is_err());
    }

    #[test]
    fn move_rebases_descendants() {
        let (t, ids) = table();
        let root = t.root();
        let a = t.create(&ids, root, "a", UserId(1), Timestamp(0)).unwrap();
        let b = t.create(&ids, a, "b", UserId(1), Timestamp(0)).unwrap();
        let dst = t
            .create(&ids, root, "dst", UserId(1), Timestamp(0))
            .unwrap();
        t.move_collection(a, dst, "a2").unwrap();
        assert_eq!(t.resolve(&path("/dst/a2")).unwrap(), a);
        assert_eq!(t.resolve(&path("/dst/a2/b")).unwrap(), b);
        assert!(t.resolve(&path("/a")).is_err());
        assert_eq!(t.get(b).unwrap().path, path("/dst/a2/b"));
    }

    #[test]
    fn cannot_move_into_own_subtree() {
        let (t, ids) = table();
        let root = t.root();
        let a = t.create(&ids, root, "a", UserId(1), Timestamp(0)).unwrap();
        let b = t.create(&ids, a, "b", UserId(1), Timestamp(0)).unwrap();
        assert!(t.move_collection(a, b, "a").is_err());
        assert!(t.move_collection(root, a, "r").is_err());
    }

    #[test]
    fn delete_requires_empty() {
        let (t, ids) = table();
        let root = t.root();
        let a = t.create(&ids, root, "a", UserId(1), Timestamp(0)).unwrap();
        let b = t.create(&ids, a, "b", UserId(1), Timestamp(0)).unwrap();
        assert!(t.delete(a).is_err());
        t.delete(b).unwrap();
        t.delete(a).unwrap();
        assert!(t.resolve(&path("/a")).is_err());
        assert!(t.delete(root).is_err());
    }

    #[test]
    fn linked_collections_resolve_to_target() {
        let (t, ids) = table();
        let root = t.root();
        let real = t
            .create(&ids, root, "real", UserId(1), Timestamp(0))
            .unwrap();
        let lnk = t
            .link(&ids, root, "alias", real, UserId(1), Timestamp(0))
            .unwrap();
        assert_eq!(t.resolve(&path("/alias")).unwrap(), real);
        assert_eq!(t.resolve_nofollow(&path("/alias")).unwrap(), lnk);
        // Chaining collapses: a link to a link points at the original.
        let lnk2 = t
            .link(&ids, root, "alias2", lnk, UserId(1), Timestamp(0))
            .unwrap();
        assert_eq!(t.get(lnk2).unwrap().link_target, Some(real));
        // No children under a link node.
        assert!(t.create(&ids, lnk, "x", UserId(1), Timestamp(0)).is_err());
    }

    #[test]
    fn children_page_walks_name_order_across_moves() {
        let (t, ids) = table();
        let root = t.root();
        for name in ["delta", "alpha", "echo", "bravo", "charlie"] {
            t.create(&ids, root, name, UserId(1), Timestamp(0)).unwrap();
        }
        let mut walked = Vec::new();
        let mut after: Option<String> = None;
        loop {
            let (page, more) = t.children_page(root, after.as_deref(), 2);
            walked.extend(page.iter().filter_map(|c| c.path.name().map(String::from)));
            if !more {
                break;
            }
            after = page.last().and_then(|c| c.path.name().map(String::from));
        }
        assert_eq!(walked, vec!["alpha", "bravo", "charlie", "delta", "echo"]);
        // Moving a child away updates the ordered index under its old name.
        let delta = t.resolve(&path("/delta")).unwrap();
        let alpha = t.resolve(&path("/alpha")).unwrap();
        t.move_collection(delta, alpha, "renamed").unwrap();
        let names: Vec<String> = t
            .children(root)
            .into_iter()
            .filter_map(|c| c.path.name().map(String::from))
            .collect();
        assert_eq!(names, vec!["alpha", "bravo", "charlie", "echo"]);
        let (page, more) = t.children_page(alpha, None, 10);
        assert!(!more);
        assert_eq!(page.len(), 1);
        assert_eq!(page[0].path, path("/alpha/renamed"));
        // Unknown parents page as empty, not as an error.
        assert_eq!(t.children_page(CollectionId(999), None, 5).0.len(), 0);
    }

    #[test]
    fn acl_and_requirements_update() {
        let (t, ids) = table();
        let root = t.root();
        let c = t.create(&ids, root, "c", UserId(1), Timestamp(0)).unwrap();
        let mut acl = AccessMatrix::owned_by(UserId(1));
        acl.public = Permission::Read;
        t.set_acl(c, acl.clone()).unwrap();
        assert_eq!(t.get(c).unwrap().acl, acl);
        let reqs = vec![
            AttrRequirement::mandatory("species", "taxon name"),
            AttrRequirement::vocabulary("medium", &["image", "movie", "text"], "media type"),
        ];
        t.set_requirements(c, reqs.clone()).unwrap();
        let got = t.get(c).unwrap().requirements;
        assert_eq!(got, reqs);
        assert_eq!(got[1].default_value(), Some("image"));
        assert!(got[0].mandatory);
    }
}

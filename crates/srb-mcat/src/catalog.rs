//! The catalog facade: one `Mcat` owns every table and implements the
//! cross-table operations — path resolution, permission evaluation,
//! structural-metadata enforcement, and the conjunctive query engine with
//! its indexed planner and full-scan baseline (ablation A1).

use crate::annotation::AnnotationTable;
use crate::audit::AuditLog;
use crate::collection::{AttrRequirement, Collection, CollectionTable};
use crate::container::ContainerTable;
use crate::dataset::{Dataset, DatasetTable};
use crate::metadata::{MetaKind, MetaStore, Subject, DUBLIN_CORE};
use crate::query::{Query, QueryCondition, QueryHit};
use crate::resource::ResourceTable;
use crate::user::UserTable;
use crate::wal::{self, RecoveryReport, Wal, WalConfig};
use srb_storage::LogDevice;
use srb_types::{
    like_scan_prefix, CollectionId, CompareOp, CursorCodec, DatasetId, IdGen, LogicalPath,
    MetaValue, PageToken, Permission, SimClock, SrbError, SrbResult, Timestamp, Triplet, UserId,
};
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

/// Seed for the catalog's cursor-signing key. Fixed so two seeded
/// simulation runs emit byte-identical tokens; clients still cannot mint
/// tokens, since they never see the derived key.
const CURSOR_KEY_SEED: u64 = 0x5352_425f_4355_5253; // "SRB_CURS"

/// URL scheme of a cross-zone replica pointer: a replica whose
/// [`AccessSpec::Url`](crate::dataset::AccessSpec::Url) starts with this
/// scheme holds no local bytes — it names a dataset in a peer zone as
/// `srb+zone://<zone>/<logical path>`.
pub const ZONE_URL_SCHEME: &str = "srb+zone://";

/// System-metadata attribute naming the home zone of a remote-registered
/// dataset. Written WAL-logged alongside the pointer so provenance
/// survives crash recovery with the row itself.
pub const ZONE_HOME_ATTR: &str = "zone_home";

/// System-metadata attribute holding the dataset's logical path in its
/// home zone.
pub const ZONE_PATH_ATTR: &str = "zone_path";

/// The Metadata Catalog.
///
/// One `Mcat` instance serves an entire SRB federation (the paper's
/// deployments ran a single MCAT at SDSC). All tables are individually
/// thread-safe; the facade adds cross-table invariants.
pub struct Mcat {
    /// Shared id allocator.
    pub ids: IdGen,
    /// The grid's virtual clock.
    pub clock: SimClock,
    /// Users and groups.
    pub users: UserTable,
    /// Physical and logical resources.
    pub resources: ResourceTable,
    /// The collection hierarchy.
    pub collections: CollectionTable,
    /// Datasets and replicas.
    pub datasets: DatasetTable,
    /// Containers.
    pub containers: ContainerTable,
    /// Metadata triplets.
    pub metadata: MetaStore,
    /// Annotations.
    pub annotations: AnnotationTable,
    /// Audit trail.
    pub audit: AuditLog,
    admin: UserId,
    /// Signs/verifies the opaque continuation tokens of `query_page` and
    /// `list_page`.
    cursors: CursorCodec,
    /// Query-planner metric handles, attached when observability is on.
    obs: Option<QueryObs>,
    /// The write-ahead log, once durability is enabled.
    wal: OnceLock<Arc<Wal>>,
}

/// Pre-registered counters for the query planner; kept as handles so the
/// per-query cost is a few `fetch_add`s, not registry lookups.
#[derive(Debug, Clone)]
struct QueryObs {
    plans_indexed: srb_obs::Counter,
    plans_scan: srb_obs::Counter,
    indexes_probed: srb_obs::Counter,
    candidates_scanned: srb_obs::Counter,
    candidates_verified: srb_obs::Counter,
    range_scans: srb_obs::Counter,
    cursor_pages: srb_obs::Counter,
    cursor_invalidated: srb_obs::Counter,
}

impl Mcat {
    /// Create a catalog with a bootstrap administrator (`srb@sdsc`).
    pub fn new(clock: SimClock, admin_password: &str) -> Self {
        let ids = IdGen::new();
        let users = UserTable::new();
        let admin = match users.register(&ids, "srb", "sdsc", admin_password, true) {
            Ok(u) => u,
            // Registration only fails on a duplicate name; the table is new.
            Err(_) => unreachable!("fresh user table has no duplicate names"),
        };
        let collections = CollectionTable::new(&ids, admin, clock.now());
        Mcat {
            ids,
            clock,
            users,
            resources: ResourceTable::new(),
            collections,
            datasets: DatasetTable::new(),
            containers: ContainerTable::new(),
            metadata: MetaStore::new(),
            annotations: AnnotationTable::new(),
            audit: AuditLog::new(),
            admin,
            cursors: CursorCodec::new(CURSOR_KEY_SEED),
            obs: None,
            wal: OnceLock::new(),
        }
    }

    /// Attach planner and scope-cache instrumentation (builder-style,
    /// called once by the grid at construction when observability is
    /// enabled).
    pub fn with_metrics(mut self, metrics: &srb_obs::MetricsRegistry) -> Self {
        self.obs = Some(QueryObs {
            plans_indexed: metrics.counter("query.plans", "indexed"),
            plans_scan: metrics.counter("query.plans", "scan"),
            indexes_probed: metrics.counter("query.indexes_probed", ""),
            candidates_scanned: metrics.counter("query.candidates_scanned", ""),
            candidates_verified: metrics.counter("query.candidates_verified", ""),
            range_scans: metrics.counter("mcat.range_scan", ""),
            cursor_pages: metrics.counter("mcat.cursor_pages", ""),
            cursor_invalidated: metrics.counter("mcat.cursor_invalidated", ""),
        });
        self.collections.attach_metrics(metrics);
        self
    }

    /// The bootstrap administrator.
    pub fn admin(&self) -> UserId {
        self.admin
    }

    /// Assemble a catalog from restored tables (see [`crate::snapshot`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        ids: IdGen,
        clock: SimClock,
        admin: UserId,
        users: UserTable,
        resources: ResourceTable,
        collections: CollectionTable,
        datasets: DatasetTable,
        containers: ContainerTable,
        metadata: MetaStore,
        annotations: AnnotationTable,
        audit: AuditLog,
    ) -> Mcat {
        Mcat {
            ids,
            clock,
            users,
            resources,
            collections,
            datasets,
            containers,
            metadata,
            annotations,
            audit,
            admin,
            cursors: CursorCodec::new(CURSOR_KEY_SEED),
            obs: None,
            wal: OnceLock::new(),
        }
    }

    // ------------------------------------------------------- durability --

    /// Wire every table to `walh` (shared hook-attachment of
    /// [`enable_wal`](Self::enable_wal) and [`recover`](Self::recover)).
    fn attach_wal_all(&self, walh: &Arc<Wal>) {
        self.users.attach_wal(walh.clone());
        self.resources.attach_wal(walh.clone());
        self.collections.attach_wal(walh.clone());
        self.datasets.attach_wal(walh.clone());
        self.containers.attach_wal(walh.clone());
        self.metadata.attach_wal(walh.clone());
        self.annotations.attach_wal(walh.clone());
        self.audit.attach_wal(walh.clone());
    }

    /// Enable write-ahead durability over `device`. Everything already in
    /// the catalog (the bootstrap admin, the root collection, any rows
    /// registered before this call) is covered by an initial checkpoint;
    /// from here on every mutation is redo-logged and fsynced at commit.
    /// May be called at most once per catalog.
    pub fn enable_wal(
        &self,
        device: Arc<LogDevice>,
        config: WalConfig,
        metrics: Option<&srb_obs::MetricsRegistry>,
    ) -> SrbResult<()> {
        if self.wal.get().is_some() {
            return Err(SrbError::Invalid("durability already enabled".into()));
        }
        let walh = Arc::new(Wal::new(device, self.clock.clone(), config, metrics));
        let cover = walh.checkpoint_cover();
        walh.install_checkpoint(cover, &self.snapshot_json()?);
        self.attach_wal_all(&walh);
        let _ = self.wal.set(walh);
        Ok(())
    }

    /// The write-ahead log, once durability is enabled.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.get()
    }

    /// Install a periodic checkpoint if the configured interval has
    /// elapsed on the virtual clock. Called from op epilogues; cheap when
    /// durability is off or no checkpoint is due. Returns whether one was
    /// installed.
    pub fn maybe_checkpoint(&self) -> SrbResult<bool> {
        let Some(walh) = self.wal.get() else {
            return Ok(false);
        };
        let Some(cover) = walh.checkpoint_claim(self.clock.now()) else {
            return Ok(false);
        };
        walh.install_checkpoint(cover, &self.snapshot_json()?);
        Ok(true)
    }

    /// Install a checkpoint unconditionally (shutdown, tests, explicit
    /// admin request). Errors when durability is not enabled.
    pub fn checkpoint_now(&self) -> SrbResult<()> {
        let Some(walh) = self.wal.get() else {
            return Err(SrbError::Invalid("durability not enabled".into()));
        };
        let cover = walh.checkpoint_cover();
        walh.install_checkpoint(cover, &self.snapshot_json()?);
        Ok(())
    }

    /// Redo recovery: rebuild the catalog a crashed `device` proves — its
    /// latest checkpoint plus every complete commit group of the durable
    /// tail — and resume durable operation over the same device.
    ///
    /// The shared clock is advanced to at least the last acknowledged
    /// commit's virtual time, a fresh WAL resumes LSN assignment after the
    /// durable tail, and a post-recovery checkpoint is installed so
    /// records the replay discarded (an unterminated trailing group) can
    /// never resurface in a later recovery.
    pub fn recover(
        clock: SimClock,
        device: Arc<LogDevice>,
        config: WalConfig,
        metrics: Option<&srb_obs::MetricsRegistry>,
    ) -> SrbResult<(Mcat, RecoveryReport)> {
        let replayed = wal::replay_device(&device)?;
        let mcat = Mcat::restore(clock.clone(), replayed.snapshot)?;
        clock.advance_to(Timestamp(replayed.max_at_ns));
        let walh = Arc::new(Wal::new(device, clock, config, metrics));
        walh.charge_recovery(replayed.report.recovery_ns);
        let cover = walh.checkpoint_cover();
        walh.install_checkpoint(cover, &mcat.snapshot_json()?);
        mcat.attach_wal_all(&walh);
        let _ = mcat.wal.set(walh);
        Ok((mcat, replayed.report))
    }

    // ------------------------------------------------------- resolution --

    /// Resolve a logical path to a dataset id (the final component is the
    /// dataset name; collection links along the way are followed; a final
    /// dataset link is *not* followed).
    pub fn resolve_dataset(&self, path: &LogicalPath) -> SrbResult<DatasetId> {
        let name = path
            .name()
            .ok_or_else(|| SrbError::Invalid("root is not a dataset".into()))?;
        let parent = path
            .parent()
            .ok_or_else(|| SrbError::Invalid("root is not a dataset".into()))?;
        let coll = self.collections.resolve(&parent)?;
        self.datasets
            .find(coll, name)
            .ok_or_else(|| SrbError::NotFound(format!("dataset '{path}'")))
    }

    /// The current logical path of a dataset.
    pub fn dataset_path(&self, id: DatasetId) -> SrbResult<LogicalPath> {
        let d = self.datasets.get(id)?;
        let coll = self.collections.get(d.coll)?;
        coll.path.child(&d.name)
    }

    // ------------------------------------------------------ permissions --

    /// Effective permission of `user` on a collection: the collection's own
    /// matrix, or any ancestor grant (a grant on `/Cultures` extends to
    /// `/Cultures/Avian Culture`).
    pub fn effective_on_collection(
        &self,
        user: Option<UserId>,
        coll: CollectionId,
    ) -> SrbResult<Permission> {
        let groups = user.map(|u| self.users.groups_of(u)).unwrap_or_default();
        let mut best = Permission::None;
        let mut cur = Some(coll);
        while let Some(c) = cur {
            let node = self.collections.get(c)?;
            let p = match user {
                Some(u) => node.acl.effective(u, &groups),
                None => node.acl.effective_anonymous(),
            };
            best = best.max(p);
            cur = node.parent;
        }
        Ok(best)
    }

    /// Effective permission of `user` on a dataset: max of the dataset's
    /// own matrix and the containing collection's effective permission.
    /// For link objects, the *target*'s ACL governs (paper: "the access
    /// control of the original object is inherited by the linked object").
    pub fn effective_on_dataset(
        &self,
        user: Option<UserId>,
        dataset: DatasetId,
    ) -> SrbResult<Permission> {
        let d = self.datasets.get(dataset)?;
        if let Some(target) = d.link_target {
            return self.effective_on_dataset(user, target);
        }
        let groups = user.map(|u| self.users.groups_of(u)).unwrap_or_default();
        let own = match user {
            Some(u) => d.acl.effective(u, &groups),
            None => d.acl.effective_anonymous(),
        };
        Ok(own.max(self.effective_on_collection(user, d.coll)?))
    }

    /// Error unless `user` has `needed` on the dataset.
    pub fn require_dataset(
        &self,
        user: Option<UserId>,
        dataset: DatasetId,
        needed: Permission,
    ) -> SrbResult<()> {
        if self.effective_on_dataset(user, dataset)?.allows(needed) {
            Ok(())
        } else {
            Err(SrbError::PermissionDenied(format!(
                "need {} on dataset {dataset}",
                needed.name()
            )))
        }
    }

    /// Error unless `user` has `needed` on the collection.
    pub fn require_collection(
        &self,
        user: Option<UserId>,
        coll: CollectionId,
        needed: Permission,
    ) -> SrbResult<()> {
        if self.effective_on_collection(user, coll)?.allows(needed) {
            Ok(())
        } else {
            Err(SrbError::PermissionDenied(format!(
                "need {} on collection {coll}",
                needed.name()
            )))
        }
    }

    // ---------------------------------------------- structural metadata --

    /// The attribute requirements applying to items added to `coll`: the
    /// collection's own requirements plus every ancestor's (the curator
    /// scenario: "MetaCore for Cultures" on the parent, augmented on the
    /// sub-collection).
    pub fn requirements_for(&self, coll: CollectionId) -> SrbResult<Vec<AttrRequirement>> {
        let mut out = Vec::new();
        let mut cur = Some(coll);
        while let Some(c) = cur {
            let node = self.collections.get(c)?;
            for r in &node.requirements {
                if !out.iter().any(|x: &AttrRequirement| x.name == r.name) {
                    out.push(r.clone());
                }
            }
            cur = node.parent;
        }
        Ok(out)
    }

    /// Validate supplied triplets against the structural requirements of a
    /// collection: every mandatory attribute must be present, and values of
    /// restricted-vocabulary attributes must come from the vocabulary.
    pub fn validate_structural(&self, coll: CollectionId, supplied: &[Triplet]) -> SrbResult<()> {
        for req in self.requirements_for(coll)? {
            let given: Vec<&Triplet> = supplied.iter().filter(|t| t.name == req.name).collect();
            if req.mandatory && given.is_empty() {
                return Err(SrbError::MissingMetadata(format!(
                    "attribute '{}' is mandatory here ({})",
                    req.name, req.comment
                )));
            }
            if req.allowed.len() > 1 {
                for t in given {
                    let lex = t.value.lexical();
                    if !req.allowed.iter().any(|a| a == &lex) {
                        return Err(SrbError::Invalid(format!(
                            "'{}' is not in the vocabulary for '{}' ({:?})",
                            lex, req.name, req.allowed
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Attach a type-oriented (schema) triplet, validating Dublin Core
    /// element names.
    pub fn add_type_metadata(
        &self,
        subject: Subject,
        schema: &str,
        triplet: Triplet,
    ) -> SrbResult<()> {
        if schema == "DublinCore" && !DUBLIN_CORE.contains(&triplet.name.as_str()) {
            return Err(SrbError::Invalid(format!(
                "'{}' is not a Dublin Core element",
                triplet.name
            )));
        }
        self.metadata.add(
            &self.ids,
            subject,
            triplet,
            MetaKind::TypeOriented(schema.to_string()),
        );
        Ok(())
    }

    // ------------------------------------------------------------ query --

    /// Attribute names queryable in a scope — "a drop-down menu containing
    /// all the metadata names that are queryable in that collection and
    /// every collection in the hierarchy under the collection". Served from
    /// the collection-subtree cache plus a set-probed single pass over the
    /// metadata subject index; no per-dataset `Subject` vector is built.
    pub fn queryable_attrs(&self, scope: &LogicalPath) -> SrbResult<Vec<String>> {
        let set = self.scope_set(scope)?;
        let in_scope: HashSet<DatasetId> = self.datasets.ids_in_colls(&set).into_iter().collect();
        Ok(self.metadata.attr_names_in(&in_scope))
    }

    /// The collection set a query over `scope` searches, via the
    /// generation-stamped subtree cache on [`CollectionTable`].
    fn scope_set(&self, scope: &LogicalPath) -> SrbResult<Arc<HashSet<CollectionId>>> {
        let root = self.collections.resolve(scope)?;
        Ok(self.collections.subtree_set(root))
    }

    fn datasets_in_scope(&self, scope: &LogicalPath) -> SrbResult<Vec<DatasetId>> {
        let set = self.scope_set(scope)?;
        Ok(self.datasets.ids_in_colls(&set))
    }

    fn is_system_attr(attr: &str) -> bool {
        matches!(attr, "name" | "data_type" | "size" | "owner")
    }

    fn system_value(&self, d: &crate::dataset::Dataset, attr: &str) -> Option<MetaValue> {
        match attr {
            "name" => Some(MetaValue::Text(d.name.clone())),
            "data_type" => Some(MetaValue::Text(d.data_type.clone())),
            "size" => Some(MetaValue::Int(d.size() as i64)),
            "owner" => self
                .users
                .get(d.owner)
                .ok()
                .map(|u| MetaValue::Text(u.qualified())),
            _ => None,
        }
    }

    fn condition_matches(&self, q: &Query, dataset: DatasetId, c: &QueryCondition) -> bool {
        let subject = Subject::Dataset(dataset);
        // Any user triplet with the attribute name may satisfy the
        // condition.
        let rows = self.metadata.for_subject(subject);
        for r in &rows {
            if r.triplet.name == c.attr && c.op.eval(&r.triplet.value, &c.value) {
                return true;
            }
        }
        if q.include_system && Self::is_system_attr(&c.attr) {
            if let Ok(d) = self.datasets.get(dataset) {
                if let Some(v) = self.system_value(&d, &c.attr) {
                    if c.op.eval(&v, &c.value) {
                        return true;
                    }
                }
            }
        }
        if q.include_annotations
            && c.attr == "annotation"
            && self.annotations.text_matches(subject, &c.value.lexical())
        {
            return true;
        }
        false
    }

    fn build_hit(&self, q: &Query, dataset: DatasetId) -> QueryHit {
        let row = self.datasets.get(dataset).ok();
        let path = row
            .as_ref()
            .and_then(|d| {
                self.collections
                    .get(d.coll)
                    .ok()
                    .and_then(|c| c.path.child(&d.name).ok())
            })
            .map(|p| p.to_string())
            .unwrap_or_default();
        let selected = q
            .select
            .iter()
            .map(|attr| {
                let v = self
                    .metadata
                    .value_of(Subject::Dataset(dataset), attr)
                    .or_else(|| {
                        if q.include_system {
                            row.as_ref().and_then(|d| self.system_value(d, attr))
                        } else {
                            None
                        }
                    })
                    .map(|v| v.lexical())
                    .unwrap_or_default();
                (attr.clone(), v)
            })
            .collect();
        QueryHit {
            dataset,
            path,
            selected,
        }
    }

    /// A condition is *index-complete* when the metadata value index alone
    /// yields exactly the datasets satisfying it. A condition on a system
    /// attribute name under `include_system`, or on `annotation` under
    /// `include_annotations`, can also be satisfied by data the index does
    /// not cover (a dataset named `size` in system metadata, an annotation
    /// text), so such conditions must be verified per candidate instead.
    fn index_complete(q: &Query, c: &QueryCondition) -> bool {
        let system_shadow = q.include_system && Self::is_system_attr(&c.attr);
        let annotation_shadow = q.include_annotations && c.attr == "annotation";
        !(system_shadow || annotation_shadow)
    }

    /// Check one residual condition against borrowed state: the caller's
    /// metadata guard first, then system attributes and annotations.
    fn residual_matches(
        &self,
        q: &Query,
        meta: &crate::metadata::MetaBatch<'_>,
        row: &crate::dataset::Dataset,
        c: &QueryCondition,
    ) -> bool {
        if meta.subject_matches(Subject::Dataset(row.id), &c.attr, c.op, &c.value) {
            return true;
        }
        if q.include_system && Self::is_system_attr(&c.attr) {
            if let Some(v) = self.system_value(row, &c.attr) {
                if c.op.eval(&v, &c.value) {
                    return true;
                }
            }
        }
        q.include_annotations
            && c.attr == "annotation"
            && self
                .annotations
                .text_matches(Subject::Dataset(row.id), &c.value.lexical())
    }

    /// Candidate counts past which verification fans out across a scoped
    /// thread pool (never when the limit push-down may short-circuit).
    const PARALLEL_VERIFY_THRESHOLD: usize = 1024;
    /// Smallest candidate slice worth a verifier thread of its own.
    const PARALLEL_VERIFY_CHUNK: usize = 512;
    /// Upper bound on verifier threads regardless of hardware width.
    const PARALLEL_VERIFY_MAX: usize = 8;

    /// Verify scope membership and residual conditions for each candidate,
    /// holding one metadata read guard and one dataset read guard for the
    /// entire sweep (both `McatTable` rank, so they may be held together).
    /// With an unordered limit, stops as soon as `limit` hits confirm.
    fn verify_candidates(
        &self,
        q: &Query,
        scope: &HashSet<CollectionId>,
        residual: &[&QueryCondition],
        candidates: Vec<DatasetId>,
    ) -> Vec<DatasetId> {
        let push_down = q.limit > 0 && !q.ordered;
        if !push_down && candidates.len() > Self::PARALLEL_VERIFY_THRESHOLD {
            return self.verify_parallel(q, scope, residual, &candidates);
        }
        let meta = self.metadata.batch();
        let ds = self.datasets.batch();
        let mut out = Vec::new();
        for d in candidates {
            let Some(row) = ds.get_ref(d) else { continue };
            if !scope.contains(&row.coll) {
                continue;
            }
            if residual
                .iter()
                .all(|c| self.residual_matches(q, &meta, row, c))
            {
                out.push(d);
                if push_down && out.len() >= q.limit {
                    break;
                }
            }
        }
        out
    }

    /// Scoped-thread verification for large candidate sets. Each worker
    /// takes its own read guards (the lock-rank `HELD` stack is
    /// thread-local, so fresh `McatTable`-rank acquisitions are legal) and
    /// sweeps a contiguous slice; slices are re-joined in order, keeping
    /// the result deterministic.
    fn verify_parallel(
        &self,
        q: &Query,
        scope: &HashSet<CollectionId>,
        residual: &[&QueryCondition],
        candidates: &[DatasetId],
    ) -> Vec<DatasetId> {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = (candidates.len() / Self::PARALLEL_VERIFY_CHUNK)
            .clamp(1, hw.min(Self::PARALLEL_VERIFY_MAX));
        let chunk = candidates.len().div_ceil(workers);
        let mut confirmed = Vec::with_capacity(candidates.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = candidates
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        let meta = self.metadata.batch();
                        let ds = self.datasets.batch();
                        let mut out = Vec::new();
                        for &d in part {
                            let Some(row) = ds.get_ref(d) else { continue };
                            if !scope.contains(&row.coll) {
                                continue;
                            }
                            if residual
                                .iter()
                                .all(|c| self.residual_matches(q, &meta, row, c))
                            {
                                out.push(d);
                            }
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(mut part) => confirmed.append(&mut part),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        confirmed
    }

    /// Build hits for confirmed candidates under batch guards: one metadata
    /// guard, one dataset guard, and one collection-path guard serve every
    /// hit, and each hit reads its dataset row exactly once.
    fn build_hits(&self, q: &Query, confirmed: &[DatasetId]) -> Vec<QueryHit> {
        let meta = self.metadata.batch();
        let ds = self.datasets.batch();
        let paths = self.collections.path_batch();
        confirmed
            .iter()
            .filter_map(|&d| {
                let row = ds.get_ref(d)?;
                let path = paths
                    .path_of(row.coll)
                    .and_then(|p| p.child(&row.name).ok())
                    .map(|p| p.to_string())
                    .unwrap_or_default();
                let selected = q
                    .select
                    .iter()
                    .map(|attr| {
                        let v = meta
                            .value_of(Subject::Dataset(d), attr)
                            .map(|v| v.lexical())
                            .or_else(|| {
                                if q.include_system {
                                    self.system_value(row, attr).map(|v| v.lexical())
                                } else {
                                    None
                                }
                            })
                            .unwrap_or_default();
                        (attr.clone(), v)
                    })
                    .collect();
                Some(QueryHit {
                    dataset: d,
                    path,
                    selected,
                })
            })
            .collect()
    }

    /// Execute a query through the multi-index planner.
    ///
    /// Pipeline:
    /// 1. **Set sources** — every index-complete condition can contribute
    ///    an exact candidate set from the metadata value index. The planner
    ///    materializes the most selective source and folds in the rest
    ///    cheapest-first — intersecting materialized sets, or probing each
    ///    survivor against the index when a source's partition dwarfs the
    ///    running set — and exits the moment the intersection is empty.
    ///    `Like`/`NotLike` sources scan whole partitions, so they drive the
    ///    plan only when no point/range source exists.
    /// 2. **Verification sweep** — scope membership plus residual
    ///    conditions are checked against borrowed rows under one metadata
    ///    guard and one dataset guard held for the whole sweep
    ///    (`verify_candidates`). Unordered limited queries stop at
    ///    `limit` confirmed hits; large ordered sweeps fan out across a
    ///    scoped thread pool.
    /// 3. **Hit building** — paths and selected values come from batch
    ///    guards; each hit touches its dataset row once
    ///    (`build_hits`).
    pub fn query(&self, q: &Query) -> SrbResult<Vec<QueryHit>> {
        let scope = self.scope_set(&q.scope)?;
        let (candidates, residual) = self.plan(q, &scope);
        let scanned = candidates.len() as u64;
        let confirmed = self.verify_candidates(q, &scope, &residual, candidates);
        if let Some(obs) = &self.obs {
            obs.candidates_scanned.add(scanned);
            obs.candidates_verified.add(confirmed.len() as u64);
        }
        let mut hits = self.build_hits(q, &confirmed);
        hits.sort_by(|a, b| a.path.cmp(&b.path));
        if q.limit > 0 {
            hits.truncate(q.limit);
        }
        Ok(hits)
    }

    /// The shared front half of [`query`](Self::query) and
    /// [`query_page`](Self::query_page): classify conditions, pick index
    /// sources, and materialize the candidate set.
    ///
    /// Classification: index-incomplete conditions go straight to the
    /// verification sweep; `Like` patterns with a scannable literal prefix
    /// (`foo%`) are *strong* sources — the ordered index serves them as a
    /// bounded prefix range — while other patterns drive the plan only
    /// when no point/range source exists. When even the best source's
    /// estimated cost exceeds the number of datasets in scope, the full
    /// scan is cheaper: every indexed condition then moves to the residual
    /// sweep, which checks any condition kind correctly.
    fn plan<'q>(
        &self,
        q: &'q Query,
        scope: &HashSet<CollectionId>,
    ) -> (Vec<DatasetId>, Vec<&'q QueryCondition>) {
        let mut strong: Vec<&QueryCondition> = Vec::new();
        let mut patterns: Vec<&QueryCondition> = Vec::new();
        let mut residual: Vec<&QueryCondition> = Vec::new();
        for c in &q.conditions {
            let prefix_scan =
                c.op == CompareOp::Like && like_scan_prefix(&c.value.lexical()).is_some();
            if !Self::index_complete(q, c) {
                residual.push(c);
            } else if matches!(c.op, CompareOp::Like | CompareOp::NotLike) && !prefix_scan {
                patterns.push(c);
            } else {
                strong.push(c);
            }
        }
        if strong.is_empty() {
            strong.append(&mut patterns);
        } else {
            residual.append(&mut patterns);
        }
        let mut sources: Vec<(usize, &QueryCondition)> = strong
            .into_iter()
            .map(|c| (self.metadata.selectivity(&c.attr, c.op, &c.value), c))
            .collect();
        sources.sort_by_key(|(cost, _)| *cost);
        if let Some((best, _)) = sources.first() {
            if *best > self.datasets.count_in_colls(scope) {
                residual.extend(sources.drain(..).map(|(_, c)| c));
            }
        }

        if let Some(obs) = &self.obs {
            if sources.is_empty() {
                obs.plans_scan.inc();
            } else {
                obs.plans_indexed.inc();
                obs.indexes_probed.add(sources.len() as u64);
                let ranges = sources
                    .iter()
                    .filter(|(_, c)| {
                        matches!(
                            c.op,
                            CompareOp::Gt | CompareOp::Ge | CompareOp::Lt | CompareOp::Le
                        ) || (c.op == CompareOp::Like
                            && like_scan_prefix(&c.value.lexical()).is_some())
                    })
                    .count();
                obs.range_scans.add(ranges as u64);
            }
        }

        let candidates: Vec<DatasetId> = if let Some((_, driver)) = sources.first() {
            let mut set = self
                .metadata
                .dataset_candidates(&driver.attr, driver.op, &driver.value);
            for (cost, c) in &sources[1..] {
                if set.is_empty() {
                    break;
                }
                if *cost > set.len().saturating_mul(4) {
                    self.metadata
                        .filter_datasets(&mut set, &c.attr, c.op, &c.value);
                } else {
                    let other = self.metadata.dataset_candidates(&c.attr, c.op, &c.value);
                    set.retain(|d| other.contains(d));
                }
            }
            let mut v: Vec<DatasetId> = set.into_iter().collect();
            v.sort_unstable();
            v
        } else {
            self.datasets.ids_in_colls(scope)
        };
        (candidates, residual)
    }

    // ---------------------------------------------------------- cursors --

    /// Decode a continuation token against the current generation stamps,
    /// counting a `mcat.cursor_invalidated` tick on any rejection.
    fn decode_cursor(&self, token: &str, gens: &[u64]) -> SrbResult<PageToken> {
        match self.cursors.decode_fresh(token, gens) {
            Ok(t) => Ok(t),
            Err(e) => {
                if let Some(obs) = &self.obs {
                    obs.cursor_invalidated.inc();
                }
                Err(e)
            }
        }
    }

    /// One page of query results in path order, resuming from an opaque
    /// continuation token.
    ///
    /// The first call passes `token = None`; each page returns the token
    /// for the next one, or `None` when the listing is exhausted. Tokens
    /// embed the collection/dataset/metadata generation stamps current
    /// when they were issued — any catalog mutation in between makes the
    /// next call fail cleanly with `SrbError::Invalid` (never silently
    /// wrong pages), and the client restarts from the first page.
    ///
    /// `q.limit` and `q.ordered` are ignored: the page size is `page` and
    /// pages are always served in path order. Candidate ordering is
    /// computed per call, but residual verification — the expensive half —
    /// only touches the candidates actually served (plus one look-ahead
    /// for the more-pages flag).
    pub fn query_page(
        &self,
        q: &Query,
        token: Option<&str>,
        page: usize,
    ) -> SrbResult<(Vec<QueryHit>, Option<String>)> {
        let gens = vec![
            self.collections.generation().raw(),
            self.datasets.generation().raw(),
            self.metadata.generation().raw(),
        ];
        let last = match token {
            Some(t) => Some(self.decode_cursor(t, &gens)?.last),
            None => None,
        };
        let scope = self.scope_set(&q.scope)?;
        let (candidates, residual) = self.plan(q, &scope);
        let mut ordered: Vec<(String, DatasetId)> = {
            let ds = self.datasets.batch();
            let paths = self.collections.path_batch();
            candidates
                .into_iter()
                .filter_map(|d| {
                    let row = ds.get_ref(d)?;
                    if !scope.contains(&row.coll) {
                        return None;
                    }
                    let path = paths.path_of(row.coll)?.child(&row.name).ok()?.to_string();
                    Some((path, d))
                })
                .collect()
        };
        ordered.sort_unstable();
        // Binary-search the resume point: everything at or before the
        // cursor's last-served path is done, however deep the cursor.
        let start = match &last {
            Some(l) => ordered.partition_point(|(p, _)| p.as_str() <= l.as_str()),
            None => 0,
        };
        let mut page_ids: Vec<DatasetId> = Vec::with_capacity(page.min(1024));
        let mut last_path = String::new();
        let mut more = false;
        {
            let meta = self.metadata.batch();
            let ds = self.datasets.batch();
            for (path, d) in ordered.drain(start..) {
                let Some(row) = ds.get_ref(d) else { continue };
                if residual
                    .iter()
                    .all(|c| self.residual_matches(q, &meta, row, c))
                {
                    if page_ids.len() == page {
                        more = true;
                        break;
                    }
                    last_path = path;
                    page_ids.push(d);
                }
            }
        }
        let hits = self.build_hits(q, &page_ids);
        if let Some(obs) = &self.obs {
            obs.cursor_pages.inc();
        }
        let next = more.then(|| {
            self.cursors.encode(&PageToken {
                section: 0,
                gens,
                last: last_path,
            })
        });
        Ok((hits, next))
    }

    /// One page of a collection listing — sub-collections first (name
    /// order), then datasets (name order) — resuming from an opaque
    /// continuation token. Returns the sub-collection rows, the dataset
    /// rows, and the next token (`None` when exhausted). Each page is one
    /// bounded range read per section: O(page) however deep the cursor.
    ///
    /// Tokens carry the collection/dataset generation stamps; any
    /// structural mutation (create/move/delete, not in-place row updates)
    /// invalidates outstanding tokens with `SrbError::Invalid`.
    pub fn list_page(
        &self,
        coll: CollectionId,
        token: Option<&str>,
        limit: usize,
    ) -> SrbResult<(Vec<Collection>, Vec<Dataset>, Option<String>)> {
        let gens = vec![
            self.collections.generation().raw(),
            self.datasets.generation().raw(),
        ];
        let (section, last) = match token {
            Some(t) => {
                let tok = self.decode_cursor(t, &gens)?;
                (tok.section, Some(tok.last))
            }
            None => (0, None),
        };
        self.collections.get(coll)?;
        let mut subcolls = Vec::new();
        let mut remaining = limit;
        let mut after = last;
        if section == 0 {
            let (page, more) = self
                .collections
                .children_page(coll, after.as_deref(), remaining);
            remaining -= page.len();
            subcolls = page;
            if more {
                let last_name = subcolls
                    .last()
                    .and_then(|c| c.path.name())
                    .unwrap_or_default()
                    .to_string();
                if let Some(obs) = &self.obs {
                    obs.cursor_pages.inc();
                }
                let next = self.cursors.encode(&PageToken {
                    section: 0,
                    gens,
                    last: last_name,
                });
                return Ok((subcolls, Vec::new(), Some(next)));
            }
            // Sub-collections exhausted: the dataset section starts fresh.
            // (Dataset names are non-empty, so resuming strictly after ""
            // is the same as starting at the beginning.)
            after = None;
        }
        let (ds_page, more) = self.datasets.list_page(coll, after.as_deref(), remaining);
        let next = more.then(|| {
            self.cursors.encode(&PageToken {
                section: 1,
                gens,
                last: ds_page.last().map(|d| d.name.clone()).unwrap_or_default(),
            })
        });
        if let Some(obs) = &self.obs {
            obs.cursor_pages.inc();
        }
        Ok((subcolls, ds_page, next))
    }

    /// The pre-overhaul engine, kept as an ablation baseline so the
    /// before/after rows in `BENCH_E1.json` / `BENCH_E5.json` can be
    /// measured from one binary: at most one driver index, per-candidate
    /// scope checks on cloned rows, per-candidate `condition_matches` that
    /// re-clones every metadata row for every condition.
    pub fn query_single_driver(&self, q: &Query) -> SrbResult<Vec<QueryHit>> {
        let scope = self.scope_set(&q.scope)?;
        let driver = q
            .conditions
            .iter()
            .enumerate()
            .filter(|(_, c)| !Self::is_system_attr(&c.attr) && c.attr != "annotation")
            .min_by_key(|(_, c)| self.metadata.selectivity(&c.attr, c.op, &c.value));
        let candidates: Vec<DatasetId> = match driver {
            Some((_, c)) => {
                let rows = self.metadata.candidates(&c.attr, c.op, &c.value);
                let mut seen = HashSet::new();
                self.metadata
                    .subjects_of(&rows)
                    .into_iter()
                    .filter_map(|s| match s {
                        Subject::Dataset(d) if seen.insert(d) => Some(d),
                        _ => None,
                    })
                    .collect()
            }
            None => self.datasets_in_scope(&q.scope)?,
        };
        let mut hits: Vec<QueryHit> = candidates
            .into_iter()
            .filter(|d| {
                self.datasets
                    .get(*d)
                    .map(|row| scope.contains(&row.coll))
                    .unwrap_or(false)
            })
            .filter(|d| {
                q.conditions
                    .iter()
                    .all(|c| self.condition_matches(q, *d, c))
            })
            .map(|d| self.build_hit(q, d))
            .collect();
        hits.sort_by(|a, b| a.path.cmp(&b.path));
        if q.limit > 0 {
            hits.truncate(q.limit);
        }
        Ok(hits)
    }

    /// Full-scan baseline (ablation A1): evaluate every dataset in scope
    /// against every condition, ignoring the indexes.
    pub fn query_scan(&self, q: &Query) -> SrbResult<Vec<QueryHit>> {
        let mut hits: Vec<QueryHit> = self
            .datasets_in_scope(&q.scope)?
            .into_iter()
            .filter(|d| {
                q.conditions
                    .iter()
                    .all(|c| self.condition_matches(q, *d, c))
            })
            .map(|d| self.build_hit(q, d))
            .collect();
        hits.sort_by(|a, b| a.path.cmp(&b.path));
        if q.limit > 0 {
            hits.truncate(q.limit);
        }
        Ok(hits)
    }

    // ------------------------------------------- cross-zone provenance --

    /// Home-zone provenance of a cross-zone registration, or `None` for a
    /// purely local dataset.
    ///
    /// A dataset is *remote-registered* when any replica is a
    /// [`ZONE_URL_SCHEME`] pointer. Such a row must carry its provenance —
    /// system-metadata triplets [`ZONE_HOME_ATTR`] and [`ZONE_PATH_ATTR`]
    /// naming the home zone and the path there — or the pointer is
    /// unusable: the grid could neither route a read home nor prove where
    /// the bytes live. Lost provenance therefore **fails closed** with
    /// [`SrbError::Invalid`] instead of answering from a dangling pointer.
    pub fn remote_provenance(&self, id: DatasetId) -> SrbResult<Option<(String, String)>> {
        let d = self.datasets.get(id)?;
        let remote = d.replicas.iter().any(|r| {
            matches!(&r.spec, crate::dataset::AccessSpec::Url { url }
                     if url.starts_with(ZONE_URL_SCHEME))
        });
        if !remote {
            return Ok(None);
        }
        let subject = crate::metadata::Subject::Dataset(id);
        let home = self.metadata.value_of(subject, ZONE_HOME_ATTR);
        let path = self.metadata.value_of(subject, ZONE_PATH_ATTR);
        match (home, path) {
            (Some(h), Some(p)) => Ok(Some((h.lexical(), p.lexical()))),
            _ => Err(SrbError::Invalid(format!(
                "dataset {id} is a remote-zone pointer with lost provenance \
                 (missing {ZONE_HOME_ATTR}/{ZONE_PATH_ATTR} system metadata)"
            ))),
        }
    }

    // ------------------------------------------------------------ stats --

    /// Entity counts for the MySRB admin page and capacity reports.
    pub fn summary(&self) -> serde_json::Value {
        serde_json::json!({
            "users": self.users.user_count(),
            "collections": self.collections.count(),
            "datasets": self.datasets.count(),
            "metadata_rows": self.metadata.count(),
            "annotations": self.annotations.count(),
            "audit_rows": self.audit.count(),
            "containers": self.containers.list().len(),
            "resources": self.resources.list().len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::AccessSpec;
    use srb_types::{CompareOp, ResourceId};

    fn mcat() -> Mcat {
        Mcat::new(SimClock::new(), "admin-pw")
    }

    fn stored() -> AccessSpec {
        AccessSpec::Stored {
            resource: ResourceId(1),
            phys_path: "/p".into(),
        }
    }

    /// Build `/zoo/{birds,mammals}` with a few datasets + metadata.
    fn seeded() -> (Mcat, DatasetId, DatasetId, DatasetId) {
        let m = mcat();
        let root = m.collections.root();
        let admin = m.admin();
        let now = m.clock.now();
        let zoo = m
            .collections
            .create(&m.ids, root, "zoo", admin, now)
            .unwrap();
        let birds = m
            .collections
            .create(&m.ids, zoo, "birds", admin, now)
            .unwrap();
        let mammals = m
            .collections
            .create(&m.ids, zoo, "mammals", admin, now)
            .unwrap();
        let condor = m
            .datasets
            .create(
                &m.ids,
                birds,
                "condor.jpg",
                "jpeg image",
                admin,
                vec![(stored(), 1000, None)],
                now,
            )
            .unwrap();
        let sparrow = m
            .datasets
            .create(
                &m.ids,
                birds,
                "sparrow.jpg",
                "jpeg image",
                admin,
                vec![(stored(), 200, None)],
                now,
            )
            .unwrap();
        let lion = m
            .datasets
            .create(
                &m.ids,
                mammals,
                "lion.jpg",
                "jpeg image",
                admin,
                vec![(stored(), 4000, None)],
                now,
            )
            .unwrap();
        for (d, span) in [(condor, 290i64), (sparrow, 20)] {
            m.metadata.add(
                &m.ids,
                Subject::Dataset(d),
                Triplet::new("wingspan", span, "cm"),
                MetaKind::UserDefined,
            );
        }
        m.metadata.add(
            &m.ids,
            Subject::Dataset(lion),
            Triplet::new("habitat", "savanna", ""),
            MetaKind::UserDefined,
        );
        (m, condor, sparrow, lion)
    }

    fn p(s: &str) -> LogicalPath {
        LogicalPath::parse(s).unwrap()
    }

    #[test]
    fn resolve_dataset_and_path_round_trip() {
        let (m, condor, ..) = seeded();
        let path = m.dataset_path(condor).unwrap();
        assert_eq!(path.to_string(), "/zoo/birds/condor.jpg");
        assert_eq!(m.resolve_dataset(&path).unwrap(), condor);
        assert!(m.resolve_dataset(&p("/zoo/birds/none")).is_err());
        assert!(m.resolve_dataset(&LogicalPath::root()).is_err());
    }

    #[test]
    fn indexed_query_matches_scan() {
        let (m, condor, ..) = seeded();
        let q = Query::everywhere()
            .and("wingspan", CompareOp::Gt, 100i64)
            .show("wingspan");
        let a = m.query(&q).unwrap();
        let b = m.query_scan(&q).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].dataset, condor);
        assert_eq!(
            a[0].selected,
            vec![("wingspan".to_string(), "290".to_string())]
        );
    }

    #[test]
    fn planner_metrics_track_plan_kind_and_cache() {
        let metrics = srb_obs::MetricsRegistry::new();
        let (m, ..) = seeded();
        let m = m.with_metrics(&metrics);
        // Indexed plan: one strong source drives it.
        let q = Query::everywhere().and("wingspan", CompareOp::Gt, 100i64);
        assert_eq!(m.query(&q).unwrap().len(), 1);
        assert_eq!(metrics.counter("query.plans", "indexed").get(), 1);
        assert_eq!(metrics.counter("query.indexes_probed", "").get(), 1);
        assert_eq!(metrics.counter("query.candidates_scanned", "").get(), 1);
        assert_eq!(metrics.counter("query.candidates_verified", "").get(), 1);
        // No index-complete condition: full-scope scan plan.
        let q_scan = Query::everywhere();
        let hits = m.query(&q_scan).unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(metrics.counter("query.plans", "scan").get(), 1);
        // The second query reused the cached "/" scope set.
        assert_eq!(metrics.counter("query.scope_cache_misses", "").get(), 1);
        assert_eq!(metrics.counter("query.scope_cache_hits", "").get(), 1);
    }

    #[test]
    fn scope_restricts_results() {
        let (m, ..) = seeded();
        let q_all = Query::everywhere().and("habitat", CompareOp::Eq, "savanna");
        assert_eq!(m.query(&q_all).unwrap().len(), 1);
        let q_birds =
            Query::everywhere()
                .under(p("/zoo/birds"))
                .and("habitat", CompareOp::Eq, "savanna");
        assert_eq!(m.query(&q_birds).unwrap().len(), 0);
    }

    #[test]
    fn conjunction_requires_all_conditions() {
        let (m, ..) = seeded();
        let q = Query::everywhere()
            .and("wingspan", CompareOp::Gt, 10i64)
            .and("wingspan", CompareOp::Lt, 100i64);
        let hits = m.query(&q).unwrap();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].path.ends_with("sparrow.jpg"));
    }

    #[test]
    fn system_attributes_when_enabled() {
        let (m, ..) = seeded();
        let q = Query::everywhere()
            .and("size", CompareOp::Ge, 1000i64)
            .with_system()
            .show("size")
            .show("owner");
        let hits = m.query(&q).unwrap();
        assert_eq!(hits.len(), 2); // condor + lion
        assert!(hits.iter().any(|h| h.path.ends_with("lion.jpg")));
        let owner = &hits[0].selected[1].1;
        assert_eq!(owner, "srb@sdsc");
        // Without the flag, system attrs never match.
        let q2 = Query::everywhere().and("size", CompareOp::Ge, 1000i64);
        assert!(m.query(&q2).unwrap().is_empty());
    }

    #[test]
    fn annotation_matching_when_enabled() {
        let (m, condor, ..) = seeded();
        m.annotations.add(
            &m.ids,
            Subject::Dataset(condor),
            m.admin(),
            m.clock.now(),
            crate::annotation::AnnotationKind::Comment,
            "",
            "magnificent specimen",
        );
        let q = Query::everywhere()
            .and("annotation", CompareOp::Like, "%magnificent%")
            .with_annotations();
        assert_eq!(m.query(&q).unwrap().len(), 1);
        let q_off = Query::everywhere().and("annotation", CompareOp::Like, "%magnificent%");
        assert!(m.query(&q_off).unwrap().is_empty());
    }

    #[test]
    fn empty_conditions_list_everything_in_scope() {
        let (m, ..) = seeded();
        let q = Query::everywhere().under(p("/zoo"));
        assert_eq!(m.query(&q).unwrap().len(), 3);
        let q = Query::everywhere().under(p("/zoo")).limit(2);
        assert_eq!(m.query(&q).unwrap().len(), 2);
    }

    #[test]
    fn hits_sorted_by_path() {
        let (m, ..) = seeded();
        let hits = m.query(&Query::everywhere().under(p("/zoo"))).unwrap();
        let paths: Vec<&str> = hits.iter().map(|h| h.path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
    }

    #[test]
    fn permissions_inherit_from_ancestors() {
        let (m, condor, ..) = seeded();
        let reader = m
            .users
            .register(&m.ids, "reader", "d", "pw", false)
            .unwrap();
        // Before any grant, the reader only has what root's public level
        // (Discover) passes down.
        assert_eq!(
            m.effective_on_dataset(Some(reader), condor).unwrap(),
            Permission::Discover
        );
        // Grant read on /zoo; it flows down to the dataset.
        let zoo = m.collections.resolve(&p("/zoo")).unwrap();
        let mut acl = m.collections.get(zoo).unwrap().acl;
        acl.grant_user(reader, Permission::Read);
        m.collections.set_acl(zoo, acl).unwrap();
        assert_eq!(
            m.effective_on_dataset(Some(reader), condor).unwrap(),
            Permission::Read
        );
        assert!(m
            .require_dataset(Some(reader), condor, Permission::Read)
            .is_ok());
        assert!(m
            .require_dataset(Some(reader), condor, Permission::Write)
            .is_err());
        // Anonymous users see only what `public` grants.
        assert_eq!(
            m.effective_on_dataset(None, condor).unwrap(),
            Permission::Discover // root grants Discover to public
        );
    }

    #[test]
    fn link_dataset_uses_target_acl() {
        let (m, condor, ..) = seeded();
        let root = m.collections.root();
        let lnk = m
            .datasets
            .create_link(
                &m.ids,
                root,
                "condor-link",
                condor,
                m.admin(),
                m.clock.now(),
            )
            .unwrap();
        let reader = m.users.register(&m.ids, "r", "d", "pw", false).unwrap();
        let mut acl = m.datasets.get(condor).unwrap().acl;
        acl.grant_user(reader, Permission::Read);
        m.datasets
            .update(condor, |d| {
                d.acl = acl;
                Ok(())
            })
            .unwrap();
        assert_eq!(
            m.effective_on_dataset(Some(reader), lnk).unwrap(),
            Permission::Read
        );
    }

    #[test]
    fn structural_requirements_accumulate_up_the_tree() {
        let m = mcat();
        let root = m.collections.root();
        let admin = m.admin();
        let now = m.clock.now();
        let cultures = m
            .collections
            .create(&m.ids, root, "Cultures", admin, now)
            .unwrap();
        let avian = m
            .collections
            .create(&m.ids, cultures, "Avian Culture", admin, now)
            .unwrap();
        m.collections
            .set_requirements(
                cultures,
                vec![AttrRequirement::mandatory(
                    "culture",
                    "MetaCore for Cultures",
                )],
            )
            .unwrap();
        m.collections
            .set_requirements(
                avian,
                vec![AttrRequirement::vocabulary(
                    "medium",
                    &["image", "movie", "text"],
                    "media type",
                )],
            )
            .unwrap();
        let reqs = m.requirements_for(avian).unwrap();
        assert_eq!(reqs.len(), 2);
        // Missing mandatory ancestor attribute fails.
        let err = m
            .validate_structural(avian, &[Triplet::new("medium", "image", "")])
            .unwrap_err();
        assert!(matches!(err, SrbError::MissingMetadata(_)));
        // Out-of-vocabulary value fails.
        let err = m
            .validate_structural(
                avian,
                &[
                    Triplet::new("culture", "avian", ""),
                    Triplet::new("medium", "sculpture", ""),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, SrbError::Invalid(_)));
        // A valid submission passes.
        m.validate_structural(
            avian,
            &[
                Triplet::new("culture", "avian", ""),
                Triplet::new("medium", "movie", ""),
            ],
        )
        .unwrap();
    }

    #[test]
    fn dublin_core_names_validated() {
        let (m, condor, ..) = seeded();
        m.add_type_metadata(
            Subject::Dataset(condor),
            "DublinCore",
            Triplet::new("Title", "Andean Condor", ""),
        )
        .unwrap();
        assert!(m
            .add_type_metadata(
                Subject::Dataset(condor),
                "DublinCore",
                Triplet::new("Wingspan", "290", "cm"),
            )
            .is_err());
        // Custom schemas accept any names.
        m.add_type_metadata(
            Subject::Dataset(condor),
            "MetaCoreForCultures",
            Triplet::new("Wingspan", "290", "cm"),
        )
        .unwrap();
    }

    #[test]
    fn queryable_attrs_scoped() {
        let (m, ..) = seeded();
        assert_eq!(
            m.queryable_attrs(&p("/zoo/birds")).unwrap(),
            vec!["wingspan"]
        );
        let all = m.queryable_attrs(&LogicalPath::root()).unwrap();
        assert_eq!(all, vec!["habitat", "wingspan"]);
    }

    #[test]
    fn summary_counts() {
        let (m, ..) = seeded();
        let s = m.summary();
        assert_eq!(s["datasets"], 3);
        assert_eq!(s["collections"], 4); // root + zoo + birds + mammals
        assert_eq!(s["metadata_rows"], 3);
    }

    #[test]
    fn prefix_like_is_planned_as_indexed_range_scan() {
        let metrics = srb_obs::MetricsRegistry::new();
        let (m, _, _, lion) = seeded();
        let m = m.with_metrics(&metrics);
        let q = Query::everywhere().and("habitat", CompareOp::Like, "sav%");
        let hits = m.query(&q).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dataset, lion);
        assert_eq!(hits, m.query_scan(&q).unwrap());
        // Prefix patterns are strong sources now: indexed plan, one range
        // scan, one candidate pulled instead of a partition sweep.
        assert_eq!(metrics.counter("query.plans", "indexed").get(), 1);
        assert_eq!(metrics.counter("mcat.range_scan", "").get(), 1);
        assert_eq!(metrics.counter("query.candidates_scanned", "").get(), 1);
        // Non-prefix patterns still demote to pattern/residual handling.
        let q2 = Query::everywhere().and("habitat", CompareOp::Like, "%anna");
        assert_eq!(m.query(&q2).unwrap().len(), 1);
        assert_eq!(metrics.counter("mcat.range_scan", "").get(), 1);
    }

    #[test]
    fn wide_index_demotes_to_scan_and_matches_baselines() {
        let metrics = srb_obs::MetricsRegistry::new();
        let (m, ..) = seeded();
        let m = m.with_metrics(&metrics);
        // wingspan > 0 matches 2 rows, but /zoo/mammals holds only 1
        // dataset: the scan is cheaper, and the demoted condition must
        // still be enforced by the verification sweep.
        let q = Query::everywhere()
            .under(p("/zoo/mammals"))
            .and("wingspan", CompareOp::Gt, 0i64);
        let hits = m.query(&q).unwrap();
        assert!(hits.is_empty());
        assert_eq!(hits, m.query_scan(&q).unwrap());
        assert_eq!(hits, m.query_single_driver(&q).unwrap());
        assert_eq!(metrics.counter("query.plans", "scan").get(), 1);
        // Same condition over the birds scope stays indexed.
        let q2 = Query::everywhere()
            .under(p("/zoo/birds"))
            .and("wingspan", CompareOp::Gt, 0i64);
        assert_eq!(m.query(&q2).unwrap().len(), 2);
        assert_eq!(metrics.counter("query.plans", "indexed").get(), 1);
    }

    #[test]
    fn list_page_walks_sections_without_skips() {
        let (m, ..) = seeded();
        let zoo = m.collections.resolve(&p("/zoo")).unwrap();
        let admin = m.admin();
        let now = m.clock.now();
        for name in ["za", "zb", "zc"] {
            m.datasets
                .create(&m.ids, zoo, name, "generic", admin, vec![], now)
                .unwrap();
        }
        // Page size 2 over {birds, mammals} + {za, zb, zc}: the walk must
        // cross the section boundary mid-page without skip or duplicate.
        let mut colls = Vec::new();
        let mut names = Vec::new();
        let mut token: Option<String> = None;
        let mut pages = 0;
        loop {
            let (cs, ds, next) = m.list_page(zoo, token.as_deref(), 2).unwrap();
            assert!(cs.len() + ds.len() <= 2);
            colls.extend(cs.iter().filter_map(|c| c.path.name().map(String::from)));
            names.extend(ds.iter().map(|d| d.name.clone()));
            pages += 1;
            match next {
                Some(t) => token = Some(t),
                None => break,
            }
        }
        assert_eq!(colls, vec!["birds", "mammals"]);
        assert_eq!(names, vec!["za", "zb", "zc"]);
        assert!(pages >= 3);
        // Unknown collections error instead of paging empty.
        assert!(m.list_page(CollectionId(9999), None, 2).is_err());
    }

    #[test]
    fn list_page_token_invalidated_by_mutation() {
        let (m, ..) = seeded();
        let zoo = m.collections.resolve(&p("/zoo")).unwrap();
        let (_, _, next) = m.list_page(zoo, None, 1).unwrap();
        let token = next.unwrap();
        // In-place updates don't invalidate...
        let (_, _, _) = m.list_page(zoo, Some(&token), 1).unwrap();
        // ...but a membership change does, cleanly.
        let admin = m.admin();
        m.datasets
            .create(&m.ids, zoo, "new", "generic", admin, vec![], m.clock.now())
            .unwrap();
        let err = m.list_page(zoo, Some(&token), 1).unwrap_err();
        assert!(matches!(err, SrbError::Invalid(_)));
        // Garbage tokens are rejected the same way.
        assert!(matches!(
            m.list_page(zoo, Some("garbage"), 1).unwrap_err(),
            SrbError::Invalid(_)
        ));
    }

    #[test]
    fn query_page_concatenates_to_one_shot_query() {
        let (m, ..) = seeded();
        let q = Query::everywhere()
            .under(p("/zoo"))
            .and("wingspan", CompareOp::Gt, 0i64)
            .show("wingspan");
        let one_shot = m.query(&q).unwrap();
        assert_eq!(one_shot.len(), 2);
        let mut walked = Vec::new();
        let mut token: Option<String> = None;
        loop {
            let (hits, next) = m.query_page(&q, token.as_deref(), 1).unwrap();
            assert!(hits.len() <= 1);
            walked.extend(hits);
            match next {
                Some(t) => token = Some(t),
                None => break,
            }
        }
        assert_eq!(walked, one_shot);
        // Metadata mutations invalidate outstanding query cursors.
        let (_, next) = m.query_page(&q, None, 1).unwrap();
        let token = next.unwrap();
        m.metadata.add(
            &m.ids,
            Subject::Dataset(DatasetId(999)),
            Triplet::new("wingspan", 7, "cm"),
            MetaKind::UserDefined,
        );
        assert!(matches!(
            m.query_page(&q, Some(&token), 1).unwrap_err(),
            SrbError::Invalid(_)
        ));
    }

    #[test]
    fn query_through_linked_collection_scope() {
        let (m, _, _, lion) = seeded();
        let root = m.collections.root();
        let mammals = m.collections.resolve(&p("/zoo/mammals")).unwrap();
        m.collections
            .link(&m.ids, root, "cats", mammals, m.admin(), m.clock.now())
            .unwrap();
        // Scoping to the link finds the target's datasets.
        let q = Query::everywhere()
            .under(p("/cats"))
            .and("habitat", CompareOp::Eq, "savanna");
        let hits = m.query(&q).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dataset, lion);
    }
}

//! Users and groups.
//!
//! SRB authenticates "a user to the data handling environment" once (single
//! sign-on) and maintains ACLs "for users and user groups". The catalog
//! stores the verifier for challenge–response auth — never the password
//! itself.

use crate::wal::{WalHook, WalOp};
use serde::{Deserialize, Serialize};
use srb_types::sync::{LockRank, RwLock};
use srb_types::{hmac_sha256, GroupId, IdGen, SrbError, SrbResult, UserId};
use std::collections::HashMap;

/// A registered grid user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct User {
    /// Catalog id.
    pub id: UserId,
    /// Login name, unique per domain.
    pub name: String,
    /// Administrative domain ("sdsc", "caltech", …).
    pub domain: String,
    /// HMAC verifier derived from the password (never the password).
    pub verifier: [u8; 32],
    /// Groups this user belongs to.
    pub groups: Vec<GroupId>,
    /// Grid administrators may register proxy commands and resources.
    pub is_admin: bool,
}

impl User {
    /// Qualified name `name@domain` used in tickets and audit rows.
    pub fn qualified(&self) -> String {
        format!("{}@{}", self.name, self.domain)
    }
}

/// A user group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Group {
    /// Catalog id.
    pub id: GroupId,
    /// Group name, unique grid-wide.
    pub name: String,
    /// Member users.
    pub members: Vec<UserId>,
}

/// Domain-separated verifier derivation: HMAC(password, "srb-verifier").
pub fn derive_verifier(password: &str) -> [u8; 32] {
    hmac_sha256(password.as_bytes(), b"srb-verifier")
}

/// The user/group tables.
#[derive(Debug)]
pub struct UserTable {
    users: RwLock<Inner>,
    /// Redo-log hook; a no-op until the catalog enables durability.
    wal: WalHook,
}

impl Default for UserTable {
    fn default() -> Self {
        UserTable {
            users: RwLock::new(LockRank::McatTable, "mcat.users", Inner::default()),
            wal: WalHook::default(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    users: HashMap<UserId, User>,
    by_name: HashMap<(String, String), UserId>,
    groups: HashMap<GroupId, Group>,
    group_by_name: HashMap<String, GroupId>,
}

impl UserTable {
    /// Empty tables.
    pub fn new() -> Self {
        UserTable::default()
    }

    /// Register a user; names are unique within a domain.
    pub fn register(
        &self,
        ids: &IdGen,
        name: &str,
        domain: &str,
        password: &str,
        is_admin: bool,
    ) -> SrbResult<UserId> {
        let mut g = self.users.write();
        let key = (name.to_string(), domain.to_string());
        if g.by_name.contains_key(&key) {
            return Err(SrbError::AlreadyExists(format!("user '{name}@{domain}'")));
        }
        let id: UserId = ids.next();
        let row = User {
            id,
            name: name.to_string(),
            domain: domain.to_string(),
            verifier: derive_verifier(password),
            groups: Vec::new(),
            is_admin,
        };
        self.wal.log(0, || WalOp::UserPut { row: row.clone() });
        g.users.insert(id, row);
        g.by_name.insert(key, id);
        drop(g);
        self.wal.commit();
        Ok(id)
    }

    /// Look up by qualified name.
    pub fn find(&self, name: &str, domain: &str) -> Option<User> {
        let g = self.users.read();
        g.by_name
            .get(&(name.to_string(), domain.to_string()))
            .and_then(|id| g.users.get(id))
            .cloned()
    }

    /// Look up by id.
    pub fn get(&self, id: UserId) -> SrbResult<User> {
        self.users
            .read()
            .users
            .get(&id)
            .cloned()
            .ok_or_else(|| SrbError::NotFound(format!("user {id}")))
    }

    /// Groups the user belongs to.
    pub fn groups_of(&self, id: UserId) -> Vec<GroupId> {
        self.users
            .read()
            .users
            .get(&id)
            .map(|u| u.groups.clone())
            .unwrap_or_default()
    }

    /// Create a group.
    pub fn create_group(&self, ids: &IdGen, name: &str) -> SrbResult<GroupId> {
        let mut g = self.users.write();
        if g.group_by_name.contains_key(name) {
            return Err(SrbError::AlreadyExists(format!("group '{name}'")));
        }
        let id: GroupId = ids.next();
        let row = Group {
            id,
            name: name.to_string(),
            members: Vec::new(),
        };
        self.wal.log(0, || WalOp::GroupPut { row: row.clone() });
        g.groups.insert(id, row);
        g.group_by_name.insert(name.to_string(), id);
        drop(g);
        self.wal.commit();
        Ok(id)
    }

    /// Add a user to a group (idempotent).
    pub fn add_to_group(&self, user: UserId, group: GroupId) -> SrbResult<()> {
        let mut g = self.users.write();
        if !g.groups.contains_key(&group) {
            return Err(SrbError::NotFound(format!("group {group}")));
        }
        let u = g
            .users
            .get_mut(&user)
            .ok_or_else(|| SrbError::NotFound(format!("user {user}")))?;
        if !u.groups.contains(&group) {
            u.groups.push(group);
        }
        let grp = g
            .groups
            .get_mut(&group)
            .ok_or_else(|| SrbError::NotFound(format!("group {group}")))?;
        if !grp.members.contains(&user) {
            grp.members.push(user);
        }
        if let (Some(u), Some(grp)) = (g.users.get(&user), g.groups.get(&group)) {
            self.wal.log(0, || WalOp::UserPut { row: u.clone() });
            self.wal.log(0, || WalOp::GroupPut { row: grp.clone() });
        }
        drop(g);
        self.wal.commit();
        Ok(())
    }

    /// Remove a user from a group.
    pub fn remove_from_group(&self, user: UserId, group: GroupId) -> SrbResult<()> {
        let mut g = self.users.write();
        if let Some(u) = g.users.get_mut(&user) {
            u.groups.retain(|&gid| gid != group);
        }
        if let Some(grp) = g.groups.get_mut(&group) {
            grp.members.retain(|&uid| uid != user);
        }
        if let Some(u) = g.users.get(&user) {
            self.wal.log(0, || WalOp::UserPut { row: u.clone() });
        }
        if let Some(grp) = g.groups.get(&group) {
            self.wal.log(0, || WalOp::GroupPut { row: grp.clone() });
        }
        drop(g);
        self.wal.commit();
        Ok(())
    }

    /// Get a group.
    pub fn get_group(&self, id: GroupId) -> SrbResult<Group> {
        self.users
            .read()
            .groups
            .get(&id)
            .cloned()
            .ok_or_else(|| SrbError::NotFound(format!("group {id}")))
    }

    /// Find a group by name.
    pub fn find_group(&self, name: &str) -> Option<Group> {
        let g = self.users.read();
        g.group_by_name
            .get(name)
            .and_then(|id| g.groups.get(id))
            .cloned()
    }

    /// All groups, sorted by id (snapshots, admin pages).
    pub fn list_groups(&self) -> Vec<Group> {
        let g = self.users.read();
        let mut v: Vec<Group> = g.groups.values().cloned().collect();
        v.sort_by_key(|x| x.id);
        v
    }

    /// Rebuild the table from snapshot rows.
    pub fn restore(users: Vec<User>, groups: Vec<Group>) -> Self {
        let t = UserTable::new();
        {
            let mut g = t.users.write();
            for u in users {
                g.by_name.insert((u.name.clone(), u.domain.clone()), u.id);
                g.users.insert(u.id, u);
            }
            for grp in groups {
                g.group_by_name.insert(grp.name.clone(), grp.id);
                g.groups.insert(grp.id, grp);
            }
        }
        t
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.users.read().users.len()
    }

    /// All users (for MySRB admin pages), sorted by id.
    pub fn list_users(&self) -> Vec<User> {
        let g = self.users.read();
        let mut v: Vec<User> = g.users.values().cloned().collect();
        v.sort_by_key(|u| u.id);
        v
    }

    /// Wire this table to the catalog's WAL.
    pub(crate) fn attach_wal(&self, wal: std::sync::Arc<crate::wal::Wal>) {
        self.wal.attach(wal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (UserTable, IdGen) {
        (UserTable::new(), IdGen::new())
    }

    #[test]
    fn register_and_find() {
        let (t, ids) = table();
        let id = t.register(&ids, "sekar", "sdsc", "pw", false).unwrap();
        let u = t.find("sekar", "sdsc").unwrap();
        assert_eq!(u.id, id);
        assert_eq!(u.qualified(), "sekar@sdsc");
        assert!(t.find("sekar", "caltech").is_none());
    }

    #[test]
    fn duplicate_in_same_domain_rejected() {
        let (t, ids) = table();
        t.register(&ids, "moore", "sdsc", "a", false).unwrap();
        assert!(t.register(&ids, "moore", "sdsc", "b", false).is_err());
        // Same name in another domain is fine.
        assert!(t.register(&ids, "moore", "npaci", "c", false).is_ok());
    }

    #[test]
    fn verifier_is_not_the_password() {
        let (t, ids) = table();
        t.register(&ids, "u", "d", "secret", false).unwrap();
        let u = t.find("u", "d").unwrap();
        assert_ne!(&u.verifier[..], b"secret");
        assert_eq!(u.verifier, derive_verifier("secret"));
        assert_ne!(derive_verifier("secret"), derive_verifier("Secret"));
    }

    #[test]
    fn group_membership_round_trip() {
        let (t, ids) = table();
        let u = t.register(&ids, "u", "d", "p", false).unwrap();
        let g = t.create_group(&ids, "curators").unwrap();
        t.add_to_group(u, g).unwrap();
        assert_eq!(t.groups_of(u), vec![g]);
        assert_eq!(t.get_group(g).unwrap().members, vec![u]);
        // Idempotent.
        t.add_to_group(u, g).unwrap();
        assert_eq!(t.groups_of(u).len(), 1);
        t.remove_from_group(u, g).unwrap();
        assert!(t.groups_of(u).is_empty());
        assert!(t.get_group(g).unwrap().members.is_empty());
    }

    #[test]
    fn group_names_unique() {
        let (t, ids) = table();
        t.create_group(&ids, "g").unwrap();
        assert!(t.create_group(&ids, "g").is_err());
        assert!(t.find_group("g").is_some());
        assert!(t.find_group("h").is_none());
    }

    #[test]
    fn add_to_missing_group_or_user_errors() {
        let (t, ids) = table();
        let u = t.register(&ids, "u", "d", "p", false).unwrap();
        assert!(t.add_to_group(u, GroupId(99)).is_err());
        let g = t.create_group(&ids, "g").unwrap();
        assert!(t.add_to_group(UserId(99), g).is_err());
    }

    #[test]
    fn list_users_sorted() {
        let (t, ids) = table();
        t.register(&ids, "a", "d", "p", false).unwrap();
        t.register(&ids, "b", "d", "p", true).unwrap();
        let users = t.list_users();
        assert_eq!(users.len(), 2);
        assert!(users[0].id < users[1].id);
        assert_eq!(t.user_count(), 2);
    }
}

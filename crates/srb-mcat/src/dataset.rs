//! Datasets, replicas, registered objects, locks and versions.
//!
//! A *dataset* is one logical digital entity in the name space. Its
//! replicas each carry an [`AccessSpec`] saying how to reach the bytes —
//! an SRB-stored copy, a registered file, a shadow directory, a live SQL
//! query, a URL, or a method object (the paper's five registration types).
//! "Register replicate" works because a replica can carry *any* spec:
//! SRB "does not check whether a registered replica is really an equal of
//! the other copy".

use crate::wal::{WalHook, WalOp};
use serde::{Deserialize, Serialize};
use srb_types::sync::{LockRank, RwLock, RwLockReadGuard};
use srb_types::{
    AccessMatrix, CollectionId, ContainerId, DatasetId, GenCounter, Generation, IdGen, ReplicaId,
    ResourceId, SrbError, SrbResult, Timestamp, UserId,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;

/// Rendering template for registered SQL objects (paper: `HTMLREL`,
/// `HTMLNEST`, `XMLREL`, or a user style-sheet held in SRB).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Template {
    /// Relational HTML table.
    HtmlRel,
    /// Nested HTML table.
    HtmlNest,
    /// XML with a simple DTD.
    XmlRel,
    /// A T-language style-sheet stored as another SRB dataset.
    StyleSheet(DatasetId),
}

/// How to reach the bytes (or rows) of one replica.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccessSpec {
    /// A copy fully under SRB control on a storage resource.
    Stored {
        /// The physical resource holding the copy.
        resource: ResourceId,
        /// Physical path within the resource.
        phys_path: String,
    },
    /// A registered file: SRB keeps only a pointer; size and content "might
    /// change without SRB being aware".
    RegisteredFile {
        /// The physical resource holding the file.
        resource: ResourceId,
        /// Physical path within the resource.
        phys_path: String,
    },
    /// A registered directory ("shadow directory object"): the cone of
    /// files under it is visible, but no ingestion/update through it.
    ShadowDir {
        /// The physical resource holding the directory.
        resource: ResourceId,
        /// Directory path within the resource.
        dir_path: String,
    },
    /// A registered SQL query, executed at retrieval time.
    Sql {
        /// The database resource to query.
        resource: ResourceId,
        /// Full or partial query text (must start with SELECT).
        sql: String,
        /// Whether the query is partial (completed at retrieval time).
        partial: bool,
        /// Pretty-printing template.
        template: Template,
    },
    /// A registered URL, fetched at retrieval time.
    Url {
        /// The URL (http/ftp/cgi).
        url: String,
    },
    /// A method object (virtual data): a remote proxy command or an
    /// in-server proxy function.
    Method {
        /// Registered command or function name.
        name: String,
        /// True for in-server proxy functions, false for bin commands.
        is_function: bool,
        /// Default command-line arguments.
        default_args: Vec<String>,
    },
}

impl AccessSpec {
    /// Is this replica a physical copy SRB can read bytes from directly?
    pub fn is_byte_addressable(&self) -> bool {
        matches!(
            self,
            AccessSpec::Stored { .. } | AccessSpec::RegisteredFile { .. }
        )
    }

    /// Is this replica fully under SRB control (deletable data)?
    pub fn is_srb_controlled(&self) -> bool {
        matches!(self, AccessSpec::Stored { .. })
    }

    /// The resource this spec touches, when there is one.
    pub fn resource(&self) -> Option<ResourceId> {
        match self {
            AccessSpec::Stored { resource, .. }
            | AccessSpec::RegisteredFile { resource, .. }
            | AccessSpec::ShadowDir { resource, .. }
            | AccessSpec::Sql { resource, .. } => Some(*resource),
            AccessSpec::Url { .. } | AccessSpec::Method { .. } => None,
        }
    }

    /// Short type label shown in MySRB listings.
    pub fn type_label(&self) -> &'static str {
        match self {
            AccessSpec::Stored { .. } => "file",
            AccessSpec::RegisteredFile { .. } => "registered-file",
            AccessSpec::ShadowDir { .. } => "directory",
            AccessSpec::Sql { .. } => "sql",
            AccessSpec::Url { .. } => "url",
            AccessSpec::Method { .. } => "method",
        }
    }
}

/// Replica health, used by failover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicaStatus {
    /// Consistent with the latest write.
    UpToDate,
    /// Missed a write (e.g. its resource was down during an update) and
    /// needs resynchronization.
    Stale,
}

/// Placement of a replica's bytes inside a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainerSlice {
    /// The container holding the bytes.
    pub container: ContainerId,
    /// Byte offset within the container.
    pub offset: u64,
    /// Length of the slice.
    pub len: u64,
}

/// One replica of a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Replica {
    /// Catalog id.
    pub id: ReplicaId,
    /// Replica number, unique within the dataset ("a replica number is
    /// uniquely determined for the new replica").
    pub repl_num: u32,
    /// How to reach the bytes.
    pub spec: AccessSpec,
    /// Size in bytes (0 for non-byte objects; advisory for registered
    /// files).
    pub size: u64,
    /// SHA-256 checksum of SRB-controlled content.
    pub checksum: Option<String>,
    /// Set when the bytes live inside a container rather than standalone.
    pub in_container: Option<ContainerSlice>,
    /// Replica health.
    pub status: ReplicaStatus,
    /// Pin expiry, when pinned to its resource.
    pub pinned_until: Option<Timestamp>,
    /// Creation time.
    pub created: Timestamp,
}

/// Lock flavour (paper: shared and exclusive locks with expiry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockKind {
    /// Others may read but not write.
    Shared,
    /// No interactions by anyone but the holder.
    Exclusive,
}

/// An active lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockState {
    /// Lock flavour.
    pub kind: LockKind,
    /// Holder.
    pub holder: UserId,
    /// Expiry (virtual time); after this the lock is void.
    pub expires: Timestamp,
}

/// An active checkout (crude version control, paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckoutState {
    /// Who checked the object out.
    pub holder: UserId,
    /// When.
    pub at: Timestamp,
}

/// A preserved earlier version, written at checkin time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionRecord {
    /// Distinct version number (1 = first preserved version).
    pub version: u32,
    /// Resource holding the preserved copy.
    pub resource: ResourceId,
    /// Physical path of the preserved copy.
    pub phys_path: String,
    /// Size of the preserved copy.
    pub size: u64,
    /// Who checked it in.
    pub by: UserId,
    /// When.
    pub at: Timestamp,
}

/// One dataset row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Catalog id.
    pub id: DatasetId,
    /// Owning collection.
    pub coll: CollectionId,
    /// Name within the collection.
    pub name: String,
    /// Data type ("generic", "fits image", "ascii text", …) — drives
    /// type-oriented metadata and extraction methods.
    pub data_type: String,
    /// Creating user.
    pub owner: UserId,
    /// Access matrix.
    pub acl: AccessMatrix,
    /// Replicas, ordered by `repl_num`.
    pub replicas: Vec<Replica>,
    /// Soft-link target: set for link objects, which have no replicas of
    /// their own.
    pub link_target: Option<DatasetId>,
    /// Active lock, if any.
    pub lock: Option<LockState>,
    /// Active checkout, if any.
    pub checkout: Option<CheckoutState>,
    /// Preserved versions, oldest first.
    pub versions: Vec<VersionRecord>,
    /// Current version number (increments at checkin).
    pub current_version: u32,
    /// Creation time.
    pub created: Timestamp,
    /// Last modification time.
    pub modified: Timestamp,
}

impl Dataset {
    /// The highest replica number in use.
    pub fn max_repl_num(&self) -> u32 {
        self.replicas.iter().map(|r| r.repl_num).max().unwrap_or(0)
    }

    /// Logical size: the size of the first up-to-date replica.
    pub fn size(&self) -> u64 {
        self.replicas
            .iter()
            .find(|r| r.status == ReplicaStatus::UpToDate)
            .or(self.replicas.first())
            .map(|r| r.size)
            .unwrap_or(0)
    }

    /// Type label for listings (derived from the primary replica).
    pub fn type_label(&self) -> &'static str {
        if self.link_target.is_some() {
            return "link";
        }
        self.replicas
            .first()
            .map(|r| r.spec.type_label())
            .unwrap_or("empty")
    }

    /// Is the lock currently effective?
    pub fn effective_lock(&self, now: Timestamp) -> Option<LockState> {
        self.lock.filter(|l| l.expires > now)
    }

    /// May `user` write this dataset at `now`, given lock/checkout state?
    /// (ACL checks are separate.)
    pub fn write_allowed_by_locks(&self, user: UserId, now: Timestamp) -> SrbResult<()> {
        if let Some(l) = self.effective_lock(now) {
            if l.holder != user {
                return Err(SrbError::Locked(format!(
                    "dataset {} locked ({:?}) by {}",
                    self.id, l.kind, l.holder
                )));
            }
        }
        if let Some(c) = self.checkout {
            if c.holder != user {
                return Err(SrbError::Locked(format!(
                    "dataset {} checked out by {}",
                    self.id, c.holder
                )));
            }
        }
        Ok(())
    }

    /// May `user` read this dataset at `now`, given lock state?
    pub fn read_allowed_by_locks(&self, user: UserId, now: Timestamp) -> SrbResult<()> {
        if let Some(l) = self.effective_lock(now) {
            if l.kind == LockKind::Exclusive && l.holder != user {
                return Err(SrbError::Locked(format!(
                    "dataset {} exclusively locked by {}",
                    self.id, l.holder
                )));
            }
        }
        Ok(())
    }
}

/// One dataset to create in a [`DatasetTable::create_batch`] call: the
/// name plus its initial replicas as `(spec, size, checksum, status)` —
/// stale rows record replicas whose resource was down during the bulk
/// fan-out (repairable via `sync_replicas`).
#[derive(Debug, Clone)]
pub struct NewDataset {
    /// Name within the target collection.
    pub name: String,
    /// Initial replicas: spec, size, checksum, health.
    pub replicas: Vec<(AccessSpec, u64, Option<String>, ReplicaStatus)>,
}

/// The dataset table.
#[derive(Debug)]
pub struct DatasetTable {
    inner: RwLock<Inner>,
    /// Bumped on any change to collection membership or naming (create,
    /// link, move, delete) — the stamp paged listings embed in cursor
    /// tokens. In-place row updates (replicas, locks, ACLs) do not bump
    /// it: they cannot change which names a page serves or their order.
    generation: GenCounter,
    /// Redo-log hook; a no-op until the catalog enables durability.
    wal: WalHook,
}

impl Default for DatasetTable {
    fn default() -> Self {
        DatasetTable {
            inner: RwLock::new(LockRank::McatTable, "mcat.datasets", Inner::default()),
            generation: GenCounter::new(),
            wal: WalHook::default(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    rows: HashMap<DatasetId, Dataset>,
    /// Ordered by (collection, name): one bounded range serves both name
    /// lookup and the O(page) listing scans behind resumable cursors.
    by_name: BTreeMap<(CollectionId, String), DatasetId>,
    by_coll: HashMap<CollectionId, Vec<DatasetId>>,
}

impl DatasetTable {
    /// Empty table.
    pub fn new() -> Self {
        DatasetTable::default()
    }

    /// Create a dataset with initial replicas.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &self,
        ids: &IdGen,
        coll: CollectionId,
        name: &str,
        data_type: &str,
        owner: UserId,
        replicas: Vec<(AccessSpec, u64, Option<String>)>,
        now: Timestamp,
    ) -> SrbResult<DatasetId> {
        let mut g = self.inner.write();
        let key = (coll, name.to_string());
        if g.by_name.contains_key(&key) {
            return Err(SrbError::AlreadyExists(format!(
                "dataset '{name}' in collection {coll}"
            )));
        }
        let id: DatasetId = ids.next();
        let reps = replicas
            .into_iter()
            .enumerate()
            .map(|(i, (spec, size, checksum))| Replica {
                id: ids.next(),
                repl_num: (i + 1) as u32,
                spec,
                size,
                checksum,
                in_container: None,
                status: ReplicaStatus::UpToDate,
                pinned_until: None,
                created: now,
            })
            .collect();
        let row = Dataset {
            id,
            coll,
            name: name.to_string(),
            data_type: data_type.to_string(),
            owner,
            acl: AccessMatrix::owned_by(owner),
            replicas: reps,
            link_target: None,
            lock: None,
            checkout: None,
            versions: Vec::new(),
            current_version: 1,
            created: now,
            modified: now,
        };
        let gen = self.generation.bump_get().raw();
        self.wal.log(gen, || WalOp::DatasetPut { row: row.clone() });
        g.rows.insert(id, row);
        g.by_name.insert(key, id);
        g.by_coll.entry(coll).or_default().push(id);
        drop(g);
        self.wal.commit();
        Ok(id)
    }

    /// Create many datasets in one collection under a single write-lock
    /// acquisition — the catalog half of bulk ingest. All-or-nothing:
    /// every name is validated (against the table and within the batch)
    /// before the first row is inserted, so a duplicate anywhere leaves
    /// the table untouched. Ids are assigned in batch order.
    pub fn create_batch(
        &self,
        ids: &IdGen,
        coll: CollectionId,
        data_type: &str,
        owner: UserId,
        batch: Vec<NewDataset>,
        now: Timestamp,
    ) -> SrbResult<Vec<DatasetId>> {
        let mut g = self.inner.write();
        let mut in_batch: HashSet<&str> = HashSet::with_capacity(batch.len());
        for nd in &batch {
            if g.by_name.contains_key(&(coll, nd.name.clone())) || !in_batch.insert(&nd.name) {
                return Err(SrbError::AlreadyExists(format!(
                    "dataset '{}' in collection {coll}",
                    nd.name
                )));
            }
        }
        let mut out = Vec::with_capacity(batch.len());
        // One generation bump covers the whole batch: pages cut before it
        // are invalidated once, not once per row.
        let gen = self.generation.bump_get().raw();
        for nd in batch {
            let id: DatasetId = ids.next();
            let reps = nd
                .replicas
                .into_iter()
                .enumerate()
                .map(|(i, (spec, size, checksum, status))| Replica {
                    id: ids.next(),
                    repl_num: (i + 1) as u32,
                    spec,
                    size,
                    checksum,
                    in_container: None,
                    status,
                    pinned_until: None,
                    created: now,
                })
                .collect();
            let row = Dataset {
                id,
                coll,
                name: nd.name.clone(),
                data_type: data_type.to_string(),
                owner,
                acl: AccessMatrix::owned_by(owner),
                replicas: reps,
                link_target: None,
                lock: None,
                checkout: None,
                versions: Vec::new(),
                current_version: 1,
                created: now,
                modified: now,
            };
            self.wal.log(gen, || WalOp::DatasetPut { row: row.clone() });
            g.rows.insert(id, row);
            g.by_name.insert((coll, nd.name), id);
            g.by_coll.entry(coll).or_default().push(id);
            out.push(id);
        }
        drop(g);
        self.wal.commit();
        Ok(out)
    }

    /// Create a soft-link dataset pointing at `target`. Chaining collapses
    /// ("an attempt to link to another link object will result in a direct
    /// link to the parent object").
    pub fn create_link(
        &self,
        ids: &IdGen,
        coll: CollectionId,
        name: &str,
        target: DatasetId,
        owner: UserId,
        now: Timestamp,
    ) -> SrbResult<DatasetId> {
        let mut g = self.inner.write();
        let resolved = {
            let t = g
                .rows
                .get(&target)
                .ok_or_else(|| SrbError::NotFound(format!("dataset {target}")))?;
            t.link_target.unwrap_or(target)
        };
        let key = (coll, name.to_string());
        if g.by_name.contains_key(&key) {
            return Err(SrbError::AlreadyExists(format!(
                "dataset '{name}' in collection {coll}"
            )));
        }
        let id: DatasetId = ids.next();
        let row = Dataset {
            id,
            coll,
            name: name.to_string(),
            data_type: "link".to_string(),
            owner,
            acl: AccessMatrix::owned_by(owner),
            replicas: Vec::new(),
            link_target: Some(resolved),
            lock: None,
            checkout: None,
            versions: Vec::new(),
            current_version: 1,
            created: now,
            modified: now,
        };
        let gen = self.generation.bump_get().raw();
        self.wal.log(gen, || WalOp::DatasetPut { row: row.clone() });
        g.rows.insert(id, row);
        g.by_name.insert(key, id);
        g.by_coll.entry(coll).or_default().push(id);
        drop(g);
        self.wal.commit();
        Ok(id)
    }

    /// Get a dataset (no link following).
    pub fn get(&self, id: DatasetId) -> SrbResult<Dataset> {
        self.inner
            .read()
            .rows
            .get(&id)
            .cloned()
            .ok_or_else(|| SrbError::NotFound(format!("dataset {id}")))
    }

    /// Follow a link chain (already collapsed to depth ≤ 1) to the real
    /// dataset.
    pub fn resolve_links(&self, id: DatasetId) -> SrbResult<Dataset> {
        let d = self.get(id)?;
        match d.link_target {
            Some(t) => self.get(t),
            None => Ok(d),
        }
    }

    /// Find by collection + name.
    pub fn find(&self, coll: CollectionId, name: &str) -> Option<DatasetId> {
        self.inner
            .read()
            .by_name
            .get(&(coll, name.to_string()))
            .copied()
    }

    /// Datasets directly in a collection, sorted by name — one bounded
    /// range over the ordered name index, no per-call sort.
    pub fn list(&self, coll: CollectionId) -> Vec<Dataset> {
        let g = self.inner.read();
        g.by_name
            .range((coll, String::new())..)
            .take_while(|((c, _), _)| *c == coll)
            .filter_map(|(_, id)| g.rows.get(id))
            .cloned()
            .collect()
    }

    /// One page of a collection listing in name order, resuming strictly
    /// after `after` (None starts at the beginning). Returns up to `limit`
    /// rows plus whether more remain — O(page), not O(offset), no matter
    /// how deep the cursor is.
    pub fn list_page(
        &self,
        coll: CollectionId,
        after: Option<&str>,
        limit: usize,
    ) -> (Vec<Dataset>, bool) {
        let g = self.inner.read();
        let start = match after {
            Some(name) => Bound::Excluded((coll, name.to_string())),
            None => Bound::Included((coll, String::new())),
        };
        let mut iter = g
            .by_name
            .range((start, Bound::Unbounded))
            .take_while(|((c, _), _)| *c == coll)
            .filter_map(|(_, id)| g.rows.get(id));
        let mut page = Vec::with_capacity(limit.min(1024));
        for d in iter.by_ref() {
            if page.len() == limit {
                return (page, true);
            }
            page.push(d.clone());
        }
        (page, false)
    }

    /// Mutate a dataset in place under the table lock. In-place edits do
    /// not bump the listing generation, but the full post-image is still
    /// redo-logged so replicas, locks and versions survive recovery.
    pub fn update<F, R>(&self, id: DatasetId, f: F) -> SrbResult<R>
    where
        F: FnOnce(&mut Dataset) -> SrbResult<R>,
    {
        let mut g = self.inner.write();
        let d = g
            .rows
            .get_mut(&id)
            .ok_or_else(|| SrbError::NotFound(format!("dataset {id}")))?;
        let out = f(d)?;
        let row = &*d;
        self.wal.log(0, || WalOp::DatasetPut { row: row.clone() });
        drop(g);
        self.wal.commit();
        Ok(out)
    }

    /// Add a replica; returns the assigned replica number.
    pub fn add_replica(
        &self,
        ids: &IdGen,
        dataset: DatasetId,
        spec: AccessSpec,
        size: u64,
        checksum: Option<String>,
        now: Timestamp,
    ) -> SrbResult<u32> {
        self.add_replica_with_status(
            ids,
            dataset,
            spec,
            size,
            checksum,
            ReplicaStatus::UpToDate,
            now,
        )
    }

    /// Add a replica with an explicit health status. A `Stale` row records
    /// a replica whose target resource was down when the bytes fanned out
    /// (the phys path is reserved; `sync_replicas` writes it later).
    #[allow(clippy::too_many_arguments)]
    pub fn add_replica_with_status(
        &self,
        ids: &IdGen,
        dataset: DatasetId,
        spec: AccessSpec,
        size: u64,
        checksum: Option<String>,
        status: ReplicaStatus,
        now: Timestamp,
    ) -> SrbResult<u32> {
        let rid: ReplicaId = ids.next();
        self.update(dataset, |d| {
            let repl_num = d.max_repl_num() + 1;
            d.replicas.push(Replica {
                id: rid,
                repl_num,
                spec,
                size,
                checksum,
                in_container: None,
                status,
                pinned_until: None,
                created: now,
            });
            d.modified = now;
            Ok(repl_num)
        })
    }

    /// Remove one replica by replica number; returns the removed replica
    /// and whether it was the last one.
    pub fn remove_replica(&self, dataset: DatasetId, repl_num: u32) -> SrbResult<(Replica, bool)> {
        self.update(dataset, |d| {
            let idx = d
                .replicas
                .iter()
                .position(|r| r.repl_num == repl_num)
                .ok_or_else(|| {
                    SrbError::NotFound(format!("replica #{repl_num} of dataset {dataset}"))
                })?;
            let r = d.replicas.remove(idx);
            Ok((r, d.replicas.is_empty()))
        })
    }

    /// Move a dataset to another collection (logical move; metadata stays).
    pub fn move_dataset(
        &self,
        id: DatasetId,
        new_coll: CollectionId,
        new_name: &str,
    ) -> SrbResult<()> {
        let mut g = self.inner.write();
        let key_new = (new_coll, new_name.to_string());
        if g.by_name.contains_key(&key_new) {
            return Err(SrbError::AlreadyExists(format!(
                "dataset '{new_name}' in collection {new_coll}"
            )));
        }
        let d = g
            .rows
            .get_mut(&id)
            .ok_or_else(|| SrbError::NotFound(format!("dataset {id}")))?;
        let key_old = (d.coll, d.name.clone());
        let old_coll = d.coll;
        d.coll = new_coll;
        d.name = new_name.to_string();
        g.by_name.remove(&key_old);
        g.by_name.insert(key_new, id);
        if let Some(v) = g.by_coll.get_mut(&old_coll) {
            v.retain(|&x| x != id);
        }
        g.by_coll.entry(new_coll).or_default().push(id);
        let gen = self.generation.bump_get().raw();
        if let Some(row) = g.rows.get(&id) {
            self.wal.log(gen, || WalOp::DatasetPut { row: row.clone() });
        }
        drop(g);
        self.wal.commit();
        Ok(())
    }

    /// Delete a dataset row entirely (caller has already dealt with data).
    pub fn delete(&self, id: DatasetId) -> SrbResult<Dataset> {
        let mut g = self.inner.write();
        let d = g
            .rows
            .remove(&id)
            .ok_or_else(|| SrbError::NotFound(format!("dataset {id}")))?;
        g.by_name.remove(&(d.coll, d.name.clone()));
        if let Some(v) = g.by_coll.get_mut(&d.coll) {
            v.retain(|&x| x != id);
        }
        let gen = self.generation.bump_get().raw();
        self.wal.log(gen, || WalOp::DatasetDelete { id });
        drop(g);
        self.wal.commit();
        Ok(d)
    }

    /// Any link datasets pointing at `target`.
    pub fn links_to(&self, target: DatasetId) -> Vec<DatasetId> {
        self.inner
            .read()
            .rows
            .values()
            .filter(|d| d.link_target == Some(target))
            .map(|d| d.id)
            .collect()
    }

    /// Total number of datasets.
    pub fn count(&self) -> usize {
        self.inner.read().rows.len()
    }

    /// Every dataset row, sorted by id (snapshots).
    pub fn dump(&self) -> Vec<Dataset> {
        let g = self.inner.read();
        let mut v: Vec<Dataset> = g.rows.values().cloned().collect();
        v.sort_by_key(|d| d.id);
        v
    }

    /// Rebuild the table (name + collection indexes) from snapshot rows.
    pub fn restore(rows: Vec<Dataset>) -> Self {
        let t = DatasetTable::default();
        {
            let mut g = t.inner.write();
            for d in rows {
                g.by_name.insert((d.coll, d.name.clone()), d.id);
                g.by_coll.entry(d.coll).or_default().push(d.id);
                g.rows.insert(d.id, d);
            }
        }
        t
    }

    /// Iterate over all datasets (used by the scan query path).
    pub fn for_each<F: FnMut(&Dataset)>(&self, mut f: F) {
        for d in self.inner.read().rows.values() {
            f(d);
        }
    }

    /// Datasets holding at least one `Stale` replica, paired with the
    /// resources those stale replicas live on — the work list of the
    /// maintenance repair sweep. Sorted by dataset id so sweeps are
    /// deterministic.
    pub fn with_stale_replicas(&self) -> Vec<(DatasetId, Vec<ResourceId>)> {
        let g = self.inner.read();
        let mut out: Vec<(DatasetId, Vec<ResourceId>)> = g
            .rows
            .values()
            .filter_map(|d| {
                let resources: Vec<ResourceId> = d
                    .replicas
                    .iter()
                    .filter(|r| r.status == ReplicaStatus::Stale)
                    .filter_map(|r| r.spec.resource())
                    .collect();
                (!resources.is_empty()).then_some((d.id, resources))
            })
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Ids of every dataset whose collection is in `colls`, under one read
    /// guard and without cloning any row — the scope-expansion primitive
    /// of the query engine. Order follows each collection's insertion
    /// order; callers needing a stable order sort the resulting hits.
    pub fn ids_in_colls(&self, colls: &HashSet<CollectionId>) -> Vec<DatasetId> {
        let g = self.inner.read();
        let mut out = Vec::new();
        for coll in colls {
            if let Some(ids) = g.by_coll.get(coll) {
                out.extend_from_slice(ids);
            }
        }
        out
    }

    /// Number of datasets whose collection is in `colls` — the planner's
    /// scope size, without materializing any id list.
    pub fn count_in_colls(&self, colls: &HashSet<CollectionId>) -> usize {
        let g = self.inner.read();
        colls
            .iter()
            .filter_map(|c| g.by_coll.get(c))
            .map(Vec::len)
            .sum()
    }

    /// Current membership/naming generation (cursor invalidation).
    pub fn generation(&self) -> Generation {
        self.generation.current()
    }

    /// Fast-forward the generation counter to at least `raw` — called when
    /// a snapshot or WAL replay restores a catalog, so cursor tokens minted
    /// before the restart stay comparable.
    pub fn restore_generation(&self, raw: u64) {
        self.generation.ensure_at_least(raw);
    }

    /// Wire this table to the catalog's WAL.
    pub(crate) fn attach_wal(&self, wal: std::sync::Arc<crate::wal::Wal>) {
        self.wal.attach(wal);
    }

    /// A read guard over the table for batch verification: one lock
    /// acquisition serves any number of borrowed row lookups.
    pub fn batch(&self) -> DatasetBatch<'_> {
        DatasetBatch {
            g: self.inner.read(),
        }
    }
}

/// Borrowed row access under one read guard; see [`DatasetTable::batch`].
pub struct DatasetBatch<'a> {
    g: RwLockReadGuard<'a, Inner>,
}

impl DatasetBatch<'_> {
    /// The dataset row, borrowed from the table (no link following).
    pub fn get_ref(&self, id: DatasetId) -> Option<&Dataset> {
        self.g.rows.get(&id)
    }

    /// Is a name already taken in `coll`? Used by bulk ingest to reject
    /// duplicates before any bytes move, under one read guard for the
    /// whole batch.
    pub fn contains_name(&self, coll: CollectionId, name: &str) -> bool {
        self.g.by_name.contains_key(&(coll, name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stored(r: u64) -> AccessSpec {
        AccessSpec::Stored {
            resource: ResourceId(r),
            phys_path: format!("/phys/{r}"),
        }
    }

    fn table() -> (DatasetTable, IdGen) {
        (DatasetTable::new(), IdGen::new())
    }

    #[test]
    fn create_and_find() {
        let (t, ids) = table();
        let id = t
            .create(
                &ids,
                CollectionId(1),
                "a.txt",
                "ascii text",
                UserId(1),
                vec![(stored(1), 5, None)],
                Timestamp(0),
            )
            .unwrap();
        assert_eq!(t.find(CollectionId(1), "a.txt"), Some(id));
        assert_eq!(t.find(CollectionId(2), "a.txt"), None);
        let d = t.get(id).unwrap();
        assert_eq!(d.size(), 5);
        assert_eq!(d.type_label(), "file");
        assert_eq!(d.replicas[0].repl_num, 1);
    }

    #[test]
    fn duplicate_name_in_collection_rejected() {
        let (t, ids) = table();
        t.create(
            &ids,
            CollectionId(1),
            "x",
            "generic",
            UserId(1),
            vec![],
            Timestamp(0),
        )
        .unwrap();
        assert!(t
            .create(
                &ids,
                CollectionId(1),
                "x",
                "generic",
                UserId(1),
                vec![],
                Timestamp(0)
            )
            .is_err());
    }

    #[test]
    fn replica_numbers_monotone_across_removal() {
        let (t, ids) = table();
        let id = t
            .create(
                &ids,
                CollectionId(1),
                "x",
                "generic",
                UserId(1),
                vec![(stored(1), 4, None)],
                Timestamp(0),
            )
            .unwrap();
        let n2 = t
            .add_replica(&ids, id, stored(2), 4, None, Timestamp(1))
            .unwrap();
        assert_eq!(n2, 2);
        t.remove_replica(id, 2).unwrap();
        // A later replica gets a fresh number, never reusing a live one.
        let n3 = t
            .add_replica(&ids, id, stored(3), 4, None, Timestamp(2))
            .unwrap();
        assert_eq!(n3, 2); // max live is 1 → next is 2 (paper doesn't require global uniqueness)
        let (_, last) = t.remove_replica(id, 1).unwrap();
        assert!(!last);
        let (_, last) = t.remove_replica(id, 2).unwrap();
        assert!(last);
    }

    #[test]
    fn link_collapses_chains() {
        let (t, ids) = table();
        let real = t
            .create(
                &ids,
                CollectionId(1),
                "real",
                "generic",
                UserId(1),
                vec![(stored(1), 1, None)],
                Timestamp(0),
            )
            .unwrap();
        let l1 = t
            .create_link(&ids, CollectionId(2), "l1", real, UserId(1), Timestamp(0))
            .unwrap();
        let l2 = t
            .create_link(&ids, CollectionId(3), "l2", l1, UserId(1), Timestamp(0))
            .unwrap();
        assert_eq!(t.get(l2).unwrap().link_target, Some(real));
        assert_eq!(t.resolve_links(l2).unwrap().id, real);
        assert_eq!(t.get(l1).unwrap().type_label(), "link");
        let mut links = t.links_to(real);
        links.sort();
        assert_eq!(links, vec![l1, l2]);
    }

    #[test]
    fn move_dataset_updates_indexes() {
        let (t, ids) = table();
        let id = t
            .create(
                &ids,
                CollectionId(1),
                "x",
                "generic",
                UserId(1),
                vec![],
                Timestamp(0),
            )
            .unwrap();
        t.move_dataset(id, CollectionId(2), "y").unwrap();
        assert_eq!(t.find(CollectionId(2), "y"), Some(id));
        assert_eq!(t.find(CollectionId(1), "x"), None);
        assert!(t.list(CollectionId(1)).is_empty());
        assert_eq!(t.list(CollectionId(2)).len(), 1);
    }

    #[test]
    fn locks_gate_writes_and_reads() {
        let (t, ids) = table();
        let id = t
            .create(
                &ids,
                CollectionId(1),
                "x",
                "generic",
                UserId(1),
                vec![],
                Timestamp(0),
            )
            .unwrap();
        t.update(id, |d| {
            d.lock = Some(LockState {
                kind: LockKind::Shared,
                holder: UserId(1),
                expires: Timestamp(1_000),
            });
            Ok(())
        })
        .unwrap();
        let d = t.get(id).unwrap();
        // Shared: others can read, not write; holder can write.
        assert!(d.read_allowed_by_locks(UserId(2), Timestamp(0)).is_ok());
        assert!(d.write_allowed_by_locks(UserId(2), Timestamp(0)).is_err());
        assert!(d.write_allowed_by_locks(UserId(1), Timestamp(0)).is_ok());
        // After expiry the lock is void.
        assert!(d
            .write_allowed_by_locks(UserId(2), Timestamp(2_000))
            .is_ok());
        // Exclusive: others cannot even read.
        t.update(id, |d| {
            d.lock = Some(LockState {
                kind: LockKind::Exclusive,
                holder: UserId(1),
                expires: Timestamp(1_000),
            });
            Ok(())
        })
        .unwrap();
        let d = t.get(id).unwrap();
        assert!(d.read_allowed_by_locks(UserId(2), Timestamp(0)).is_err());
        assert!(d.read_allowed_by_locks(UserId(1), Timestamp(0)).is_ok());
    }

    #[test]
    fn checkout_blocks_other_writers() {
        let (t, ids) = table();
        let id = t
            .create(
                &ids,
                CollectionId(1),
                "x",
                "generic",
                UserId(1),
                vec![],
                Timestamp(0),
            )
            .unwrap();
        t.update(id, |d| {
            d.checkout = Some(CheckoutState {
                holder: UserId(1),
                at: Timestamp(0),
            });
            Ok(())
        })
        .unwrap();
        let d = t.get(id).unwrap();
        assert!(d.write_allowed_by_locks(UserId(2), Timestamp(0)).is_err());
        assert!(d.write_allowed_by_locks(UserId(1), Timestamp(0)).is_ok());
    }

    #[test]
    fn delete_removes_all_indexes() {
        let (t, ids) = table();
        let id = t
            .create(
                &ids,
                CollectionId(1),
                "x",
                "generic",
                UserId(1),
                vec![],
                Timestamp(0),
            )
            .unwrap();
        t.delete(id).unwrap();
        assert!(t.get(id).is_err());
        assert_eq!(t.find(CollectionId(1), "x"), None);
        assert_eq!(t.count(), 0);
        assert!(t.delete(id).is_err());
    }

    #[test]
    fn spec_classification() {
        assert!(stored(1).is_byte_addressable());
        assert!(stored(1).is_srb_controlled());
        let reg = AccessSpec::RegisteredFile {
            resource: ResourceId(1),
            phys_path: "/x".into(),
        };
        assert!(reg.is_byte_addressable());
        assert!(!reg.is_srb_controlled());
        let url = AccessSpec::Url {
            url: "http://x/".into(),
        };
        assert!(!url.is_byte_addressable());
        assert_eq!(url.resource(), None);
        assert_eq!(url.type_label(), "url");
        let sql = AccessSpec::Sql {
            resource: ResourceId(2),
            sql: "select 1".into(),
            partial: false,
            template: Template::HtmlRel,
        };
        assert_eq!(sql.resource(), Some(ResourceId(2)));
    }

    #[test]
    fn list_page_resumes_in_name_order_without_skips() {
        let (t, ids) = table();
        // Insert out of order across two collections; only coll 1 pages.
        for name in ["m", "a", "z", "q", "b"] {
            t.create(
                &ids,
                CollectionId(1),
                name,
                "generic",
                UserId(1),
                vec![],
                Timestamp(0),
            )
            .unwrap();
        }
        t.create(
            &ids,
            CollectionId(2),
            "aa",
            "generic",
            UserId(1),
            vec![],
            Timestamp(0),
        )
        .unwrap();
        let mut walked = Vec::new();
        let mut after: Option<String> = None;
        loop {
            let (page, more) = t.list_page(CollectionId(1), after.as_deref(), 2);
            assert!(page.len() <= 2);
            walked.extend(page.iter().map(|d| d.name.clone()));
            if !more {
                break;
            }
            after = page.last().map(|d| d.name.clone());
        }
        assert_eq!(walked, vec!["a", "b", "m", "q", "z"]);
        let full: Vec<String> = t
            .list(CollectionId(1))
            .into_iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(walked, full);
        // Generation moves with membership, not with in-place updates.
        let g0 = t.generation();
        let id = t.find(CollectionId(1), "a").unwrap();
        t.update(id, |d| {
            d.modified = Timestamp(9);
            Ok(())
        })
        .unwrap();
        assert_eq!(g0, t.generation());
        t.move_dataset(id, CollectionId(2), "a").unwrap();
        assert_ne!(g0, t.generation());
    }

    #[test]
    fn count_in_colls_matches_listing_sizes() {
        let (t, ids) = table();
        for (coll, n) in [(CollectionId(1), 3u64), (CollectionId(2), 2)] {
            for i in 0..n {
                t.create(
                    &ids,
                    coll,
                    &format!("d{i}"),
                    "generic",
                    UserId(1),
                    vec![],
                    Timestamp(0),
                )
                .unwrap();
            }
        }
        let scope: HashSet<CollectionId> = [CollectionId(1), CollectionId(2)].into();
        assert_eq!(t.count_in_colls(&scope), 5);
        let one: HashSet<CollectionId> = [CollectionId(2), CollectionId(9)].into();
        assert_eq!(t.count_in_colls(&one), 2);
    }

    #[test]
    fn stale_replica_excluded_from_size() {
        let (t, ids) = table();
        let id = t
            .create(
                &ids,
                CollectionId(1),
                "x",
                "generic",
                UserId(1),
                vec![(stored(1), 10, None), (stored(2), 10, None)],
                Timestamp(0),
            )
            .unwrap();
        t.update(id, |d| {
            d.replicas[0].status = ReplicaStatus::Stale;
            d.replicas[1].size = 20;
            Ok(())
        })
        .unwrap();
        assert_eq!(t.get(id).unwrap().size(), 20);
    }
}

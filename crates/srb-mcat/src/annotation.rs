//! Annotations and commentary metadata.
//!
//! Paper §5: "useful for associating free-form metadata to a SRB object …
//! notes, comments, errata, queries and answers, annotations, memoranda.
//! These have a type/location associated with them and the timestamp and
//! the annotation writer's name. Unlike other types of metadata, the
//! annotations and commentary can be inserted by any user with a read
//! permission on the object."

use crate::metadata::Subject;
use crate::wal::{WalHook, WalOp};
use serde::{Deserialize, Serialize};
use srb_types::sync::{LockRank, RwLock};
use srb_types::{AnnotationId, IdGen, SrbError, SrbResult, Timestamp, UserId};
use std::collections::HashMap;

/// The flavour of an annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnnotationKind {
    /// Free-form comment.
    Comment,
    /// Numeric or star rating.
    Rating,
    /// Correction to the object's content.
    Errata,
    /// Question/answer thread entry.
    Dialogue,
    /// Scholarly annotation.
    Annotation,
    /// Memorandum.
    Memo,
}

impl AnnotationKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AnnotationKind::Comment => "comment",
            AnnotationKind::Rating => "rating",
            AnnotationKind::Errata => "errata",
            AnnotationKind::Dialogue => "dialogue",
            AnnotationKind::Annotation => "annotation",
            AnnotationKind::Memo => "memo",
        }
    }

    /// Parse the form value used by MySRB.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s.trim().to_ascii_lowercase().as_str() {
            "comment" => AnnotationKind::Comment,
            "rating" => AnnotationKind::Rating,
            "errata" => AnnotationKind::Errata,
            "dialogue" => AnnotationKind::Dialogue,
            "annotation" => AnnotationKind::Annotation,
            "memo" => AnnotationKind::Memo,
            _ => return None,
        })
    }

    /// All kinds, for form drop-downs.
    pub fn all() -> &'static [AnnotationKind] {
        &[
            AnnotationKind::Comment,
            AnnotationKind::Rating,
            AnnotationKind::Errata,
            AnnotationKind::Dialogue,
            AnnotationKind::Annotation,
            AnnotationKind::Memo,
        ]
    }
}

/// One annotation row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    /// Catalog id.
    pub id: AnnotationId,
    /// Annotated subject.
    pub subject: Subject,
    /// Writer.
    pub author: UserId,
    /// When it was written (virtual time).
    pub at: Timestamp,
    /// Flavour.
    pub kind: AnnotationKind,
    /// Free-form location within the object ("type/location" in the
    /// paper), e.g. `page 3`, `frame 1120`. Empty when whole-object.
    pub location: String,
    /// The text itself.
    pub text: String,
}

/// Annotation table.
#[derive(Debug)]
pub struct AnnotationTable {
    inner: RwLock<Inner>,
    /// Redo-log hook; a no-op until the catalog enables durability.
    wal: WalHook,
}

impl Default for AnnotationTable {
    fn default() -> Self {
        AnnotationTable {
            inner: RwLock::new(LockRank::McatTable, "mcat.annotations", Inner::default()),
            wal: WalHook::default(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    rows: HashMap<AnnotationId, Annotation>,
    by_subject: HashMap<Subject, Vec<AnnotationId>>,
}

impl AnnotationTable {
    /// Empty table.
    pub fn new() -> Self {
        AnnotationTable::default()
    }

    /// Add an annotation.
    #[allow(clippy::too_many_arguments)]
    pub fn add(
        &self,
        ids: &IdGen,
        subject: Subject,
        author: UserId,
        at: Timestamp,
        kind: AnnotationKind,
        location: &str,
        text: &str,
    ) -> AnnotationId {
        let id: AnnotationId = ids.next();
        let row = Annotation {
            id,
            subject,
            author,
            at,
            kind,
            location: location.to_string(),
            text: text.to_string(),
        };
        let mut g = self.inner.write();
        g.by_subject.entry(subject).or_default().push(id);
        self.wal
            .log(0, || WalOp::AnnotationPut { row: row.clone() });
        g.rows.insert(id, row);
        drop(g);
        self.wal.commit();
        id
    }

    /// All annotations on a subject, oldest first.
    pub fn for_subject(&self, subject: Subject) -> Vec<Annotation> {
        let g = self.inner.read();
        g.by_subject
            .get(&subject)
            .map(|ids| ids.iter().filter_map(|i| g.rows.get(i)).cloned().collect())
            .unwrap_or_default()
    }

    /// Remove one annotation; only its author may (enforced by caller's
    /// permission layer, checked again here for defence in depth).
    pub fn remove(&self, id: AnnotationId, by: UserId) -> SrbResult<()> {
        let mut g = self.inner.write();
        let row = g
            .rows
            .get(&id)
            .ok_or_else(|| SrbError::NotFound(format!("annotation {id}")))?;
        if row.author != by {
            return Err(SrbError::PermissionDenied(format!(
                "annotation {id} belongs to {}",
                row.author
            )));
        }
        let row = g
            .rows
            .remove(&id)
            .ok_or_else(|| SrbError::NotFound(format!("annotation {id}")))?;
        if let Some(v) = g.by_subject.get_mut(&row.subject) {
            v.retain(|&a| a != id);
        }
        self.wal.log(0, || WalOp::AnnotationDelete { id });
        drop(g);
        self.wal.commit();
        Ok(())
    }

    /// Drop all annotations on a subject (object deletion).
    pub fn remove_all(&self, subject: Subject) {
        let mut g = self.inner.write();
        if let Some(ids) = g.by_subject.remove(&subject) {
            for id in ids {
                g.rows.remove(&id);
            }
            self.wal.log(0, || WalOp::AnnotationClear { subject });
            drop(g);
            self.wal.commit();
        }
    }

    /// Does any annotation on the subject match `pattern` (SQL LIKE)?
    pub fn text_matches(&self, subject: Subject, pattern: &str) -> bool {
        self.for_subject(subject)
            .iter()
            .any(|a| srb_types::value::like_match(pattern, &a.text))
    }

    /// Every annotation row, sorted by id (snapshots).
    pub fn dump(&self) -> Vec<Annotation> {
        let g = self.inner.read();
        let mut v: Vec<Annotation> = g.rows.values().cloned().collect();
        v.sort_by_key(|a| a.id);
        v
    }

    /// Rebuild the table from snapshot rows.
    pub fn restore(rows: Vec<Annotation>) -> Self {
        let t = AnnotationTable::new();
        {
            let mut g = t.inner.write();
            for a in rows {
                g.by_subject.entry(a.subject).or_default().push(a.id);
                g.rows.insert(a.id, a);
            }
        }
        t
    }

    /// Total number of annotations.
    pub fn count(&self) -> usize {
        self.inner.read().rows.len()
    }

    /// Wire this table to the catalog's WAL.
    pub(crate) fn attach_wal(&self, wal: std::sync::Arc<crate::wal::Wal>) {
        self.wal.attach(wal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srb_types::DatasetId;

    fn sub(n: u64) -> Subject {
        Subject::Dataset(DatasetId(n))
    }

    #[test]
    fn add_and_list_in_order() {
        let t = AnnotationTable::new();
        let ids = IdGen::new();
        t.add(
            &ids,
            sub(1),
            UserId(1),
            Timestamp(1),
            AnnotationKind::Comment,
            "",
            "first",
        );
        t.add(
            &ids,
            sub(1),
            UserId(2),
            Timestamp(2),
            AnnotationKind::Rating,
            "overall",
            "5 stars",
        );
        let rows = t.for_subject(sub(1));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].text, "first");
        assert_eq!(rows[1].kind, AnnotationKind::Rating);
        assert_eq!(rows[1].location, "overall");
        assert!(t.for_subject(sub(9)).is_empty());
    }

    #[test]
    fn only_author_can_remove() {
        let t = AnnotationTable::new();
        let ids = IdGen::new();
        let a = t.add(
            &ids,
            sub(1),
            UserId(1),
            Timestamp(0),
            AnnotationKind::Errata,
            "",
            "typo on p3",
        );
        assert!(matches!(
            t.remove(a, UserId(2)),
            Err(SrbError::PermissionDenied(_))
        ));
        t.remove(a, UserId(1)).unwrap();
        assert!(t.for_subject(sub(1)).is_empty());
        assert!(t.remove(a, UserId(1)).is_err());
    }

    #[test]
    fn remove_all_clears_subject() {
        let t = AnnotationTable::new();
        let ids = IdGen::new();
        for i in 0..3 {
            t.add(
                &ids,
                sub(1),
                UserId(i),
                Timestamp(i),
                AnnotationKind::Dialogue,
                "",
                "q",
            );
        }
        t.add(
            &ids,
            sub(2),
            UserId(1),
            Timestamp(0),
            AnnotationKind::Memo,
            "",
            "keep",
        );
        t.remove_all(sub(1));
        assert_eq!(t.count(), 1);
        assert_eq!(t.for_subject(sub(2)).len(), 1);
    }

    #[test]
    fn like_matching_over_annotations() {
        let t = AnnotationTable::new();
        let ids = IdGen::new();
        t.add(
            &ids,
            sub(1),
            UserId(1),
            Timestamp(0),
            AnnotationKind::Comment,
            "",
            "wonderful plumage",
        );
        assert!(t.text_matches(sub(1), "%plumage%"));
        assert!(!t.text_matches(sub(1), "%beak%"));
        assert!(!t.text_matches(sub(2), "%plumage%"));
    }

    #[test]
    fn kind_parse_round_trip() {
        for k in AnnotationKind::all() {
            assert_eq!(AnnotationKind::parse(k.name()), Some(*k));
        }
        assert_eq!(AnnotationKind::parse("sticker"), None);
    }
}

//! Storage resources and logical resources.
//!
//! A *physical resource* is one storage system at one site ("unix-sdsc", a
//! Unix file system at SDSC; "hpss-caltech", an HPSS archive at CalTech").
//! A *logical resource* "ties together two or more physical resources":
//! storing into it writes synchronous replicas to every member (paper §5).

use crate::wal::{WalHook, WalOp};
use serde::{Deserialize, Serialize};
use srb_storage::DriverKind;
use srb_types::sync::{LockRank, RwLock};
use srb_types::{IdGen, LogicalResourceId, ResourceId, SiteId, SrbError, SrbResult};
use std::collections::HashMap;

/// A physical storage resource registered in the catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Resource {
    /// Catalog id.
    pub id: ResourceId,
    /// Unique resource name, e.g. `unix-sdsc`.
    pub name: String,
    /// What kind of storage system it is.
    pub kind: DriverKind,
    /// The site (administrative domain) hosting it.
    pub site: SiteId,
}

/// A named group of physical resources with synchronous-replication
/// semantics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogicalResource {
    /// Catalog id.
    pub id: LogicalResourceId,
    /// Unique logical resource name, e.g. `logrsrc1`.
    pub name: String,
    /// Member physical resources (ingest writes to all of them).
    pub members: Vec<ResourceId>,
}

/// Resource tables.
#[derive(Debug)]
pub struct ResourceTable {
    inner: RwLock<Inner>,
    /// Redo-log hook; a no-op until the catalog enables durability.
    wal: WalHook,
}

impl Default for ResourceTable {
    fn default() -> Self {
        ResourceTable {
            inner: RwLock::new(LockRank::McatTable, "mcat.resources", Inner::default()),
            wal: WalHook::default(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    physical: HashMap<ResourceId, Resource>,
    by_name: HashMap<String, ResourceId>,
    logical: HashMap<LogicalResourceId, LogicalResource>,
    logical_by_name: HashMap<String, LogicalResourceId>,
}

impl ResourceTable {
    /// Empty tables.
    pub fn new() -> Self {
        ResourceTable::default()
    }

    /// Register a physical resource.
    pub fn register(
        &self,
        ids: &IdGen,
        name: &str,
        kind: DriverKind,
        site: SiteId,
    ) -> SrbResult<ResourceId> {
        let mut g = self.inner.write();
        if g.by_name.contains_key(name) || g.logical_by_name.contains_key(name) {
            return Err(SrbError::AlreadyExists(format!("resource '{name}'")));
        }
        let id: ResourceId = ids.next();
        let row = Resource {
            id,
            name: name.to_string(),
            kind,
            site,
        };
        self.wal.log(0, || WalOp::ResourcePut { row: row.clone() });
        g.physical.insert(id, row);
        g.by_name.insert(name.to_string(), id);
        drop(g);
        self.wal.commit();
        Ok(id)
    }

    /// Create a logical resource over existing physical members.
    pub fn create_logical(
        &self,
        ids: &IdGen,
        name: &str,
        members: &[ResourceId],
    ) -> SrbResult<LogicalResourceId> {
        if members.is_empty() {
            return Err(SrbError::Invalid(
                "logical resource needs at least one member".into(),
            ));
        }
        let mut g = self.inner.write();
        if g.logical_by_name.contains_key(name) || g.by_name.contains_key(name) {
            return Err(SrbError::AlreadyExists(format!("resource '{name}'")));
        }
        for m in members {
            if !g.physical.contains_key(m) {
                return Err(SrbError::NotFound(format!("member resource {m}")));
            }
        }
        let id: LogicalResourceId = ids.next();
        let row = LogicalResource {
            id,
            name: name.to_string(),
            members: members.to_vec(),
        };
        self.wal
            .log(0, || WalOp::LogicalResourcePut { row: row.clone() });
        g.logical.insert(id, row);
        g.logical_by_name.insert(name.to_string(), id);
        drop(g);
        self.wal.commit();
        Ok(id)
    }

    /// Get a physical resource.
    pub fn get(&self, id: ResourceId) -> SrbResult<Resource> {
        self.inner
            .read()
            .physical
            .get(&id)
            .cloned()
            .ok_or_else(|| SrbError::NotFound(format!("resource {id}")))
    }

    /// Find a physical resource by name.
    pub fn find(&self, name: &str) -> Option<Resource> {
        let g = self.inner.read();
        g.by_name
            .get(name)
            .and_then(|id| g.physical.get(id))
            .cloned()
    }

    /// Get a logical resource.
    pub fn get_logical(&self, id: LogicalResourceId) -> SrbResult<LogicalResource> {
        self.inner
            .read()
            .logical
            .get(&id)
            .cloned()
            .ok_or_else(|| SrbError::NotFound(format!("logical resource {id}")))
    }

    /// Find a logical resource by name.
    pub fn find_logical(&self, name: &str) -> Option<LogicalResource> {
        let g = self.inner.read();
        g.logical_by_name
            .get(name)
            .and_then(|id| g.logical.get(id))
            .cloned()
    }

    /// Resolve a name that may denote either a physical or a logical
    /// resource into the list of physical resources to write to.
    ///
    /// This is the paper's ingest rule: a single physical resource stores
    /// one copy; a logical resource stores one synchronous replica per
    /// member.
    pub fn resolve_targets(&self, name: &str) -> SrbResult<Vec<ResourceId>> {
        let g = self.inner.read();
        if let Some(id) = g.by_name.get(name) {
            return Ok(vec![*id]);
        }
        if let Some(lid) = g.logical_by_name.get(name) {
            return Ok(g.logical[lid].members.clone());
        }
        Err(SrbError::NotFound(format!("resource '{name}'")))
    }

    /// Rebuild the table from snapshot rows.
    pub fn restore(physical: Vec<Resource>, logical: Vec<LogicalResource>) -> Self {
        let t = ResourceTable::new();
        {
            let mut g = t.inner.write();
            for r in physical {
                g.by_name.insert(r.name.clone(), r.id);
                g.physical.insert(r.id, r);
            }
            for l in logical {
                g.logical_by_name.insert(l.name.clone(), l.id);
                g.logical.insert(l.id, l);
            }
        }
        t
    }

    /// All physical resources, sorted by id.
    pub fn list(&self) -> Vec<Resource> {
        let mut v: Vec<Resource> = self.inner.read().physical.values().cloned().collect();
        v.sort_by_key(|r| r.id);
        v
    }

    /// All logical resources, sorted by id.
    pub fn list_logical(&self) -> Vec<LogicalResource> {
        let mut v: Vec<LogicalResource> = self.inner.read().logical.values().cloned().collect();
        v.sort_by_key(|r| r.id);
        v
    }

    /// Wire this table to the catalog's WAL.
    pub(crate) fn attach_wal(&self, wal: std::sync::Arc<crate::wal::Wal>) {
        self.wal.attach(wal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (ResourceTable, IdGen) {
        (ResourceTable::new(), IdGen::new())
    }

    #[test]
    fn register_and_lookup() {
        let (t, ids) = table();
        let id = t
            .register(&ids, "unix-sdsc", DriverKind::FileSystem, SiteId(0))
            .unwrap();
        assert_eq!(t.find("unix-sdsc").unwrap().id, id);
        assert_eq!(t.get(id).unwrap().kind, DriverKind::FileSystem);
        assert!(t.find("nope").is_none());
        assert!(t.get(ResourceId(99)).is_err());
    }

    #[test]
    fn names_unique_across_physical_and_logical() {
        let (t, ids) = table();
        let r = t
            .register(&ids, "unix-sdsc", DriverKind::FileSystem, SiteId(0))
            .unwrap();
        assert!(t
            .register(&ids, "unix-sdsc", DriverKind::Cache, SiteId(0))
            .is_err());
        t.create_logical(&ids, "logrsrc1", &[r]).unwrap();
        // A physical resource may not reuse a logical name and vice versa.
        assert!(t
            .register(&ids, "logrsrc1", DriverKind::FileSystem, SiteId(0))
            .is_err());
        assert!(t.create_logical(&ids, "unix-sdsc", &[r]).is_err());
    }

    #[test]
    fn logical_resource_resolves_to_members() {
        let (t, ids) = table();
        let unix = t
            .register(&ids, "unix-sdsc", DriverKind::FileSystem, SiteId(0))
            .unwrap();
        let hpss = t
            .register(&ids, "hpss-caltech", DriverKind::Archive, SiteId(1))
            .unwrap();
        t.create_logical(&ids, "logrsrc1", &[unix, hpss]).unwrap();
        assert_eq!(t.resolve_targets("logrsrc1").unwrap(), vec![unix, hpss]);
        assert_eq!(t.resolve_targets("unix-sdsc").unwrap(), vec![unix]);
        assert!(t.resolve_targets("missing").is_err());
    }

    #[test]
    fn logical_resource_validates_members() {
        let (t, ids) = table();
        assert!(t.create_logical(&ids, "empty", &[]).is_err());
        assert!(t.create_logical(&ids, "ghost", &[ResourceId(42)]).is_err());
    }

    #[test]
    fn listings_are_sorted() {
        let (t, ids) = table();
        let a = t
            .register(&ids, "a", DriverKind::FileSystem, SiteId(0))
            .unwrap();
        let b = t
            .register(&ids, "b", DriverKind::Archive, SiteId(1))
            .unwrap();
        t.create_logical(&ids, "l", &[a, b]).unwrap();
        assert_eq!(t.list().len(), 2);
        assert!(t.list()[0].id < t.list()[1].id);
        assert_eq!(t.list_logical().len(), 1);
        assert_eq!(t.find_logical("l").unwrap().members, vec![a, b]);
    }
}

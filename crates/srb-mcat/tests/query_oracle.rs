//! Differential oracle for the query engine: on randomized catalogs
//! (collection trees, links, metadata triplets, annotations) and random
//! conjunctive queries, the indexed planner, the pre-overhaul single-driver
//! engine, and the full-scan baseline must agree hit-for-hit — including
//! scope, `limit`, `include_system`, and `include_annotations` — and the
//! unordered limit push-down must return a correct subset.

use proptest::prelude::*;
use srb_mcat::{AccessSpec, AnnotationKind, Mcat, MetaKind, Query, QueryCondition, Subject};
use srb_types::{CompareOp, DatasetId, MetaValue, ResourceId, SimClock, Triplet};

/// Attribute pool for stored triplets; `size` and `name` deliberately
/// collide with system attribute names so `include_system` interplay is
/// exercised.
const ATTRS: [&str; 4] = ["species", "rating", "size", "name"];
const TEXTS: [&str; 3] = ["red", "green", "blue"];
const NOTES: [&str; 4] = ["great specimen", "needs review", "red flag", "ok"];
/// Condition attributes: stored names plus `annotation` and a never-stored
/// name.
const COND_ATTRS: [&str; 6] = ["species", "rating", "size", "name", "annotation", "missing"];
const OPS: [CompareOp; 8] = [
    CompareOp::Eq,
    CompareOp::Ne,
    CompareOp::Gt,
    CompareOp::Ge,
    CompareOp::Lt,
    CompareOp::Le,
    CompareOp::Like,
    CompareOp::NotLike,
];
/// Substring patterns (partition sweeps) plus literal prefixes — the
/// latter now plan as ordered-index range scans, so both classification
/// arms stay under the oracle. `gr%`/`re%` hit text values, `1%`/`2%`
/// exercise the numeric-lexical guard in `like_scan_prefix`.
const PATTERNS: [&str; 6] = ["%e%", "%r%", "%1%", "re%", "gr%", "1%"];

fn value_for(idx: u8) -> MetaValue {
    match idx % 6 {
        0..=2 => MetaValue::Int((idx % 3) as i64),
        _ => MetaValue::Text(TEXTS[(idx as usize - 3) % TEXTS.len()].to_string()),
    }
}

fn cond_value_for(op: CompareOp, idx: u8) -> MetaValue {
    match op {
        CompareOp::Like | CompareOp::NotLike => {
            MetaValue::Text(PATTERNS[idx as usize % PATTERNS.len()].to_string())
        }
        _ => value_for(idx),
    }
}

struct Fixture {
    m: Mcat,
    colls: Vec<srb_types::CollectionId>,
    datasets: Vec<DatasetId>,
}

#[allow(clippy::type_complexity)]
fn build(
    coll_parents: &[u8],
    links: &[(u8, u8)],
    ds_specs: &[(u8, u16)],
    meta: &[(u8, u8, u8)],
    annos: &[(u8, u8)],
) -> Fixture {
    let m = Mcat::new(SimClock::new(), "pw");
    let root = m.collections.root();
    let admin = m.admin();
    let now = m.clock.now();
    let mut colls = vec![root];
    for (i, p) in coll_parents.iter().enumerate() {
        let parent = colls[*p as usize % colls.len()];
        let c = m
            .collections
            .create(&m.ids, parent, &format!("c{i}"), admin, now)
            .unwrap();
        colls.push(c);
    }
    for (i, (p, t)) in links.iter().enumerate() {
        let parent = colls[*p as usize % colls.len()];
        let target = colls[*t as usize % colls.len()];
        // Self/cycle/name-clash links may be rejected; that is fine here.
        let _ = m
            .collections
            .link(&m.ids, parent, &format!("l{i}"), target, admin, now);
    }
    let mut datasets = Vec::new();
    for (i, (c, size)) in ds_specs.iter().enumerate() {
        let coll = colls[*c as usize % colls.len()];
        let replica = (
            AccessSpec::Stored {
                resource: ResourceId(1),
                phys_path: format!("/p/{i}"),
            },
            *size as u64,
            None,
        );
        let d = m
            .datasets
            .create(
                &m.ids,
                coll,
                &format!("d{i}"),
                "generic",
                admin,
                vec![replica],
                now,
            )
            .unwrap();
        datasets.push(d);
    }
    for (d, a, v) in meta {
        let subject = Subject::Dataset(datasets[*d as usize % datasets.len()]);
        m.metadata.add(
            &m.ids,
            subject,
            Triplet::new(ATTRS[*a as usize % ATTRS.len()], value_for(*v), ""),
            MetaKind::UserDefined,
        );
    }
    for (d, t) in annos {
        let subject = Subject::Dataset(datasets[*d as usize % datasets.len()]);
        m.annotations.add(
            &m.ids,
            subject,
            admin,
            now,
            AnnotationKind::Comment,
            "",
            NOTES[*t as usize % NOTES.len()],
        );
    }
    Fixture { m, colls, datasets }
}

fn build_query(
    f: &Fixture,
    scope_idx: u8,
    conds: &[(u8, u8, u8)],
    flags: u8,
    limit: usize,
) -> Query {
    let scope_coll = f.colls[scope_idx as usize % f.colls.len()];
    let scope = f.m.collections.get(scope_coll).unwrap().path;
    let mut q = Query::everywhere().under(scope).limit(limit);
    if flags & 1 != 0 {
        q = q.with_system();
    }
    if flags & 2 != 0 {
        q = q.with_annotations();
    }
    for (a, o, v) in conds {
        let op = OPS[*o as usize % OPS.len()];
        q.conditions.push(QueryCondition {
            attr: COND_ATTRS[*a as usize % COND_ATTRS.len()].to_string(),
            op,
            value: cond_value_for(op, *v),
        });
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn planner_agrees_with_scan_and_single_driver(
        coll_parents in prop::collection::vec(0u8..8, 0..7),
        links in prop::collection::vec((0u8..8, 0u8..8), 0..3),
        ds_specs in prop::collection::vec((0u8..8, 0u16..200), 1..25),
        meta in prop::collection::vec((0u8..25, 0u8..4, 0u8..6), 0..50),
        annos in prop::collection::vec((0u8..25, 0u8..4), 0..8),
        conds in prop::collection::vec((0u8..6, 0u8..8, 0u8..6), 0..4),
        scope_idx in 0u8..9,
        flags in 0u8..4,
        limit in 0usize..5,
    ) {
        let f = build(&coll_parents, &links, &ds_specs, &meta, &annos);
        let q = build_query(&f, scope_idx, &conds, flags, limit);

        let planned = f.m.query(&q).unwrap();
        let scanned = f.m.query_scan(&q).unwrap();
        let legacy = f.m.query_single_driver(&q).unwrap();
        prop_assert_eq!(&planned, &scanned);
        prop_assert_eq!(&planned, &legacy);

        // Cursor pagination: concatenated pages must equal the one-shot
        // ordered, unlimited query — no skips, no duplicates, any page
        // size, however the planner served each page.
        let full_ordered = f.m.query(&q.clone().limit(0)).unwrap();
        let mut paged = Vec::new();
        let mut token: Option<String> = None;
        loop {
            let (hits, next) = f.m.query_page(&q, token.as_deref(), 2).unwrap();
            prop_assert!(hits.len() <= 2);
            paged.extend(hits);
            match next {
                Some(t) => token = Some(t),
                None => break,
            }
        }
        prop_assert_eq!(&paged, &full_ordered);
        // Keep a mid-pagination token to check invalidation after the
        // mutation below.
        let (_, outstanding) = f.m.query_page(&q, None, 1).unwrap();

        // Unordered limit push-down: every hit is a real match and the
        // count equals min(limit, total matches).
        if limit > 0 {
            let unordered = f.m.query(&q.clone().any_order()).unwrap();
            let full = f.m.query_scan(&q.clone().limit(0)).unwrap();
            prop_assert_eq!(unordered.len(), full.len().min(limit));
            for h in &unordered {
                prop_assert!(full.contains(h));
            }
        }

        // The queryable-attrs drop-down agrees with a scan-derived model.
        let scope_coll = f.colls[scope_idx as usize % f.colls.len()];
        let scope_path = f.m.collections.get(scope_coll).unwrap().path;
        let attrs = f.m.queryable_attrs(&scope_path).unwrap();
        let browse = Query::everywhere().under(scope_path.clone());
        let mut model: Vec<String> = f
            .m
            .query_scan(&browse)
            .unwrap()
            .iter()
            .flat_map(|h| {
                f.m.metadata
                    .for_subject(Subject::Dataset(h.dataset))
                    .into_iter()
                    .map(|r| r.triplet.name)
            })
            .collect();
        model.sort();
        model.dedup();
        prop_assert_eq!(attrs, model);

        // Mutate the tree (invalidates the scope cache) and re-check.
        let admin = f.m.admin();
        let now = f.m.clock.now();
        let fresh = f
            .m
            .collections
            .create(&f.m.ids, scope_coll, "fresh", admin, now)
            .unwrap();
        let d = f
            .m
            .datasets
            .create(&f.m.ids, fresh, "fresh.dat", "generic", admin, vec![], now)
            .unwrap();
        f.m.metadata.add(
            &f.m.ids,
            Subject::Dataset(d),
            Triplet::new("species", "red", ""),
            MetaKind::UserDefined,
        );
        let planned = f.m.query(&q).unwrap();
        let scanned = f.m.query_scan(&q).unwrap();
        prop_assert_eq!(&planned, &scanned);
        prop_assert!(f.datasets.len() < f.m.datasets.count());

        // The mutation invalidated every outstanding cursor: resuming is
        // a clean `Invalid` error (client restarts), never a wrong page.
        if let Some(t) = outstanding {
            prop_assert!(matches!(
                f.m.query_page(&q, Some(&t), 1),
                Err(srb_types::SrbError::Invalid(_))
            ));
        }
    }
}

/// Deterministic large-catalog check: enough candidates to cross the
/// planner's parallel-verification threshold (1024), so the scoped worker
/// threads take their batch guards under the debug lock-rank checker.
/// A residual (`include_system`) condition forces per-candidate
/// verification rather than a pure index answer.
#[test]
fn parallel_verify_agrees_with_scan() {
    let m = Mcat::new(SimClock::new(), "pw");
    let root = m.collections.root();
    let admin = m.admin();
    let now = m.clock.now();
    for i in 0..3000u32 {
        let replica = (
            AccessSpec::Stored {
                resource: ResourceId(1),
                phys_path: format!("/p/{i}"),
            },
            u64::from(i % 700),
            None,
        );
        let d = m
            .datasets
            .create(
                &m.ids,
                root,
                &format!("d{i}"),
                "generic",
                admin,
                vec![replica],
                now,
            )
            .unwrap();
        m.metadata.add(
            &m.ids,
            Subject::Dataset(d),
            Triplet::new("kind", MetaValue::Int(i64::from(i % 2)), ""),
            MetaKind::UserDefined,
        );
    }
    // ~1500 candidates from the index, residual `size` check per candidate.
    let q = Query::everywhere()
        .and("kind", CompareOp::Eq, 0i64)
        .and("size", CompareOp::Lt, 650i64)
        .with_system();
    let planned = m.query(&q).unwrap();
    let scanned = m.query_scan(&q).unwrap();
    let legacy = m.query_single_driver(&q).unwrap();
    assert!(
        planned.len() > 1024,
        "workload must cross the parallel threshold"
    );
    assert_eq!(planned, scanned);
    assert_eq!(planned, legacy);

    // Unordered push-down over the same workload stops early but must
    // still return real matches.
    let first = m.query(&q.clone().first_hits(40)).unwrap();
    assert_eq!(first.len(), 40);
    let all: std::collections::HashSet<DatasetId> = planned.iter().map(|h| h.dataset).collect();
    assert!(first.iter().all(|h| all.contains(&h.dataset)));
}

// ------------------------------------------------------ recovery cursors --
//
// Continuation tokens embed the collection/dataset/metadata generation
// stamps, and the WAL persists those stamps. A token minted before a crash
// must therefore either resume exactly (the recovered catalog proves the
// same generations) or fail with `SrbError::Invalid` (the generations
// diverged) — it must never silently skip or duplicate rows.

fn durable_catalog(n: usize) -> (Mcat, std::sync::Arc<srb_storage::LogDevice>) {
    use srb_mcat::WalConfig;
    let clock = SimClock::new();
    let m = Mcat::new(clock.clone(), "pw");
    let device = std::sync::Arc::new(srb_storage::LogDevice::new());
    m.enable_wal(
        device.clone(),
        WalConfig {
            checkpoint_interval_ns: 0,
        },
        None,
    )
    .unwrap();
    let root = m.collections.root();
    let admin = m.admin();
    for i in 0..n {
        let replica = (
            AccessSpec::Stored {
                resource: ResourceId(1),
                phys_path: format!("/p/{i}"),
            },
            10,
            None,
        );
        let d = m
            .datasets
            .create(
                &m.ids,
                root,
                &format!("d{i:03}"),
                "generic",
                admin,
                vec![replica],
                clock.now(),
            )
            .unwrap();
        m.metadata.add(
            &m.ids,
            Subject::Dataset(d),
            Triplet::new("tag", "x", ""),
            MetaKind::UserDefined,
        );
    }
    (m, device)
}

#[test]
fn cursor_minted_before_crash_resumes_exactly_after_recovery() {
    use srb_mcat::WalConfig;
    let (m, device) = durable_catalog(25);
    let q = Query::everywhere().and("tag", CompareOp::Eq, "x");
    let (page1, token) = m.query_page(&q, None, 10).unwrap();
    let token = token.expect("more pages");
    let (page2_ref, _) = m.query_page(&q, Some(&token), 10).unwrap();
    drop(m);

    // Everything above was acknowledged; the crash loses only buffers.
    device.crash();
    let (rec, _) = Mcat::recover(
        SimClock::new(),
        device,
        WalConfig {
            checkpoint_interval_ns: 0,
        },
        None,
    )
    .unwrap();

    // The recovered catalog proves the same generation stamps, so the
    // pre-crash token resumes with neither a skip nor a duplicate.
    let (page2, token2) = rec.query_page(&q, Some(&token), 10).unwrap();
    assert_eq!(
        page2.iter().map(|h| h.dataset).collect::<Vec<_>>(),
        page2_ref.iter().map(|h| h.dataset).collect::<Vec<_>>()
    );
    let (page3, end) = rec.query_page(&q, token2.as_deref(), 10).unwrap();
    assert!(end.is_none());
    let mut all: Vec<DatasetId> = page1
        .iter()
        .chain(&page2)
        .chain(&page3)
        .map(|h| h.dataset)
        .collect();
    assert_eq!(
        all.len(),
        25,
        "no row skipped or duplicated across the crash"
    );
    all.dedup();
    assert_eq!(all.len(), 25);
}

#[test]
fn cursor_spanning_lost_work_is_invalidated_not_wrong() {
    use srb_mcat::WalConfig;
    use srb_types::{Lsn, SrbError};
    let cfg = WalConfig {
        checkpoint_interval_ns: 0,
    };
    let (m, device) = durable_catalog(12);
    let q = Query::everywhere().and("tag", CompareOp::Eq, "x");

    // Remember where the log stood, then mutate and mint a token that
    // embeds the post-mutation generations.
    let durable_before = m.wal().unwrap().durable_lsn();
    let root = m.collections.root();
    let admin = m.admin();
    m.datasets
        .create(
            &m.ids,
            root,
            "late.dat",
            "generic",
            admin,
            vec![(
                AccessSpec::Stored {
                    resource: ResourceId(1),
                    phys_path: "/p/late".into(),
                },
                10,
                None,
            )],
            srb_types::Timestamp(1),
        )
        .unwrap();
    let (_, token) = m.query_page(&q, None, 5).unwrap();
    let token = token.expect("more pages");
    drop(m);

    // The disk only got as far as `durable_before`: the late mutation is
    // lost. The token now comes "from the future" of the recovered
    // catalog — resuming it could silently skip rows, so it must die.
    device.truncate_after(Lsn(durable_before.raw()));
    let (rec, _) = Mcat::recover(SimClock::new(), device, cfg, None).unwrap();
    match rec.query_page(&q, Some(&token), 5) {
        Err(SrbError::Invalid(_)) => {}
        Err(e) => panic!("expected Invalid, got {e:?}"),
        Ok(_) => panic!("a future-generation cursor must not resume"),
    }

    // A token minted on the recovered catalog dies on the *next* recovered
    // catalog after further mutations — same rule, post-recovery.
    let (_, t2) = rec.query_page(&q, None, 5).unwrap();
    let t2 = t2.expect("more pages");
    rec.datasets
        .create(
            &rec.ids,
            rec.collections.root(),
            "after.dat",
            "generic",
            rec.admin(),
            vec![(
                AccessSpec::Stored {
                    resource: ResourceId(1),
                    phys_path: "/p/after".into(),
                },
                10,
                None,
            )],
            srb_types::Timestamp(2),
        )
        .unwrap();
    match rec.query_page(&q, Some(&t2), 5) {
        Err(SrbError::Invalid(_)) => {}
        Err(e) => panic!("expected Invalid, got {e:?}"),
        Ok(_) => panic!("a stale cursor must not resume"),
    }
}

//! Crash–restart chaos oracle for the MCAT write-ahead log.
//!
//! A seeded mixed workload (collections, datasets, moves, deletes,
//! replicas, metadata, annotations, users, groups, containers, resources)
//! runs against a WAL-enabled catalog, recording after every operation the
//! durable commit-marker LSN and a snapshot of the catalog. Because the
//! whole simulation is deterministic, re-running the workload reproduces
//! the log byte-for-byte — so "kill -9 at LSN L" is modeled by re-running,
//! truncating the durable log after L, and recovering.
//!
//! The oracle: for ANY kill point, the recovered catalog must be
//! byte-identical (modulo the id-allocator watermark, which may lag by ids
//! burned in unacknowledged work) to the reference run's state at the last
//! commit marker at or before L. Acknowledged mutations are never lost;
//! unacknowledged ones never half-apply.

use srb_mcat::{AccessSpec, AnnotationKind, Mcat, MetaKind, Subject, WalConfig};
use srb_storage::{DriverKind, LogDevice};
use srb_types::{
    CollectionId, DatasetId, Lsn, ResourceId, SimClock, SiteId, SrbError, Timestamp, Triplet,
};
use std::sync::Arc;

/// splitmix64 — deterministic, dependency-free randomness for the chaos
/// schedule.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Snapshot JSON with the id-allocator watermark normalized out: recovery
/// floors the allocator at the highest id any durable row proves, which
/// may lag the live allocator by ids burned in deletes or unacknowledged
/// mutations. Every *row* must still match byte-for-byte.
fn normalized(m: &Mcat) -> String {
    let mut v: serde_json::Value = serde_json::from_str(&m.snapshot_json().unwrap()).unwrap();
    if let serde_json::Value::Map(entries) = &mut v {
        for (key, val) in entries.iter_mut() {
            if key == "next_id_floor" {
                *val = serde_json::Value::Null;
            }
        }
    }
    serde_json::to_string(&v).unwrap()
}

fn stored(step: usize) -> AccessSpec {
    AccessSpec::Stored {
        resource: ResourceId(1),
        phys_path: format!("/phys/{step}"),
    }
}

/// One op per step, each exactly one WAL commit group, so every recorded
/// `(marker LSN, snapshot)` pair is an acknowledgment boundary.
fn run_workload(
    seed: u64,
    ops: usize,
    config: WalConfig,
) -> (Mcat, Arc<LogDevice>, Vec<(Lsn, String)>) {
    let clock = SimClock::new();
    let m = Mcat::new(clock.clone(), "pw");
    let device = Arc::new(LogDevice::new());
    m.enable_wal(device.clone(), config, None).unwrap();
    let admin = m.admin();
    let mut rng = Rng(seed);
    let mut colls: Vec<CollectionId> = vec![m.collections.root()];
    let mut datasets: Vec<DatasetId> = Vec::new();
    let mut acked = Vec::new();
    for step in 0..ops {
        clock.advance(1_000_000);
        let now = m.clock.now();
        match rng.pick(12) {
            0 => {
                let p = colls[rng.pick(colls.len())];
                if let Ok(c) = m
                    .collections
                    .create(&m.ids, p, &format!("c{step}"), admin, now)
                {
                    colls.push(c);
                }
            }
            1 | 2 => {
                let c = colls[rng.pick(colls.len())];
                let size = (step as u64 % 977) * 7;
                if let Ok(d) = m.datasets.create(
                    &m.ids,
                    c,
                    &format!("d{step}"),
                    "generic",
                    admin,
                    vec![(stored(step), size, None)],
                    now,
                ) {
                    datasets.push(d);
                }
            }
            3 | 4 => {
                if !datasets.is_empty() {
                    let d = datasets[rng.pick(datasets.len())];
                    m.metadata.add(
                        &m.ids,
                        Subject::Dataset(d),
                        Triplet::new("step", step as i64, ""),
                        MetaKind::UserDefined,
                    );
                }
            }
            5 => {
                if !datasets.is_empty() {
                    let d = datasets[rng.pick(datasets.len())];
                    let c = colls[rng.pick(colls.len())];
                    let _ = m.datasets.move_dataset(d, c, &format!("m{step}"));
                }
            }
            6 => {
                if datasets.len() > 2 {
                    let d = datasets.remove(rng.pick(datasets.len()));
                    let _ = m.datasets.delete(d);
                }
            }
            7 => {
                if !datasets.is_empty() {
                    let d = datasets[rng.pick(datasets.len())];
                    m.annotations.add(
                        &m.ids,
                        Subject::Dataset(d),
                        admin,
                        now,
                        AnnotationKind::Comment,
                        "",
                        &format!("note {step}"),
                    );
                }
            }
            8 => {
                let _ = m
                    .users
                    .register(&m.ids, &format!("u{step}"), "sdsc", "pw", false);
            }
            9 => {
                if !datasets.is_empty() {
                    let d = datasets[rng.pick(datasets.len())];
                    let _ = m.datasets.update(d, |x| {
                        x.modified = now;
                        Ok(())
                    });
                }
            }
            10 => {
                if !datasets.is_empty() {
                    let d = datasets[rng.pick(datasets.len())];
                    let _ = m
                        .datasets
                        .add_replica(&m.ids, d, stored(step + 10_000), 16, None, now);
                }
            }
            11 => {
                let _ = m.resources.register(
                    &m.ids,
                    &format!("r{step}"),
                    DriverKind::FileSystem,
                    SiteId(0),
                );
            }
            _ => unreachable!(),
        }
        m.maybe_checkpoint().unwrap();
        let marker = m.wal().unwrap().durable_lsn();
        acked.push((marker, normalized(&m)));
    }
    (m, device, acked)
}

const NO_CKPT: WalConfig = WalConfig {
    checkpoint_interval_ns: 0,
};

/// The state the reference run had acknowledged at `kill`: the snapshot
/// recorded at the last commit marker at or before it.
fn expected_at(acked: &[(Lsn, String)], kill: u64) -> &str {
    acked
        .iter()
        .rev()
        .find(|(l, _)| l.raw() <= kill)
        .map(|(_, s)| s.as_str())
        .unwrap()
}

#[test]
fn kill_at_random_lsn_recovers_exactly_the_acknowledged_prefix() {
    let seed = 0xC0FF_EE00_5EED;
    let ops = 90;
    let (m_ref, dev_ref, acked) = run_workload(seed, ops, NO_CKPT);

    // Determinism: an identical run produces an identical log and states.
    let (_m2, dev2, acked2) = run_workload(seed, ops, NO_CKPT);
    assert_eq!(acked, acked2, "two seeded runs must agree state-for-state");
    assert_eq!(dev_ref.stats(), dev2.stats());
    assert_eq!(dev_ref.log_bytes(), dev2.log_bytes());
    drop(m_ref);

    let first = acked.first().unwrap().0.raw();
    let last = acked.last().unwrap().0.raw();
    assert!(last > first, "workload must acknowledge many groups");

    // Random kill points, plus the exact first/last ack boundaries and a
    // deliberate mid-group cut one record past an ack boundary.
    let mut rng = Rng(seed ^ 0x5EED);
    let mut kills: Vec<u64> = (0..8)
        .map(|_| first + rng.next() % (last - first))
        .collect();
    kills.push(first);
    kills.push(last);
    kills.push(acked[acked.len() / 2].0.raw() + 1);

    for kill in kills {
        let (m3, dev3, _) = run_workload(seed, ops, NO_CKPT);
        drop(m3);
        dev3.truncate_after(Lsn(kill));
        let (rec, report) = Mcat::recover(SimClock::new(), dev3, NO_CKPT, None).unwrap();
        assert_eq!(
            normalized(&rec),
            expected_at(&acked, kill),
            "kill at lsn {kill}: recovered catalog must equal the acked prefix"
        );
        assert!(report.durable_lsn.raw() <= kill);
        assert!(report.recovery_ns > 0, "recovery cost must be modeled");
    }
}

#[test]
fn periodic_checkpoints_bound_the_tail_and_survive_crashes() {
    let seed = 0xBAD_C0DE;
    let ops = 70;
    // 1 ms of virtual time per op, checkpoint every 5 ms → many cycles.
    let cfg = WalConfig {
        checkpoint_interval_ns: 5_000_000,
    };
    let (m_ref, dev_ref, acked) = run_workload(seed, ops, cfg);
    let cover = dev_ref
        .checkpoint_lsn()
        .expect("periodic checkpoints must have fired");
    assert!(cover.raw() > 0);
    let (_, _, records_past_ckpt) = dev_ref.stats();
    assert!(
        (records_past_ckpt as u64) < acked.last().unwrap().0.raw(),
        "checkpoints must prune the covered log prefix"
    );
    drop(m_ref);

    // kill -9 right at the end: the buffered tail vanishes, everything
    // acknowledged survives.
    let (m2, dev2, _) = run_workload(seed, ops, cfg);
    drop(m2);
    dev2.crash();
    let (rec, report) = Mcat::recover(SimClock::new(), dev2, cfg, None).unwrap();
    assert_eq!(normalized(&rec), acked.last().unwrap().1);
    assert_eq!(report.checkpoint_lsn, cover);

    // Kill between the last checkpoint and the end of the log: replay
    // starts from the checkpoint and applies the surviving tail groups.
    let last = acked.last().unwrap().0.raw();
    let kill = cover.raw() + (last - cover.raw()) / 2;
    let (m3, dev3, _) = run_workload(seed, ops, cfg);
    drop(m3);
    dev3.truncate_after(Lsn(kill));
    let (rec, report) = Mcat::recover(SimClock::new(), dev3, cfg, None).unwrap();
    assert_eq!(normalized(&rec), expected_at(&acked, kill));
    assert_eq!(report.checkpoint_lsn, cover);
}

#[test]
fn recovered_catalog_resumes_durable_operation() {
    let seed = 0xFEED_FACE;
    let (m, device, acked) = run_workload(seed, 40, NO_CKPT);
    let floor_before = m.ids.allocated();
    drop(m);
    device.crash();

    let (rec, _) = Mcat::recover(SimClock::new(), device.clone(), NO_CKPT, None).unwrap();
    assert_eq!(normalized(&rec), acked.last().unwrap().1);

    // The recovered catalog keeps working durably: a new dataset written
    // after recovery survives a second crash–recover cycle, and its id
    // cannot collide with any surviving row.
    let root = rec.collections.root();
    let admin = rec.admin();
    let d = rec
        .datasets
        .create(
            &rec.ids,
            root,
            "post-crash.dat",
            "generic",
            admin,
            vec![(stored(1), 5, None)],
            rec.clock.now(),
        )
        .unwrap();
    drop(rec);
    device.crash();
    let (rec2, report2) = Mcat::recover(SimClock::new(), device, NO_CKPT, None).unwrap();
    let got = rec2.datasets.get(d).unwrap();
    assert_eq!(got.name, "post-crash.dat");
    assert!(report2.groups_applied >= 1, "the new write was in the tail");
    assert!(
        rec2.ids.allocated() <= floor_before + 2,
        "recovery floors the allocator near the durable rows, never wildly past them"
    );
}

#[test]
fn torn_tail_and_missing_checkpoint_fail_cleanly() {
    // Recovery without any checkpoint (durability never enabled on this
    // device) is a clean error, not a silent empty catalog.
    let device = Arc::new(LogDevice::new());
    match Mcat::recover(SimClock::new(), device, NO_CKPT, None) {
        Err(SrbError::Invalid(_)) => {}
        Err(e) => panic!("expected Invalid, got {e:?}"),
        Ok(_) => panic!("expected Invalid, got a recovered catalog"),
    }

    // A torn final record (corrupt checksum) ends the replayable tail; the
    // catalog recovers to the previous acknowledged state.
    let (m, device, acked) = run_workload(0xD15C, 30, NO_CKPT);
    drop(m);
    device.crash();
    device.corrupt_last_synced();
    let (rec, _) = Mcat::recover(SimClock::new(), device, NO_CKPT, None).unwrap();
    // The torn record was the last commit marker, so the final group is
    // discarded: the recovered state matches some acknowledged prefix.
    let got = normalized(&rec);
    assert!(
        acked.iter().any(|(_, s)| *s == got),
        "torn-tail recovery must land on an acknowledged state"
    );
}

#[test]
fn wal_metrics_account_for_durability_work() {
    let metrics = srb_obs::MetricsRegistry::new();
    let clock = SimClock::new();
    let m = Mcat::new(clock.clone(), "pw");
    let device = Arc::new(LogDevice::new());
    m.enable_wal(
        device.clone(),
        WalConfig {
            checkpoint_interval_ns: 2_000_000,
        },
        Some(&metrics),
    )
    .unwrap();
    let root = m.collections.root();
    let admin = m.admin();
    for i in 0..10 {
        clock.advance(1_000_000);
        m.datasets
            .create(
                &m.ids,
                root,
                &format!("d{i}"),
                "generic",
                admin,
                vec![(stored(i), 10, None)],
                m.clock.now(),
            )
            .unwrap();
        m.maybe_checkpoint().unwrap();
    }
    assert!(metrics.counter("wal.appends", "").get() >= 20);
    assert!(metrics.counter("wal.group_commits", "").get() >= 10);
    assert!(metrics.counter("wal.checkpoints", "").get() >= 2);
    let wal = m.wal().unwrap();
    assert!(
        wal.take_pending_ns() > 0,
        "durability cost pools for receipts"
    );
    // Timestamps recover too: the catalog clock never runs backwards
    // through its last acknowledged commit.
    let before = m.clock.now();
    drop(m);
    device.crash();
    let metrics2 = srb_obs::MetricsRegistry::new();
    let (rec, report) = Mcat::recover(
        SimClock::new(),
        device,
        WalConfig::default(),
        Some(&metrics2),
    )
    .unwrap();
    assert!(rec.clock.now() >= Timestamp(before.nanos() - 1_000_000));
    assert_eq!(
        metrics2.counter("wal.recovery_ns", "").get(),
        report.recovery_ns
    );
    assert!(metrics2.counter("wal.checkpoints", "").get() >= 1);
}

#[test]
fn two_zones_recover_independently_and_registrations_survive() {
    use srb_mcat::{ZONE_HOME_ATTR, ZONE_PATH_ATTR, ZONE_URL_SCHEME};

    // Zone alpha: home of the dataset.
    let alpha = Mcat::new(SimClock::new(), "pw");
    let dev_a = Arc::new(LogDevice::new());
    alpha.enable_wal(dev_a.clone(), NO_CKPT, None).unwrap();
    let root_a = alpha.collections.root();
    let d_home = alpha
        .datasets
        .create(
            &alpha.ids,
            root_a,
            "survey.dat",
            "generic",
            alpha.admin(),
            vec![(stored(0), 1024, Some("fnv:abc".into()))],
            alpha.clock.now(),
        )
        .unwrap();

    // Zone beta: registers alpha's dataset as a remote replica with
    // WAL-logged provenance — the same rows srb-core's register_remote
    // writes.
    let beta = Mcat::new(SimClock::new(), "pw");
    let dev_b = Arc::new(LogDevice::new());
    beta.enable_wal(dev_b.clone(), NO_CKPT, None).unwrap();
    let root_b = beta.collections.root();
    let url = format!("{ZONE_URL_SCHEME}alpha/survey.dat");
    let d_remote = beta
        .datasets
        .create(
            &beta.ids,
            root_b,
            "survey.dat",
            "generic",
            beta.admin(),
            vec![(AccessSpec::Url { url }, 1024, Some("fnv:abc".into()))],
            beta.clock.now(),
        )
        .unwrap();
    beta.metadata.add(
        &beta.ids,
        Subject::Dataset(d_remote),
        Triplet::new(ZONE_HOME_ATTR, "alpha", ""),
        MetaKind::System,
    );
    beta.metadata.add(
        &beta.ids,
        Subject::Dataset(d_remote),
        Triplet::new(ZONE_PATH_ATTR, "/survey.dat", ""),
        MetaKind::System,
    );

    // Both zones crash and recover independently, each from its own log.
    drop(alpha);
    drop(beta);
    dev_a.crash();
    dev_b.crash();
    let (rec_a, _) = Mcat::recover(SimClock::new(), dev_a, NO_CKPT, None).unwrap();
    let (rec_b, _) = Mcat::recover(SimClock::new(), dev_b, NO_CKPT, None).unwrap();

    // The home row survives and is local; the registration survives with
    // full provenance.
    assert_eq!(rec_a.datasets.get(d_home).unwrap().name, "survey.dat");
    assert_eq!(rec_a.remote_provenance(d_home).unwrap(), None);
    assert_eq!(
        rec_b.remote_provenance(d_remote).unwrap(),
        Some(("alpha".to_string(), "/survey.dat".to_string()))
    );
}

#[test]
fn remote_row_without_provenance_fails_closed() {
    use srb_mcat::ZONE_URL_SCHEME;

    let m = Mcat::new(SimClock::new(), "pw");
    let root = m.collections.root();
    // A remote pointer whose provenance triplets were never written (or
    // were lost): resolving its home zone must be a hard error, not a
    // guess.
    let d = m
        .datasets
        .create(
            &m.ids,
            root,
            "orphan.dat",
            "generic",
            m.admin(),
            vec![(
                AccessSpec::Url {
                    url: format!("{ZONE_URL_SCHEME}ghost/orphan.dat"),
                },
                1,
                None,
            )],
            m.clock.now(),
        )
        .unwrap();
    match m.remote_provenance(d) {
        Err(SrbError::Invalid(_)) => {}
        other => panic!("expected Invalid for lost provenance, got {other:?}"),
    }
}

//! Concurrency stress tests over the catalog: parallel writers and
//! readers must never corrupt indexes or lose updates.

use srb_mcat::{Mcat, MetaKind, Query, Subject};
use srb_types::{CompareOp, LogicalPath, SimClock, Timestamp, Triplet};

fn mcat() -> Mcat {
    Mcat::new(SimClock::new(), "pw")
}

#[test]
fn parallel_metadata_ingest_and_query() {
    let m = mcat();
    let root = m.collections.root();
    let admin = m.admin();
    let coll = m
        .collections
        .create(&m.ids, root, "stress", admin, Timestamp(0))
        .unwrap();
    // Pre-create datasets so threads only race on metadata.
    let ids: Vec<_> = (0..400)
        .map(|i| {
            m.datasets
                .create(
                    &m.ids,
                    coll,
                    &format!("d{i}"),
                    "generic",
                    admin,
                    vec![],
                    Timestamp(0),
                )
                .unwrap()
        })
        .collect();
    std::thread::scope(|s| {
        // Four writer threads attach metadata to disjoint quarters.
        for q in 0..4 {
            let m = &m;
            let ids = &ids;
            s.spawn(move || {
                for (i, d) in ids.iter().enumerate().skip(q * 100).take(100) {
                    m.metadata.add(
                        &m.ids,
                        Subject::Dataset(*d),
                        Triplet::new("n", i as i64, ""),
                        MetaKind::UserDefined,
                    );
                }
            });
        }
        // Two query threads run concurrently with the writers.
        for _ in 0..2 {
            let m = &m;
            s.spawn(move || {
                for _ in 0..50 {
                    let q = Query::everywhere().and("n", CompareOp::Ge, 0i64);
                    let hits = m.query(&q).unwrap();
                    // Monotonically growing result set; never an error.
                    assert!(hits.len() <= 400);
                }
            });
        }
    });
    assert_eq!(m.metadata.count(), 400);
    let hits = m
        .query(&Query::everywhere().and("n", CompareOp::Ge, 0i64))
        .unwrap();
    assert_eq!(hits.len(), 400);
    // Index agrees with scan after the dust settles.
    let scan = m
        .query_scan(&Query::everywhere().and("n", CompareOp::Ge, 0i64))
        .unwrap();
    assert_eq!(hits, scan);
}

#[test]
fn parallel_collection_creation_is_name_safe() {
    let m = mcat();
    let root = m.collections.root();
    let admin = m.admin();
    // Many threads race to create the same names: exactly one winner each.
    let created = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let m = &m;
            let created = &created;
            s.spawn(move || {
                for i in 0..50 {
                    if m.collections
                        .create(&m.ids, root, &format!("c{i}"), admin, Timestamp(0))
                        .is_ok()
                    {
                        created.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(created.load(std::sync::atomic::Ordering::Relaxed), 50);
    assert_eq!(m.collections.count(), 51); // root + 50
    for i in 0..50 {
        assert!(m
            .collections
            .resolve(&LogicalPath::parse(&format!("/c{i}")).unwrap())
            .is_ok());
    }
}

#[test]
fn parallel_dataset_creation_unique_names() {
    let m = mcat();
    let root = m.collections.root();
    let admin = m.admin();
    let coll = m
        .collections
        .create(&m.ids, root, "c", admin, Timestamp(0))
        .unwrap();
    let wins = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let m = &m;
            let wins = &wins;
            s.spawn(move || {
                for i in 0..100 {
                    if m.datasets
                        .create(
                            &m.ids,
                            coll,
                            &format!("d{i}"),
                            "generic",
                            admin,
                            vec![],
                            Timestamp(0),
                        )
                        .is_ok()
                    {
                        wins.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(wins.load(std::sync::atomic::Ordering::Relaxed), 100);
    assert_eq!(m.datasets.count(), 100);
    assert_eq!(m.datasets.list(coll).len(), 100);
}

#[test]
fn audit_log_is_lossless_under_contention() {
    let m = mcat();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let m = &m;
            s.spawn(move || {
                for i in 0..500 {
                    m.audit.record(
                        &m.ids,
                        Timestamp(i),
                        srb_types::UserId(t),
                        srb_mcat::AuditAction::Read,
                        &format!("/f{t}-{i}"),
                        "ok",
                    );
                }
            });
        }
    });
    assert_eq!(m.audit.count(), 4000);
    for t in 0..8u64 {
        assert_eq!(m.audit.for_user(srb_types::UserId(t)).len(), 500);
    }
}

//! Percent-encoding and `application/x-www-form-urlencoded` parsing.

use std::collections::HashMap;

/// Percent-encode a string for use in a URL query component.
pub fn encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push_str("%20"),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decode a percent-encoded component (`+` means space, as forms send it).
pub fn decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => match (hex_val(bytes[i + 1]), hex_val(bytes[i + 2])) {
                (Some(h), Some(l)) => {
                    out.push(h * 16 + l);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Parse a query string or form body into a map (last value wins, except
/// that repeated keys are also collected with `key` suffixed by its index
/// for multi-row forms: `meta_name`, `meta_name.1`, …).
pub fn parse_form(s: &str) -> HashMap<String, String> {
    let mut out: HashMap<String, String> = HashMap::new();
    let mut counts: HashMap<String, usize> = HashMap::new();
    for pair in s.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let key = decode(k);
        let val = decode(v);
        let n = counts.entry(key.clone()).or_insert(0);
        if *n == 0 {
            out.insert(key.clone(), val);
        } else {
            out.insert(format!("{key}.{n}"), val);
        }
        *n += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let s = "Avian Culture/condor & friends?=100%";
        assert_eq!(decode(&encode(s)), s);
        assert_eq!(encode("a b"), "a%20b");
        assert_eq!(decode("a+b"), "a b");
        assert_eq!(decode("%2Fhome%2Fsekar"), "/home/sekar");
    }

    #[test]
    fn malformed_percent_passes_through() {
        assert_eq!(decode("100%"), "100%");
        assert_eq!(decode("%zz"), "%zz");
        assert_eq!(decode("%2"), "%2");
    }

    #[test]
    fn form_parsing_with_repeats() {
        let m = parse_form("a=1&b=x+y&a=2&a=3&empty=&flag");
        assert_eq!(m["a"], "1");
        assert_eq!(m["a.1"], "2");
        assert_eq!(m["a.2"], "3");
        assert_eq!(m["b"], "x y");
        assert_eq!(m["empty"], "");
        assert_eq!(m["flag"], "");
    }
}

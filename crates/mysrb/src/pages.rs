//! Page renderers.
//!
//! Each function renders one MySRB page to an HTML string, driven entirely
//! through the public `SrbConnection` API (MySRB is a *client* of SRB, as
//! in the paper). Figure 1 of the paper corresponds to [`browse_page`];
//! Figure 2 to [`ingest_form`].

use crate::html::{escape, link, page, select, table, text_input};
use crate::urlenc::encode;
use srb_core::{ObjectContent, SrbConnection};
use srb_mcat::metadata::DUBLIN_CORE;
use srb_mcat::{AnnotationKind, Query, QueryHit};
use srb_types::{CompareOp, LogicalPath, SrbResult};

/// The login page.
pub fn login_page(message: Option<&str>) -> String {
    let mut body = String::new();
    if let Some(m) = message {
        body.push_str(&format!("<p style=\"color:#900\">{}</p>\n", escape(m)));
    }
    body.push_str("<h2>Sign on to MySRB</h2>\n<form method=\"post\" action=\"/login\">\n");
    body.push_str(&text_input("User name", "user", ""));
    body.push_str(&text_input("Domain", "domain", "sdsc"));
    body.push_str(
        "<label>Password: <input type=\"password\" name=\"password\"></label><br>\n\
         <input type=\"submit\" value=\"Connect\">\n</form>\n",
    );
    page("MySRB sign on", None, None, &body)
}

fn breadcrumbs(path: &str) -> String {
    let lp = match LogicalPath::parse(path) {
        Ok(p) => p,
        Err(_) => return escape(path),
    };
    let mut out = link("/browse?path=%2F", "/");
    let mut acc = LogicalPath::root();
    for c in lp.components() {
        let Ok(next) = acc.child(c) else {
            return escape(path);
        };
        acc = next;
        out.push_str(" &rsaquo; ");
        out.push_str(&link(
            &format!("/browse?path={}", encode(&acc.to_string())),
            c,
        ));
    }
    out
}

/// Render one metadata value, honouring the paper's "creative modes": a
/// value that is a URL or an SRB path becomes a clickable hot-link, and a
/// value whose *units* are `inline` has its content inlined (thumbnails,
/// database-backed properties).
fn render_meta_value(conn: &SrbConnection, value: &str, units: &str) -> String {
    let is_url = value.starts_with("http://") || value.starts_with("https://");
    let is_srb = value.starts_with('/') && value.len() > 1;
    if units == "inline" {
        if is_srb {
            if let Ok((content, _)) = conn.open(value, &[]) {
                return format!("<blockquote>{}</blockquote>", escape(&content.display()));
            }
        }
        if is_url {
            if let Ok((bytes, _)) = conn.grid().web.fetch(value) {
                return format!(
                    "<blockquote>{}</blockquote>",
                    escape(&String::from_utf8_lossy(&bytes))
                );
            }
        }
    }
    if is_url {
        return format!("<a href=\"{}\">{}</a>", escape(value), escape(value));
    }
    if is_srb {
        return link(&format!("/view?path={}", encode(value)), value);
    }
    escape(value)
}

fn metadata_pane(conn: &SrbConnection, path: &str) -> String {
    let mut top = format!("<b>{}</b><br>\n", breadcrumbs(path));
    match conn.metadata(path) {
        Ok(rows) if !rows.is_empty() => {
            let rendered: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        escape(&r.triplet.name),
                        render_meta_value(conn, &r.triplet.value.lexical(), &r.triplet.units),
                        escape(&r.triplet.units),
                        escape(match &r.kind {
                            srb_mcat::MetaKind::System => "system",
                            srb_mcat::MetaKind::UserDefined => "user",
                            srb_mcat::MetaKind::TypeOriented(s) => s,
                            srb_mcat::MetaKind::FileBased(_) => "file-based",
                        }),
                    ]
                })
                .collect();
            top.push_str(&table(&["attribute", "value", "units", "kind"], &rendered));
        }
        Ok(_) => top.push_str("<i>no metadata</i>\n"),
        Err(e) => top.push_str(&format!("<i>{}</i>\n", escape(&e.to_string()))),
    }
    match conn.annotations(path) {
        Ok(notes) if !notes.is_empty() => {
            top.push_str("<p><b>Annotations</b></p>\n<ul>\n");
            for n in notes {
                top.push_str(&format!(
                    "<li>[{}] {} <i>({} at {})</i></li>\n",
                    escape(n.kind.name()),
                    escape(&n.text),
                    n.author,
                    n.at
                ));
            }
            top.push_str("</ul>\n");
        }
        _ => {}
    }
    top
}

/// The metadata-only view ("the user can select to just view the metadata
/// for an object").
pub fn meta_page(conn: &SrbConnection, path: &str) -> SrbResult<String> {
    // Permission check happens inside the pane's catalog calls; surface
    // resolution errors eagerly so missing objects 404.
    conn.metadata(path)?;
    let top = metadata_pane(conn, path);
    Ok(page(
        &format!("MySRB — metadata of {path}"),
        Some(""),
        None,
        &top,
    ))
}

/// Rows per browse page when the request names no `n` — large enough that
/// small collections stay single-page, bounded so Digital-Sky-scale ones
/// cost O(page) per window.
const BROWSE_PAGE_ROWS: usize = 500;

/// Figure 1: the main collection page — metadata pane on top, the
/// collection listing with per-object operations below. Listing windows
/// are served by cursor (`cursor`/`n` request params): each page costs
/// O(page) in the catalog and ends with a stable `[next page]` link
/// carrying the opaque continuation token.
pub fn browse_page(
    conn: &SrbConnection,
    path: &str,
    cursor: Option<&str>,
    n: usize,
    fed: Option<(&srb_core::Federation, srb_core::ZoneId)>,
) -> SrbResult<String> {
    let n = if n == 0 { BROWSE_PAGE_ROWS } else { n };
    let ((subs, datasets, _), next) = conn.list_collection_page(path, cursor, n)?;
    let top = metadata_pane(conn, path);
    let mut bottom = String::new();
    let enc = |p: &str| encode(p);
    let base = path.trim_end_matches('/');
    bottom.push_str(&format!(
        "<p class=\"ops\">{} {} {}</p>\n",
        link(&format!("/ingest?coll={}", enc(path)), "[ingest file]"),
        link(
            &format!("/mkcoll?parent={}", enc(path)),
            "[new sub-collection]"
        ),
        link(&format!("/query?scope={}", enc(path)), "[query]"),
    ));
    let mut rows: Vec<Vec<String>> = Vec::new();
    for s in &subs {
        let full = format!("{base}/{s}");
        let mut row = vec![
            link(&format!("/browse?path={}", enc(&full)), s),
            "collection".into(),
            String::new(),
        ];
        if fed.is_some() {
            row.push(String::new());
        }
        row.push(String::new());
        rows.push(row);
    }
    for (name, ty, size) in &datasets {
        let full = format!("{base}/{name}");
        let ops = format!(
            "{} {} {}",
            link(&format!("/view?path={}", enc(&full)), "view"),
            link(&format!("/meta?path={}", enc(&full)), "metadata"),
            link(&format!("/annotate?path={}", enc(&full)), "annotate"),
        );
        let mut row = vec![
            link(&format!("/view?path={}", enc(&full)), name),
            escape(ty),
            size.to_string(),
        ];
        if let Some((f, here)) = fed {
            row.push(escape(&dataset_zone(f, here, &full)));
        }
        row.push(ops);
        rows.push(row);
    }
    if rows.is_empty() && cursor.is_none() {
        bottom.push_str("<i>empty collection</i>\n");
    } else {
        let headers: &[&str] = if fed.is_some() {
            &["name", "type", "size", "zone", "operations"]
        } else {
            &["name", "type", "size", "operations"]
        };
        bottom.push_str(&table(headers, &rows));
    }
    if let Some(token) = next {
        // The continuation token is opaque and self-validating; the link
        // stays stable for a given page until the collection mutates.
        bottom.push_str(&format!(
            "<p class=\"pager\">{}</p>\n",
            link(
                &format!("/browse?path={}&n={n}&cursor={}", enc(path), enc(&token)),
                "[next page]"
            ),
        ));
    }
    Ok(page(
        &format!("MySRB — {path}"),
        Some(""),
        Some(&top),
        &bottom,
    ))
}

/// The object view: "when a user 'opens' a file, the attributes about the
/// file are displayed along with the contents of the file."
pub fn view_page(conn: &SrbConnection, path: &str, args: &[String]) -> SrbResult<String> {
    let (content, receipt) = conn.open(path, args)?;
    let top = metadata_pane(conn, path);
    let mut bottom = String::new();
    match &content {
        ObjectContent::Bytes(b) => {
            bottom.push_str("<pre>");
            bottom.push_str(&escape(&String::from_utf8_lossy(b)));
            bottom.push_str("</pre>\n");
        }
        ObjectContent::Table { rendered, .. } => bottom.push_str(rendered),
        ObjectContent::Listing(files) => {
            bottom.push_str("<ul>\n");
            for f in files {
                bottom.push_str(&format!("<li>{}</li>\n", escape(f)));
            }
            bottom.push_str("</ul>\n");
        }
    }
    bottom.push_str(&format!(
        "<p><small>served in {:.3} ms (simulated), {} replica(s) tried, {} hop(s)</small></p>\n",
        receipt.sim_ms(),
        receipt.replicas_tried,
        receipt.hops
    ));
    Ok(page(
        &format!("MySRB — {path}"),
        Some(""),
        Some(&top),
        &bottom,
    ))
}

/// Figure 2: the file-ingestion form with structural metadata (defaults and
/// restricted vocabularies as drop-downs), Dublin Core attributes, and
/// free user-defined attribute rows.
pub fn ingest_form(conn: &SrbConnection, coll: &str) -> SrbResult<String> {
    let lp = LogicalPath::parse(coll)?;
    let coll_id = conn.grid().mcat.collections.resolve(&lp)?;
    let requirements = conn.grid().mcat.requirements_for(coll_id)?;
    let resources: Vec<String> = conn
        .grid()
        .mcat
        .resources
        .list()
        .into_iter()
        .map(|r| r.name)
        .chain(
            conn.grid()
                .mcat
                .resources
                .list_logical()
                .into_iter()
                .map(|r| r.name),
        )
        .collect();
    let containers: Vec<String> = std::iter::once(String::new())
        .chain(
            conn.grid()
                .mcat
                .containers
                .list()
                .into_iter()
                .map(|c| c.name),
        )
        .collect();
    let mut body = format!(
        "<h2>Ingest into {}</h2>\n<form method=\"post\" action=\"/ingest\">\n\
         <input type=\"hidden\" name=\"coll\" value=\"{}\">\n",
        escape(coll),
        escape(coll)
    );
    body.push_str(&text_input("File name", "name", ""));
    body.push_str(&format!(
        "<label>Resource: {}</label><br>\n",
        select("resource", &resources, None)
    ));
    body.push_str(&format!(
        "<label>Container (overrides resource): {}</label><br>\n",
        select("container", &containers, None)
    ));
    body.push_str(&text_input("Data type", "data_type", "generic"));
    body.push_str(
        "<label>Contents:<br><textarea name=\"content\" rows=\"6\" cols=\"60\">\
         </textarea></label><br>\n",
    );
    if !requirements.is_empty() {
        body.push_str("<h3>Collection metadata requirements</h3>\n");
        for req in &requirements {
            let field = format!("req_{}", req.name);
            let star = if req.mandatory { " *" } else { "" };
            if req.allowed.len() > 1 {
                body.push_str(&format!(
                    "<label>{}{}: {} <small>{}</small></label><br>\n",
                    escape(&req.name),
                    star,
                    select(&field, &req.allowed, req.default_value()),
                    escape(&req.comment)
                ));
            } else {
                body.push_str(&format!(
                    "<label>{}{}: <input type=\"text\" name=\"{}\" value=\"{}\"> \
                     <small>{}</small></label><br>\n",
                    escape(&req.name),
                    star,
                    escape(&field),
                    escape(req.default_value().unwrap_or("")),
                    escape(&req.comment)
                ));
            }
        }
    }
    body.push_str("<h3>Dublin Core attributes</h3>\n");
    for element in DUBLIN_CORE {
        body.push_str(&text_input(element, &format!("dc_{element}"), ""));
    }
    body.push_str("<h3>User-defined attributes</h3>\n");
    for _ in 0..3 {
        body.push_str(
            "<input type=\"text\" name=\"meta_name\" placeholder=\"name\"> = \
             <input type=\"text\" name=\"meta_value\" placeholder=\"value\"> \
             <input type=\"text\" name=\"meta_units\" placeholder=\"units\" size=\"6\"><br>\n",
        );
    }
    body.push_str("<p><input type=\"submit\" value=\"Ingest\"></p>\n</form>\n");
    Ok(page("MySRB — ingest", Some(""), None, &body))
}

/// The query builder: four-part conditions ("a metadata name part which is
/// a drop-down menu … a comparison operator … a text box … a checkbox").
pub fn query_form(conn: &SrbConnection, scope: &str) -> SrbResult<String> {
    let lp = LogicalPath::parse(scope)?;
    let attrs = conn.grid().mcat.queryable_attrs(&lp)?;
    let ops: Vec<String> = CompareOp::all()
        .iter()
        .map(|o| o.display().to_string())
        .collect();
    let mut attr_options = vec![String::new()];
    attr_options.extend(attrs);
    let mut body = format!(
        "<h2>Query under {}</h2>\n<form method=\"post\" action=\"/query\">\n\
         <input type=\"hidden\" name=\"scope\" value=\"{}\">\n<table>\n\
         <tr><th>attribute</th><th>operator</th><th>value</th><th>show</th></tr>\n",
        escape(scope),
        escape(scope)
    );
    for _ in 0..4 {
        body.push_str(&format!(
            "<tr><td>{}</td><td>{}</td>\
             <td><input type=\"text\" name=\"value\"></td>\
             <td><input type=\"checkbox\" name=\"show\" value=\"1\"></td></tr>\n",
            select("attr", &attr_options, None),
            select("op", &ops, None),
        ));
    }
    body.push_str(
        "</table>\n<label><input type=\"checkbox\" name=\"system\" value=\"1\"> \
         include system metadata</label>\n\
         <label><input type=\"checkbox\" name=\"annotations\" value=\"1\"> \
         include annotations</label>\n\
         <p><input type=\"submit\" value=\"Search\"></p>\n</form>\n",
    );
    Ok(page("MySRB — query", Some(""), None, &body))
}

/// Query result listing.
pub fn query_results(q: &Query, hits: &[QueryHit]) -> String {
    let mut headers = vec!["object"];
    for s in &q.select {
        headers.push(s.as_str());
    }
    let rows: Vec<Vec<String>> = hits
        .iter()
        .map(|h| {
            let mut row = vec![link(&format!("/view?path={}", encode(&h.path)), &h.path)];
            row.extend(h.selected.iter().map(|(_, v)| escape(v)));
            row
        })
        .collect();
    let mut body = format!(
        "<h2>{} result(s) under {}</h2>\n",
        hits.len(),
        escape(&q.scope.to_string())
    );
    if hits.is_empty() {
        body.push_str("<i>no objects satisfy the conditions</i>\n");
    } else {
        body.push_str(&table(&headers, &rows));
    }
    page("MySRB — results", Some(""), None, &body)
}

/// The annotation entry form.
pub fn annotate_form(path: &str) -> String {
    let kinds: Vec<String> = AnnotationKind::all()
        .iter()
        .map(|k| k.name().to_string())
        .collect();
    let body = format!(
        "<h2>Annotate {}</h2>\n<form method=\"post\" action=\"/annotate\">\n\
         <input type=\"hidden\" name=\"path\" value=\"{}\">\n\
         <label>Kind: {}</label><br>\n\
         {}\
         <label>Text:<br><textarea name=\"text\" rows=\"4\" cols=\"60\"></textarea></label><br>\n\
         <input type=\"submit\" value=\"Add annotation\">\n</form>\n",
        escape(path),
        escape(path),
        select("kind", &kinds, None),
        text_input("Location (optional)", "location", ""),
    );
    page("MySRB — annotate", Some(""), None, &body)
}

/// The user-registration form (the paper lists "user registration" among
/// MySRB's additional functionalities).
pub fn register_form(message: Option<&str>) -> String {
    let mut body = String::new();
    if let Some(m) = message {
        body.push_str(&format!("<p style=\"color:#900\">{}</p>\n", escape(m)));
    }
    body.push_str(
        "<h2>Register a MySRB account</h2>\n<form method=\"post\" action=\"/register\">\n",
    );
    body.push_str(&text_input("User name", "user", ""));
    body.push_str(&text_input("Domain", "domain", "sdsc"));
    body.push_str(
        "<label>Password: <input type=\"password\" name=\"password\"></label><br>\n\
         <input type=\"submit\" value=\"Register\">\n</form>\n\
         <p><a href=\"/\">back to sign on</a></p>\n",
    );
    page("MySRB — register", None, None, &body)
}

/// The edit form for small ASCII files ("a user can … edit a file, if it
/// is a small ASCII file (the edit facility is allowed only for a few
/// data types)").
pub fn edit_form(conn: &SrbConnection, path: &str) -> SrbResult<String> {
    let (content, _) = conn.open(path, &[])?;
    let text = content.display();
    let body = format!(
        "<h2>Edit {}</h2>\n<form method=\"post\" action=\"/edit\">\n\
         <input type=\"hidden\" name=\"path\" value=\"{}\">\n\
         <textarea name=\"content\" rows=\"16\" cols=\"80\">{}</textarea><br>\n\
         <input type=\"submit\" value=\"Save\">\n</form>\n",
        escape(path),
        escape(path),
        escape(&text)
    );
    Ok(page("MySRB — edit", Some(""), None, &body))
}

/// On-line help (the paper lists "on-line help" among MySRB's additional
/// functionalities).
pub fn help_page() -> String {
    let body = "\
<h2>MySRB help</h2>
<ul>
<li><b>Browse</b>: the small top window shows metadata about the current
collection; the larger bottom window lists its elements. Click a name to
open it — a file shows its attributes together with its contents.</li>
<li><b>Ingest</b>: choose a resource (a logical resource stores synchronous
replicas on all its members) or a container (overrides the resource).
Attributes required by the collection are marked with *; restricted
vocabularies appear as drop-downs.</li>
<li><b>Query</b>: each condition has an attribute (drop-down of names
queryable in the scope), an operator (=, &gt;, &lt;, &lt;=, &gt;=, &lt;&gt;,
like, not like), a value, and a check-box to show the attribute in the
result listing. Conditions are ANDed.</li>
<li><b>Annotations</b>: any user with read permission may attach comments,
ratings, errata, dialogues, annotations or memos.</li>
<li><b>Sessions</b> expire after 60 minutes; sign on again.</li>
</ul>
<p><a href=\"/\">back</a></p>\n";
    page("MySRB — help", None, None, body)
}

/// Grid administration overview (resources, servers, catalog counts,
/// recent audit rows).
pub fn admin_page(conn: &SrbConnection) -> String {
    let grid = conn.grid();
    let mut body = String::from("<h2>Grid status</h2>\n");
    let resources: Vec<Vec<String>> = grid
        .mcat
        .resources
        .list()
        .into_iter()
        .map(|r| {
            let up = grid.resource_is_up(r.id);
            vec![
                escape(&r.name),
                escape(r.kind.name()),
                grid.network.site_name(r.site).to_string(),
                if up {
                    "up".into()
                } else {
                    "<b>DOWN</b>".into()
                },
            ]
        })
        .collect();
    body.push_str("<h3>Resources</h3>\n");
    body.push_str(&table(&["name", "kind", "site", "status"], &resources));
    let containers: Vec<Vec<String>> = grid
        .mcat
        .containers
        .list()
        .into_iter()
        .map(|c| {
            vec![
                escape(&c.name),
                c.members.len().to_string(),
                format!("{} / {}", c.size, c.max_size),
                if c.synced { "synced" } else { "dirty" }.to_string(),
            ]
        })
        .collect();
    body.push_str("<h3>Containers</h3>\n");
    body.push_str(&table(&["name", "members", "fill", "archive"], &containers));
    let users: Vec<Vec<String>> = grid
        .mcat
        .users
        .list_users()
        .into_iter()
        .map(|u| {
            vec![
                escape(&u.qualified()),
                u.groups.len().to_string(),
                if u.is_admin { "admin" } else { "user" }.to_string(),
            ]
        })
        .collect();
    body.push_str("<h3>Users</h3>\n");
    body.push_str(&table(&["name", "groups", "role"], &users));
    body.push_str("<h3>Catalog</h3>\n<pre>");
    body.push_str(&escape(
        &serde_json::to_string_pretty(&grid.mcat.summary())
            .unwrap_or_else(|e| format!("catalog summary unavailable: {e}")),
    ));
    body.push_str("</pre>\n<h3>Recent audit rows</h3>\n");
    let audit: Vec<Vec<String>> = grid
        .mcat
        .audit
        .recent(20)
        .into_iter()
        .map(|r| {
            vec![
                r.at.to_string(),
                r.user.to_string(),
                r.action.name().to_string(),
                escape(&r.subject),
                escape(&r.outcome),
            ]
        })
        .collect();
    body.push_str(&table(
        &["time", "user", "action", "subject", "outcome"],
        &audit,
    ));
    page("MySRB — admin", Some(""), None, &body)
}

/// Which zone a browsed dataset lives in: its remote-provenance home zone
/// when the row is a cross-zone registration or replication mirror, the
/// browsing zone's own name otherwise. Rows whose provenance was lost
/// ([`srb_mcat::Mcat::remote_provenance`] fails closed) render as `?`.
fn dataset_zone(fed: &srb_core::Federation, here: srb_core::ZoneId, full_path: &str) -> String {
    let Ok(zone) = fed.zone(here) else {
        return String::new();
    };
    let mcat = &zone.grid.mcat;
    let resolved = LogicalPath::parse(full_path).and_then(|lp| mcat.resolve_dataset(&lp));
    match resolved.and_then(|id| mcat.remote_provenance(id)) {
        Ok(Some((home, _))) => format!("{home} (remote)"),
        Ok(None) => zone.name().to_string(),
        Err(_) => "?".to_string(),
    }
}

/// The operator dashboard (`/grid-status`): per-resource breaker health
/// and fault counters, grid-wide fan-out/repair totals, the slowest
/// operations the grid has executed, each with its receipt leg breakdown,
/// and — when the app is zone-aware — the federation panel: member zones,
/// peering-link health, and per-subscription replication lag.
pub fn grid_status(
    grid: &srb_core::Grid,
    fed: Option<(&srb_core::Federation, srb_core::ZoneId)>,
) -> String {
    let snap = grid.metrics_snapshot();
    let mut body = String::new();
    body.push_str("<h3>Resource health</h3>\n");
    let rows: Vec<Vec<String>> = grid
        .mcat
        .resources
        .list()
        .into_iter()
        .map(|r| {
            let state = match grid.health.state(r.id) {
                srb_core::BreakerState::Closed => "closed",
                srb_core::BreakerState::Open => "OPEN",
                srb_core::BreakerState::HalfOpen => "half-open",
            };
            vec![
                escape(&r.name),
                state.to_string(),
                snap.counter("faults.injected", &r.name).to_string(),
                snap.counter("health.fast_fails", &r.name).to_string(),
                snap.counter("health.breaker_trips", &r.name).to_string(),
            ]
        })
        .collect();
    body.push_str(&table(
        &[
            "resource",
            "breaker",
            "faults injected",
            "fast fails",
            "trips",
        ],
        &rows,
    ));
    body.push_str(&format!(
        "<p>{} fan-out legs dispatched · {} failed · {} went stale · {} repaired · \
         {} retries · {} scope-cache hits / {} misses</p>\n",
        snap.counter_total("fanout.legs_dispatched"),
        snap.counter_total("fanout.legs_failed"),
        snap.counter_total("fanout.legs_stale"),
        snap.counter_total("health.repairs"),
        snap.counter_total("health.retries"),
        snap.counter_total("query.scope_cache_hits"),
        snap.counter_total("query.scope_cache_misses"),
    ));
    body.push_str("<h3>Slowest operations</h3>\n");
    let slow: Vec<Vec<String>> = snap
        .slow_ops
        .iter()
        .map(|op| {
            let c = &op.cost;
            let mut legs = vec![format!("{:.2}ms", c.sim_ns as f64 / 1e6)];
            if c.bytes > 0 {
                legs.push(format!("{}B", c.bytes));
            }
            if c.retries > 0 {
                legs.push(format!("{} retries", c.retries));
            }
            if c.replicas_tried > 1 {
                legs.push(format!("{} replicas tried", c.replicas_tried));
            }
            if c.served_stale {
                legs.push("stale".to_string());
            }
            vec![escape(&op.op), escape(&op.subject), legs.join(" · ")]
        })
        .collect();
    body.push_str(&table(&["op", "subject", "cost"], &slow));
    if let Some((f, here)) = fed {
        body.push_str("<h3>Federation</h3>\n");
        let here_name = f
            .zone(here)
            .map(|z| z.name().to_string())
            .unwrap_or_default();
        body.push_str(&format!(
            "<p>this zone: <b>{}</b> · {} zone(s) federated</p>\n",
            escape(&here_name),
            f.zone_count(),
        ));
        let zrows: Vec<Vec<String>> = f
            .zones()
            .map(|(id, z)| {
                vec![
                    id.to_string(),
                    escape(z.name()),
                    z.grid.mcat.datasets.count().to_string(),
                ]
            })
            .collect();
        body.push_str(&table(&["zone", "name", "datasets"], &zrows));
        let lrows: Vec<Vec<String>> = f
            .link_statuses()
            .into_iter()
            .map(|l| {
                vec![
                    l.from.to_string(),
                    l.to.to_string(),
                    format!("{} us", l.latency_us),
                    if l.up {
                        "up".into()
                    } else {
                        "PARTITIONED".into()
                    },
                ]
            })
            .collect();
        body.push_str(&table(&["from", "to", "latency", "link"], &lrows));
        let srows: Vec<Vec<String>> = f
            .subscriptions()
            .into_iter()
            .map(|s| {
                let name_of = |z| {
                    f.zone(z)
                        .map(|x| x.name().to_string())
                        .unwrap_or_else(|_| z.to_string())
                };
                vec![
                    format!("{} → {}", name_of(s.src), name_of(s.dst)),
                    escape(&s.src_root),
                    s.fetched_lsn.to_string(),
                    s.applied.to_string(),
                    s.outbox.to_string(),
                    s.resyncs.to_string(),
                    format!("{:.2} ms", s.max_lag_ns as f64 / 1e6),
                ]
            })
            .collect();
        if !srows.is_empty() {
            body.push_str(&table(
                &[
                    "subscription",
                    "subtree",
                    "fetched lsn",
                    "applied",
                    "outbox",
                    "resyncs",
                    "max lag",
                ],
                &srows,
            ));
        }
        let fsnap = f.metrics_snapshot();
        body.push_str(&format!(
            "<p>{} cross-zone registration(s) · {} delta(s) shipped · {} applied · \
             {} resync(s) · {} partition(s)</p>\n",
            fsnap.counter_total("zone.registrations"),
            fsnap.counter_total("zone.deltas_fetched"),
            fsnap.counter_total("zone.deltas_applied"),
            fsnap.counter_total("zone.resyncs"),
            fsnap.counter_total("zone.partitions"),
        ));
    }
    page("MySRB — grid status", Some(""), None, &body)
}

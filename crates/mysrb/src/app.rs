//! The MySRB application: request routing and form handling, independent
//! of the transport (the HTTP server in [`crate::http`] and the tests both
//! drive [`MySrb::handle`] directly).

use crate::pages;
use crate::session::SessionStore;
use crate::urlenc::{encode, parse_form};
use srb_core::{Grid, IngestOptions, SrbConnection};
use srb_mcat::metadata::DUBLIN_CORE;
use srb_mcat::{AnnotationKind, Query, QueryCondition};
use srb_types::{LogicalPath, ServerId, SrbError, Triplet};
use std::collections::HashMap;

/// A parsed HTTP request, transport-agnostic.
#[derive(Debug, Default, Clone)]
pub struct Request {
    /// `GET` or `POST`.
    pub method: String,
    /// Path without the query string, e.g. `/browse`.
    pub path: String,
    /// Query-string parameters.
    pub query: HashMap<String, String>,
    /// Form-body parameters (POST).
    pub form: HashMap<String, String>,
    /// The `mysrb_session` cookie value, when present.
    pub session: Option<String>,
}

impl Request {
    /// Build a GET request (tests, examples).
    pub fn get(path_and_query: &str, session: Option<&str>) -> Request {
        let (path, qs) = path_and_query
            .split_once('?')
            .unwrap_or((path_and_query, ""));
        Request {
            method: "GET".into(),
            path: path.to_string(),
            query: parse_form(qs),
            form: HashMap::new(),
            session: session.map(|s| s.to_string()),
        }
    }

    /// Build a POST request with a urlencoded body.
    pub fn post(path: &str, body: &str, session: Option<&str>) -> Request {
        Request {
            method: "POST".into(),
            path: path.to_string(),
            query: HashMap::new(),
            form: parse_form(body),
            session: session.map(|s| s.to_string()),
        }
    }

    fn param(&self, name: &str) -> &str {
        self.query
            .get(name)
            .or_else(|| self.form.get(name))
            .map(|s| s.as_str())
            .unwrap_or("")
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content type.
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Extra headers (`Set-Cookie`, `Location`).
    pub headers: Vec<(String, String)>,
}

impl Response {
    fn html(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8".into(),
            body: body.into_bytes(),
            headers: Vec::new(),
        }
    }

    fn redirect(to: &str) -> Response {
        Response {
            status: 303,
            content_type: "text/html".into(),
            body: format!("redirecting to {to}").into_bytes(),
            headers: vec![("Location".into(), to.to_string())],
        }
    }

    fn error(status: u16, msg: &str) -> Response {
        Response {
            status,
            content_type: "text/html; charset=utf-8".into(),
            body: crate::html::page(
                "MySRB — error",
                None,
                None,
                &format!(
                    "<p style=\"color:#900\">{}</p><p><a href=\"/\">back</a></p>",
                    crate::html::escape(msg)
                ),
            )
            .into_bytes(),
            headers: Vec::new(),
        }
    }

    /// Render a grid error without losing its kind: the HTTP status folds
    /// several `SrbError` variants together (503 covers both resource and
    /// site outages, 504 covers timeouts), so the stable error code rides
    /// along in the body for triage.
    fn grid_error(e: &SrbError) -> Response {
        Response {
            status: status_for(e),
            content_type: "text/html; charset=utf-8".into(),
            body: crate::html::page(
                "MySRB — error",
                None,
                None,
                &format!(
                    "<p style=\"color:#900\">{} <code>[{}]</code></p><p><a href=\"/\">back</a></p>",
                    crate::html::escape(&e.to_string()),
                    e.code(),
                ),
            )
            .into_bytes(),
            headers: Vec::new(),
        }
    }

    /// Body as UTF-8 (tests).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Front-end tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct MySrbConfig {
    /// Session-store sharding / sweep budget.
    pub session: crate::session::SessionConfig,
    /// Reuse pooled auth state on login instead of a full handshake per
    /// sign-on. Off is the unpooled ablation.
    pub pooled_login: bool,
}

impl Default for MySrbConfig {
    fn default() -> Self {
        MySrbConfig {
            session: crate::session::SessionConfig::default(),
            pooled_login: true,
        }
    }
}

/// The MySRB web application bound to one grid.
pub struct MySrb<'g> {
    grid: &'g Grid,
    contact: ServerId,
    sessions: SessionStore<'g>,
    pooled_login: bool,
    fed: Option<(&'g srb_core::Federation, srb_core::ZoneId)>,
}

impl<'g> MySrb<'g> {
    /// Create the app; browser sessions will connect through `contact`.
    pub fn new(grid: &'g Grid, contact: ServerId, seed: u64) -> Self {
        Self::with_config(grid, contact, seed, MySrbConfig::default())
    }

    /// Create the app with explicit front-end knobs (the load harness's
    /// ablation switch).
    pub fn with_config(grid: &'g Grid, contact: ServerId, seed: u64, config: MySrbConfig) -> Self {
        let mut sessions = SessionStore::with_config(grid.clock.clone(), seed, config.session);
        if let Some(obs) = grid.obs() {
            sessions = sessions.with_metrics(&obs.metrics);
        }
        MySrb {
            grid,
            contact,
            sessions,
            pooled_login: config.pooled_login,
            fed: None,
        }
    }

    /// Make the app zone-aware: `zone` is the federation member this
    /// front-end serves. Browse listings gain a zone column (home-zone
    /// provenance for remote rows) and `/grid-status` gains the
    /// federation panel.
    pub fn with_federation(
        mut self,
        fed: &'g srb_core::Federation,
        zone: srb_core::ZoneId,
    ) -> Self {
        self.fed = Some((fed, zone));
        self
    }

    /// The session store (tests).
    pub fn sessions(&self) -> &SessionStore<'g> {
        &self.sessions
    }

    /// Route a request to a handler, recording per-route request, status
    /// and error metrics when the grid has observability on.
    pub fn handle(&self, req: &Request) -> Response {
        let resp = self.route(req);
        if let Some(obs) = self.grid.obs() {
            obs.metrics.counter("web.requests", &req.path).inc();
            obs.metrics
                .counter("web.status", &resp.status.to_string())
                .inc();
            if resp.status >= 400 {
                obs.metrics.counter("web.errors", &req.path).inc();
            }
        }
        resp
    }

    fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/metrics") => Response {
                status: 200,
                content_type: "text/plain; charset=utf-8".into(),
                body: self.grid.metrics_snapshot().render_text().into_bytes(),
                headers: Vec::new(),
            },
            ("GET", "/grid-status") => Response::html(pages::grid_status(self.grid, self.fed)),
            ("GET", "/") | ("GET", "/login") => Response::html(pages::login_page(None)),
            ("POST", "/login") => self.login(req),
            ("GET", "/logout") => {
                if let Some(k) = &req.session {
                    self.sessions.remove(k);
                }
                Response::redirect("/")
            }
            ("GET", "/browse") => self.with_conn(req, |conn| {
                let path = default_path(req.param("path"));
                let n: usize = req.param("n").parse().unwrap_or(0);
                let cursor = req.param("cursor");
                let cursor = (!cursor.is_empty()).then_some(cursor);
                match pages::browse_page(conn, path, cursor, n, self.fed) {
                    // A stale or tampered cursor restarts the walk from
                    // page one instead of erroring the browser window.
                    Err(SrbError::Invalid(_)) if cursor.is_some() => {
                        pages::browse_page(conn, path, None, n, self.fed)
                    }
                    other => other,
                }
            }),
            ("GET", "/view") => self.with_conn(req, |conn| {
                let args: Vec<String> = req
                    .query
                    .get("args")
                    .map(|a| vec![a.clone()])
                    .unwrap_or_default();
                pages::view_page(conn, req.param("path"), &args)
            }),
            ("GET", "/meta") => {
                self.with_conn(req, |conn| pages::meta_page(conn, req.param("path")))
            }
            ("GET", "/ingest") => {
                self.with_conn(req, |conn| pages::ingest_form(conn, req.param("coll")))
            }
            ("POST", "/ingest") => self.ingest(req),
            ("GET", "/mkcoll") => self.with_conn(req, |conn| {
                let _ = conn; // form needs no catalog data
                Ok(crate::html::page(
                    "MySRB — new collection",
                    Some(""),
                    None,
                    &format!(
                        "<form method=\"post\" action=\"/mkcoll\">\
                         <input type=\"hidden\" name=\"parent\" value=\"{}\">\
                         {}<input type=\"submit\" value=\"Create\"></form>",
                        crate::html::escape(req.param("parent")),
                        crate::html::text_input("Name", "name", ""),
                    ),
                ))
            }),
            ("POST", "/mkcoll") => self.mkcoll(req),
            ("GET", "/query") => self.with_conn(req, |conn| {
                pages::query_form(conn, default_path(req.param("scope")))
            }),
            ("POST", "/query") => self.query(req),
            ("GET", "/annotate") => Response::html(pages::annotate_form(req.param("path"))),
            ("GET", "/register") => Response::html(pages::register_form(None)),
            ("POST", "/register") => self.register(req),
            ("GET", "/help") => Response::html(pages::help_page()),
            ("GET", "/edit") => self.with_conn(req, |conn| {
                self.check_editable(conn, req.param("path"))?;
                pages::edit_form(conn, req.param("path"))
            }),
            ("POST", "/edit") => self.with_conn(req, |conn| {
                let path = req.param("path");
                self.check_editable(conn, path)?;
                conn.write(path, req.param("content").as_bytes())?;
                pages::view_page(conn, path, &[])
            }),
            ("POST", "/annotate") => self.annotate(req),
            ("POST", "/delete") => self.delete(req),
            ("POST", "/replicate") => self.replicate(req),
            ("GET", "/admin") => self.with_conn(req, |conn| Ok(pages::admin_page(conn))),
            ("GET", "/api/summary") => self
                .with_conn(req, |conn| {
                    serde_json::to_string_pretty(&conn.grid().mcat.summary())
                        .map_err(|e| SrbError::Internal(format!("summary serialization: {e}")))
                })
                .into_json(),
            _ => Response::error(404, &format!("no such page: {}", req.path)),
        }
    }

    fn with_conn<F>(&self, req: &Request, f: F) -> Response
    where
        F: FnOnce(&SrbConnection<'g>) -> Result<String, SrbError>,
    {
        let Some(key) = &req.session else {
            return Response::redirect("/");
        };
        let out = self.sessions.with_session(key, |s| {
            let result = f(&s.conn);
            (result, s.conn.take_op_ns())
        });
        match out {
            Ok((result, op_ns)) => {
                if let Some(obs) = self.grid.obs() {
                    obs.metrics
                        .histogram("web.request_ns", &req.path)
                        .observe(op_ns);
                }
                match result {
                    Ok(html) => Response::html(html),
                    Err(e) => {
                        if let Some(obs) = self.grid.obs() {
                            obs.metrics.counter("web.error_codes", e.code()).inc();
                        }
                        Response::grid_error(&e)
                    }
                }
            }
            Err(_) => Response::redirect("/"),
        }
    }

    /// The paper's edit facility applies only to "a small ASCII file" of
    /// "a few data types".
    fn check_editable(&self, conn: &SrbConnection<'g>, path: &str) -> Result<(), SrbError> {
        let (data_type, size, _, _) = conn.stat(path)?;
        let editable = ["ascii text", "text", "t-language", "xml", "generic"]
            .iter()
            .any(|t| data_type.contains(t));
        if !editable {
            return Err(SrbError::Unsupported(format!(
                "editing is not allowed for data type '{data_type}'"
            )));
        }
        if size > 64 << 10 {
            return Err(SrbError::Unsupported(
                "editing is limited to small files (<= 64 KiB)".into(),
            ));
        }
        Ok(())
    }

    fn register(&self, req: &Request) -> Response {
        let user = req.param("user");
        let domain = req.param("domain");
        let password = req.param("password");
        if user.is_empty() || domain.is_empty() || password.is_empty() {
            return Response::html(pages::register_form(Some(
                "user, domain and password are all required",
            )));
        }
        match self.grid.register_user(user, domain, password) {
            Ok(_) => Response::html(pages::login_page(Some("account created — sign on below"))),
            Err(e) => Response::html(pages::register_form(Some(&e.to_string()))),
        }
    }

    fn login(&self, req: &Request) -> Response {
        let user = req.param("user");
        let domain = req.param("domain");
        let password = req.param("password");
        let connected = if self.pooled_login {
            SrbConnection::connect_pooled(self.grid, self.contact, user, domain, password)
        } else {
            SrbConnection::connect(self.grid, self.contact, user, domain, password)
        };
        match connected {
            Ok(conn) => {
                let key = self.sessions.create(conn, &format!("{user}@{domain}"));
                let mut resp = Response::redirect("/browse?path=%2F");
                resp.headers.push((
                    "Set-Cookie".into(),
                    format!("mysrb_session={key}; HttpOnly"),
                ));
                resp
            }
            Err(e) => Response::html(pages::login_page(Some(&e.to_string()))),
        }
    }

    fn collect_metadata(req: &Request) -> Vec<Triplet> {
        let mut metadata = Vec::new();
        // Structural requirement fields: req_<name>.
        for (k, v) in req.form.iter() {
            if let Some(name) = k.strip_prefix("req_") {
                if !v.is_empty() && !name.contains('.') {
                    metadata.push(Triplet::new(name, v.as_str(), ""));
                }
            }
        }
        // Dublin Core fields: dc_<Element>.
        for element in DUBLIN_CORE {
            let v = req.param(&format!("dc_{element}"));
            if !v.is_empty() {
                metadata.push(Triplet::new(element, v, ""));
            }
        }
        // User-defined rows: meta_name / meta_name.1 / meta_name.2 …
        for i in 0..8 {
            let suffix = if i == 0 {
                String::new()
            } else {
                format!(".{i}")
            };
            let name = req.param(&format!("meta_name{suffix}"));
            let value = req.param(&format!("meta_value{suffix}"));
            let units = req.param(&format!("meta_units{suffix}"));
            if !name.is_empty() && !value.is_empty() {
                metadata.push(Triplet::new(name, value, units));
            }
        }
        metadata
    }

    fn ingest(&self, req: &Request) -> Response {
        self.with_conn(req, |conn| {
            let coll = req.param("coll");
            let name = req.param("name");
            if name.is_empty() {
                return Err(SrbError::Invalid("file name is required".into()));
            }
            let data_type = if req.param("data_type").is_empty() {
                "generic".to_string()
            } else {
                req.param("data_type").to_string()
            };
            let mut opts = IngestOptions {
                data_type,
                ..IngestOptions::default()
            };
            let container = req.param("container");
            if !container.is_empty() {
                opts.container = Some(container.to_string());
            } else {
                opts.resource = Some(req.param("resource").to_string());
            }
            opts.metadata = Self::collect_metadata(req);
            let path = format!("{}/{}", coll.trim_end_matches('/'), name);
            conn.ingest(&path, req.param("content").as_bytes(), opts)?;
            pages::browse_page(conn, coll, None, 0, self.fed)
        })
    }

    fn mkcoll(&self, req: &Request) -> Response {
        self.with_conn(req, |conn| {
            let parent = req.param("parent");
            let name = req.param("name");
            let path = format!("{}/{}", parent.trim_end_matches('/'), name);
            conn.make_collection(&path)?;
            pages::browse_page(conn, parent, None, 0, self.fed)
        })
    }

    fn query(&self, req: &Request) -> Response {
        self.with_conn(req, |conn| {
            let scope = LogicalPath::parse(default_path(req.param("scope")))?;
            let mut q = Query::everywhere().under(scope);
            q.include_system = !req.param("system").is_empty();
            q.include_annotations = !req.param("annotations").is_empty();
            // Four parallel arrays: attr / op / value / show.
            for i in 0..4 {
                let suffix = if i == 0 {
                    String::new()
                } else {
                    format!(".{i}")
                };
                let attr = req.param(&format!("attr{suffix}"));
                let op = req.param(&format!("op{suffix}"));
                let value = req.param(&format!("value{suffix}"));
                let show = req.param(&format!("show{suffix}"));
                if !attr.is_empty() && !value.is_empty() {
                    q.conditions.push(QueryCondition::parse(attr, op, value)?);
                }
                // "One can check the box of a metadata name without using it
                // as part of any query condition."
                if !show.is_empty() && !attr.is_empty() {
                    q.select.push(attr.to_string());
                }
            }
            let (hits, _) = conn.query(&q)?;
            Ok(pages::query_results(&q, &hits))
        })
    }

    fn annotate(&self, req: &Request) -> Response {
        self.with_conn(req, |conn| {
            let path = req.param("path");
            let kind = AnnotationKind::parse(req.param("kind")).unwrap_or(AnnotationKind::Comment);
            conn.annotate(path, kind, req.param("location"), req.param("text"))?;
            pages::view_page(conn, path, &[])
        })
    }

    fn delete(&self, req: &Request) -> Response {
        self.with_conn(req, |conn| {
            let path = req.param("path");
            let repl = req.param("replica").parse::<u32>().ok();
            conn.delete(path, repl)?;
            pages::browse_page(conn, parent_of(path), None, 0, self.fed)
        })
    }

    fn replicate(&self, req: &Request) -> Response {
        self.with_conn(req, |conn| {
            let path = req.param("path");
            conn.replicate(path, req.param("resource"))?;
            pages::view_page(conn, path, &[])
        })
    }
}

trait IntoJson {
    fn into_json(self) -> Response;
}

impl IntoJson for Response {
    fn into_json(mut self) -> Response {
        if self.status == 200 {
            self.content_type = "application/json".into();
            // with_conn wrapped the JSON in the HTML page machinery only if
            // the closure returned page HTML; /api/summary returns raw JSON.
        }
        self
    }
}

fn default_path(p: &str) -> &str {
    if p.is_empty() {
        "/"
    } else {
        p
    }
}

fn parent_of(p: &str) -> &str {
    match p.rfind('/') {
        Some(0) | None => "/",
        Some(i) => &p[..i],
    }
}

/// Build a browse URL for a path (used by examples).
pub fn browse_url(path: &str) -> String {
    format!("/browse?path={}", encode(path))
}

fn status_for(e: &SrbError) -> u16 {
    match e {
        SrbError::NotFound(_) => 404,
        SrbError::PermissionDenied(_) => 403,
        SrbError::AuthFailed(_) => 401,
        SrbError::AlreadyExists(_) | SrbError::Locked(_) => 409,
        SrbError::ResourceUnavailable(_) | SrbError::SiteUnavailable(_) => 503,
        SrbError::Timeout(_) => 504,
        SrbError::Corrupt(_) | SrbError::Internal(_) => 500,
        _ => 400,
    }
}

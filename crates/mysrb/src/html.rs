//! Minimal HTML construction helpers shared by all pages.

pub use srb_core::template::escape;

/// Wrap body content in the standard MySRB chrome. When `split` content is
/// given, render the paper's split window: "the small top-window is used to
/// display metadata about data objects and collections, and the larger
/// bottom-window is used for displaying elements in a collection or for
/// displaying data objects".
pub fn page(title: &str, user: Option<&str>, top: Option<&str>, bottom: &str) -> String {
    let mut out = String::with_capacity(bottom.len() + 1024);
    out.push_str("<!DOCTYPE html>\n<html><head><title>");
    out.push_str(&escape(title));
    out.push_str("</title><style>\n");
    out.push_str(
        "body{font-family:sans-serif;margin:0}\n\
         .banner{background:#003366;color:#fff;padding:6px 12px}\n\
         .banner a{color:#9cf}\n\
         .split-top{height:30%;overflow:auto;border-bottom:3px double #336;\
background:#eef;padding:8px}\n\
         .split-bottom{overflow:auto;padding:8px}\n\
         table{border-collapse:collapse}\n\
         td,th{border:1px solid #99c;padding:2px 6px}\n\
         .ops a{margin-right:6px}\n",
    );
    out.push_str("</style></head><body>\n");
    out.push_str("<div class=\"banner\"><b>MySRB</b> &mdash; SDSC Storage Resource Broker");
    if let Some(u) = user {
        out.push_str(&format!(
            " &middot; signed in as <b>{}</b> &middot; <a href=\"/logout\">logout</a>",
            escape(u)
        ));
    }
    out.push_str("</div>\n");
    if let Some(top) = top {
        out.push_str("<div class=\"split-top\">\n");
        out.push_str(top);
        out.push_str("\n</div>\n<div class=\"split-bottom\">\n");
        out.push_str(bottom);
        out.push_str("\n</div>\n");
    } else {
        out.push_str("<div class=\"split-bottom\">\n");
        out.push_str(bottom);
        out.push_str("\n</div>\n");
    }
    out.push_str("</body></html>\n");
    out
}

/// An HTML table from a header row and string rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::from("<table><tr>");
    for h in headers {
        out.push_str("<th>");
        out.push_str(&escape(h));
        out.push_str("</th>");
    }
    out.push_str("</tr>\n");
    for row in rows {
        out.push_str("<tr>");
        for cell in row {
            out.push_str("<td>");
            out.push_str(cell); // cells may carry pre-escaped markup/links
            out.push_str("</td>");
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n");
    out
}

/// `<a href=...>` with escaped label and encoded query value.
pub fn link(href: &str, label: &str) -> String {
    format!("<a href=\"{}\">{}</a>", href, escape(label))
}

/// A labelled text input.
pub fn text_input(label: &str, name: &str, value: &str) -> String {
    format!(
        "<label>{}: <input type=\"text\" name=\"{}\" value=\"{}\"></label><br>\n",
        escape(label),
        escape(name),
        escape(value)
    )
}

/// A drop-down select.
pub fn select(name: &str, options: &[String], selected: Option<&str>) -> String {
    let mut out = format!("<select name=\"{}\">", escape(name));
    for o in options {
        let sel = if Some(o.as_str()) == selected {
            " selected"
        } else {
            ""
        };
        out.push_str(&format!(
            "<option value=\"{v}\"{sel}>{v}</option>",
            v = escape(o)
        ));
    }
    out.push_str("</select>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_window_layout() {
        let p = page(
            "T",
            Some("sekar@sdsc"),
            Some("<b>meta</b>"),
            "<i>listing</i>",
        );
        assert!(p.contains("split-top"));
        assert!(p.contains("split-bottom"));
        assert!(p.contains("<b>meta</b>"));
        assert!(p.contains("<i>listing</i>"));
        assert!(p.contains("sekar@sdsc"));
        // Top pane comes before bottom pane.
        assert!(p.find("split-top").unwrap() < p.find("split-bottom").unwrap());
    }

    #[test]
    fn single_pane_when_no_top() {
        let p = page("T", None, None, "hello");
        assert!(!p.contains("<div class=\"split-top\">"));
        assert!(p.contains("hello"));
        assert!(!p.contains("logout"));
    }

    #[test]
    fn table_escapes_headers_not_cells() {
        let t = table(&["A<b>"], &[vec![link("/x", "go")]]);
        assert!(t.contains("A&lt;b&gt;"));
        assert!(t.contains("<a href=\"/x\">go</a>"));
    }

    #[test]
    fn select_marks_selected() {
        let s = select("op", &["=".into(), ">".into()], Some(">"));
        assert!(s.contains("<option value=\"&gt;\" selected>"));
    }
}

#![warn(missing_docs)]
//! MySRB — the web-based interface to the SRB.
//!
//! "MySRB is a web-oriented interface for accessing the data and metadata
//! brokered by the SRB, that allows users to share their scientific data
//! collections with their colleagues in a secure fashion."
//!
//! The crate reproduces the paper's §4–§5 interface:
//!
//! * session keys with a 60-minute limit and per-request security checks
//!   ([`session`]),
//! * the split-window browse view — metadata pane on top, collection
//!   listing below (Figure 1 → [`pages::browse_page`]),
//! * the file-ingestion form with Dublin Core and structural metadata
//!   (Figure 2 → [`pages::ingest_form`]),
//! * the four-part query builder (attribute drop-down, operator, value,
//!   display check-box),
//! * annotation entry and display, role-based ACL forms,
//! * a handwritten HTTP/1.1 server ([`http`]) so the whole thing is
//!   actually browsable, plus string rendering for tests.

pub mod app;
pub mod html;
pub mod http;
pub mod pages;
pub mod session;
pub mod urlenc;

pub use app::{MySrb, MySrbConfig, Request, Response};
pub use session::{SessionConfig, SessionStore, WEB_SESSION_TTL_SECS};

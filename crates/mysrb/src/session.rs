//! Web session keys, sharded for million-session scale.
//!
//! "Each session to MySRB is given a unique session key (stored as an
//! in-memory cookie at the Browser). These session keys have a maximum
//! time-limit set on them (currently 60 minutes). MySRB also performs
//! security checks on the session keys when validating a user request."
//!
//! A key is `hex(16-byte id) . hex(HMAC-tag)`: the tag is the integrity
//! check, the id the identifier. Keys expire after 60 virtual minutes;
//! validation checks format, tag, table membership, and expiry.
//!
//! The table is sharded N ways (FNV-1a of the id → shard, each shard its
//! own ranked `RwLock`), so create/validate on different shards never
//! contend. Ids come from per-shard splitmix64 counters — the PR 4 fault
//! engine's scheme — so there is no global RNG mutex and key generation
//! is deterministic per seed. Expired sessions are evicted on sight when
//! their own key is presented, and reclaimed in bulk by a bounded
//! amortized sweep over per-shard FIFO expiry queues (valid FIFO because
//! the TTL is fixed and the virtual clock is monotone).

use srb_core::SrbConnection;
use srb_obs::{Counter, Gauge, MetricsRegistry};
use srb_types::sync::{LockRank, RwLock};
use srb_types::{
    ct_eq, from_hex, hmac_sha256, splitmix64, to_hex, SimClock, SrbError, SrbResult, Timestamp,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Maximum session lifetime: 60 minutes (virtual).
pub const WEB_SESSION_TTL_SECS: u64 = 60 * 60;

/// One authenticated browser session.
pub struct WebSession<'g> {
    /// The underlying SRB connection.
    pub conn: SrbConnection<'g>,
    /// `name@domain` for display.
    pub user_label: String,
    /// Hard expiry.
    pub expires: Timestamp,
}

/// Store tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Number of shards. 1 is the single-lock ablation mode.
    pub shards: usize,
    /// Max expired entries reclaimed opportunistically per `create`.
    pub sweep_budget: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            shards: 64,
            sweep_budget: 8,
        }
    }
}

struct ShardInner<'g> {
    table: HashMap<[u8; 16], WebSession<'g>>,
    /// `(id, expires)` in creation = expiry order (fixed TTL, monotone
    /// clock). Logged-out ids stay as tombstones until their slot is
    /// swept.
    expiry: VecDeque<([u8; 16], Timestamp)>,
}

struct Shard<'g> {
    /// Per-shard draw counter for splitmix64 key generation.
    keygen: AtomicU64,
    inner: RwLock<ShardInner<'g>>,
}

#[derive(Clone)]
struct SessionMetrics {
    live: Gauge,
    created: Counter,
    expired: Counter,
}

/// The session-key table.
pub struct SessionStore<'g> {
    clock: SimClock,
    secret: [u8; 32],
    seed: u64,
    shards: Box<[Shard<'g>]>,
    /// Round-robins `create` calls across keygen streams.
    create_seq: AtomicU64,
    /// Round-robins `sweep_expired` calls across shards.
    sweep_cursor: AtomicUsize,
    sweep_budget: usize,
    metrics: Option<SessionMetrics>,
}

impl<'g> SessionStore<'g> {
    /// New store with default sharding. `seed` keeps key generation
    /// deterministic.
    pub fn new(clock: SimClock, seed: u64) -> Self {
        Self::with_config(clock, seed, SessionConfig::default())
    }

    /// New store with explicit shard count / sweep budget.
    pub fn with_config(clock: SimClock, seed: u64, config: SessionConfig) -> Self {
        let n = config.shards.max(1);
        let mut secret = [0u8; 32];
        for (i, chunk) in secret.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&splitmix64(seed ^ 0x5eb_5ec8e7, i as u64).to_le_bytes());
        }
        SessionStore {
            clock,
            secret,
            seed,
            shards: (0..n)
                .map(|_| Shard {
                    keygen: AtomicU64::new(0),
                    inner: RwLock::new(
                        LockRank::Session,
                        "web.session.shard",
                        ShardInner {
                            table: HashMap::new(),
                            expiry: VecDeque::new(),
                        },
                    ),
                })
                .collect(),
            create_seq: AtomicU64::new(0),
            sweep_cursor: AtomicUsize::new(0),
            sweep_budget: config.sweep_budget,
            metrics: None,
        }
    }

    /// Attach web-tier metrics (live gauge + create/expire counters).
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(SessionMetrics {
            live: registry.gauge("web.session_live", "all"),
            created: registry.counter("web.session_created", "all"),
            expired: registry.counter("web.session_expired", "all"),
        });
        self
    }

    /// Number of shards (1 = single-lock ablation).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: &[u8; 16]) -> usize {
        // FNV-1a, same scheme as the storage memfs shards.
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in id {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Mint a key for an authenticated connection.
    ///
    /// Amortizes reclamation: before inserting, up to `sweep_budget`
    /// expired entries on the target shard are reclaimed (O(k), no
    /// full-table scan ever happens on the request path).
    pub fn create(&self, conn: SrbConnection<'g>, user_label: &str) -> String {
        let n = self.shards.len() as u64;
        let g = self.create_seq.fetch_add(1, Ordering::Relaxed) % n;
        let draw = self.shards[g as usize]
            .keygen
            .fetch_add(1, Ordering::Relaxed);
        let stream = splitmix64(self.seed, g + 1);
        let mut id = [0u8; 16];
        id[..8].copy_from_slice(&splitmix64(stream, 2 * draw).to_le_bytes());
        id[8..].copy_from_slice(&splitmix64(stream, 2 * draw + 1).to_le_bytes());
        let tag = hmac_sha256(&self.secret, &id);
        let key = format!("{}.{}", to_hex(&id), to_hex(&tag[..8]));
        let now = self.clock.now();
        let expires = now.plus_secs(WEB_SESSION_TTL_SECS);
        let reclaimed = {
            let mut inner = self.shards[self.shard_of(&id)].inner.write();
            let reclaimed = Self::sweep_shard(&mut inner, now, self.sweep_budget).1;
            inner.table.insert(
                id,
                WebSession {
                    conn,
                    user_label: user_label.to_string(),
                    expires,
                },
            );
            inner.expiry.push_back((id, expires));
            reclaimed
        };
        if let Some(m) = &self.metrics {
            m.created.inc();
            m.expired.add(reclaimed);
            m.live.add(1 - reclaimed as i64);
        }
        key
    }

    /// The paper's "security checks" (format + HMAC tag), yielding the
    /// table id.
    fn parse(&self, key: &str) -> SrbResult<[u8; 16]> {
        let malformed = || SrbError::AuthFailed("malformed session key".into());
        let (id_hex, tag_hex) = key.split_once('.').ok_or_else(malformed)?;
        let id_bytes = from_hex(id_hex).ok_or_else(malformed)?;
        let id: [u8; 16] = id_bytes.try_into().map_err(|_| malformed())?;
        let expect = hmac_sha256(&self.secret, &id);
        let got = from_hex(tag_hex).ok_or_else(malformed)?;
        if !ct_eq(&expect[..8], &got) {
            return Err(SrbError::AuthFailed(
                "session key failed integrity check".into(),
            ));
        }
        Ok(id)
    }

    /// Security checks + membership + expiry. Expired sessions are
    /// evicted on sight.
    pub fn validate(&self, key: &str) -> SrbResult<()> {
        self.with_session(key, |_| ()).map(|_| ())
    }

    /// Run `f` with the session's connection after validation.
    pub fn with_session<R>(&self, key: &str, f: impl FnOnce(&WebSession<'g>) -> R) -> SrbResult<R> {
        let id = self.parse(key)?;
        let now = self.clock.now();
        let shard = &self.shards[self.shard_of(&id)];
        {
            let g = shard.inner.read();
            match g.table.get(&id) {
                Some(s) if s.expires > now => return Ok(f(s)),
                Some(_) => {}
                None => return Err(SrbError::AuthFailed("unknown session key".into())),
            }
        }
        // Expired: evict on sight (re-check under the write lock; a
        // racing sweep may have already reclaimed it).
        let evicted = {
            let mut inner = shard.inner.write();
            match inner.table.get(&id) {
                Some(s) if s.expires <= now => inner.table.remove(&id).is_some(),
                _ => false,
            }
        };
        if evicted {
            if let Some(m) = &self.metrics {
                m.expired.inc();
                m.live.add(-1);
            }
        }
        Err(SrbError::AuthFailed("session expired".into()))
    }

    /// Remove a session (logout). Unknown or malformed keys are a no-op.
    pub fn remove(&self, key: &str) {
        let Ok(id) = self.parse(key) else { return };
        let removed = self.shards[self.shard_of(&id)]
            .inner
            .write()
            .table
            .remove(&id)
            .is_some();
        if removed {
            if let Some(m) = &self.metrics {
                m.live.add(-1);
            }
        }
    }

    /// Reclaim up to `budget` expiry-queue entries across the shards
    /// (round-robin), returning the number of sessions actually
    /// reclaimed. Bounded O(budget): call it periodically (or rely on
    /// the per-`create` amortization) to drain abandoned sessions.
    pub fn sweep_expired(&self, budget: usize) -> usize {
        let n = self.shards.len();
        let start = self.sweep_cursor.fetch_add(1, Ordering::Relaxed) % n;
        let now = self.clock.now();
        let mut remaining = budget;
        let mut reclaimed = 0u64;
        for i in 0..n {
            if remaining == 0 {
                break;
            }
            let mut inner = self.shards[(start + i) % n].inner.write();
            let (popped, freed) = Self::sweep_shard(&mut inner, now, remaining);
            remaining -= popped;
            reclaimed += freed;
        }
        if let Some(m) = &self.metrics {
            m.expired.add(reclaimed);
            m.live.add(-(reclaimed as i64));
        }
        reclaimed as usize
    }

    /// Pop up to `budget` expired queue entries; returns `(popped,
    /// reclaimed)`. Tombstones (logged-out ids) consume budget but free
    /// nothing.
    fn sweep_shard(inner: &mut ShardInner<'g>, now: Timestamp, budget: usize) -> (usize, u64) {
        let mut popped = 0;
        let mut reclaimed = 0;
        while popped < budget {
            match inner.expiry.front() {
                Some((_, exp)) if *exp <= now => {}
                _ => break,
            }
            let Some((id, _)) = inner.expiry.pop_front() else {
                break;
            };
            popped += 1;
            // Only reclaim if the stored session really is expired; a
            // tombstoned (removed) id is just skipped.
            if matches!(inner.table.get(&id), Some(s) if s.expires <= now)
                && inner.table.remove(&id).is_some()
            {
                reclaimed += 1;
            }
        }
        (popped, reclaimed)
    }

    /// Live (possibly expired-but-unswept) session count.
    pub fn count(&self) -> usize {
        self.shards.iter().map(|s| s.inner.read().table.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srb_core::{GridBuilder, SrbConnection};

    fn fixture() -> (srb_core::Grid, srb_types::ServerId) {
        let mut gb = GridBuilder::new();
        let site = gb.site("sdsc");
        let srv = gb.server("srb", site);
        gb.fs_resource("fs", srv);
        let grid = gb.build();
        grid.register_user("u", "d", "pw").unwrap();
        (grid, srv)
    }

    #[test]
    fn create_validate_logout_cycle() {
        let (grid, srv) = fixture();
        let store = SessionStore::new(grid.clock.clone(), 1);
        let conn = SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap();
        let key = store.create(conn, "u@d");
        store.validate(&key).unwrap();
        let label = store.with_session(&key, |s| s.user_label.clone()).unwrap();
        assert_eq!(label, "u@d");
        store.remove(&key);
        assert!(store.validate(&key).is_err());
        assert_eq!(store.count(), 0);
    }

    #[test]
    fn sixty_minute_expiry() {
        let (grid, srv) = fixture();
        let store = SessionStore::new(grid.clock.clone(), 1);
        let conn = SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap();
        let key = store.create(conn, "u@d");
        grid.clock.advance(59 * 60 * 1_000_000_000);
        store.validate(&key).unwrap();
        grid.clock.advance(2 * 60 * 1_000_000_000);
        let err = store.validate(&key).unwrap_err();
        assert!(matches!(err, SrbError::AuthFailed(_)));
        // Expired sessions are evicted.
        assert_eq!(store.count(), 0);
    }

    #[test]
    fn forged_and_malformed_keys_rejected() {
        let (grid, srv) = fixture();
        let store = SessionStore::new(grid.clock.clone(), 1);
        let conn = SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap();
        let key = store.create(conn, "u@d");
        // Tamper with the id part: tag check fails.
        let mut forged = key.clone();
        let first = if forged.starts_with('0') { '1' } else { '0' };
        forged.replace_range(0..1, &first.to_string());
        assert!(store.validate(&forged).is_err());
        assert!(store.validate("no-dot-here").is_err());
        assert!(store.validate("zz.zz").is_err());
        assert!(store.validate("").is_err());
        // The genuine key still works.
        store.validate(&key).unwrap();
    }

    #[test]
    fn keys_are_unique() {
        let (grid, srv) = fixture();
        let store = SessionStore::new(grid.clock.clone(), 1);
        let a = store.create(
            SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap(),
            "u@d",
        );
        let b = store.create(
            SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap(),
            "u@d",
        );
        assert_ne!(a, b);
        assert_eq!(store.count(), 2);
    }

    #[test]
    fn abandoned_sessions_are_reclaimed_by_sweep() {
        let (grid, srv) = fixture();
        let store = SessionStore::with_config(
            grid.clock.clone(),
            7,
            SessionConfig {
                shards: 8,
                sweep_budget: 4,
            },
        );
        let keys: Vec<String> = (0..50)
            .map(|_| {
                store.create(
                    SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap(),
                    "u@d",
                )
            })
            .collect();
        assert_eq!(store.count(), 50);
        grid.clock
            .advance((WEB_SESSION_TTL_SECS + 1) * 1_000_000_000);
        // Abandoned: nobody presents these keys again. Bounded sweeps
        // reclaim them all without any key being presented.
        let mut total = 0;
        for _ in 0..100 {
            total += store.sweep_expired(5);
            if total == 50 {
                break;
            }
        }
        assert_eq!(total, 50);
        assert_eq!(store.count(), 0);
        for k in &keys {
            assert!(store.validate(k).is_err());
        }
    }

    #[test]
    fn create_amortizes_reclamation() {
        let (grid, srv) = fixture();
        // Single shard so every create sweeps the same queue.
        let store = SessionStore::with_config(
            grid.clock.clone(),
            7,
            SessionConfig {
                shards: 1,
                sweep_budget: 8,
            },
        );
        for _ in 0..20 {
            store.create(
                SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap(),
                "u@d",
            );
        }
        grid.clock
            .advance((WEB_SESSION_TTL_SECS + 1) * 1_000_000_000);
        // Each create reclaims up to 8 expired entries as a side effect.
        for _ in 0..3 {
            store.create(
                SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap(),
                "u@d",
            );
        }
        assert_eq!(store.count(), 3);
    }

    #[test]
    fn logout_tombstones_do_not_count_as_reclaimed() {
        let (grid, srv) = fixture();
        let store = SessionStore::with_config(
            grid.clock.clone(),
            7,
            SessionConfig {
                shards: 1,
                sweep_budget: 8,
            },
        );
        let key = store.create(
            SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap(),
            "u@d",
        );
        store.remove(&key);
        grid.clock
            .advance((WEB_SESSION_TTL_SECS + 1) * 1_000_000_000);
        assert_eq!(store.sweep_expired(10), 0);
        assert_eq!(store.count(), 0);
    }
}

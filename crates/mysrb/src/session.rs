//! Web session keys.
//!
//! "Each session to MySRB is given a unique session key (stored as an
//! in-memory cookie at the Browser). These session keys have a maximum
//! time-limit set on them (currently 60 minutes). MySRB also performs
//! security checks on the session keys when validating a user request."
//!
//! A key is `hex(random 16 bytes) . hex(HMAC-tag)`: the tag is the
//! integrity check, the random part the identifier. Keys expire after 60
//! virtual minutes; validation checks format, tag, table membership, and
//! expiry.

use rand::{RngCore, SeedableRng};
use srb_core::SrbConnection;
use srb_types::sync::{LockRank, Mutex, RwLock};
use srb_types::{ct_eq, hmac_sha256, to_hex, SimClock, SrbError, SrbResult, Timestamp};
use std::collections::HashMap;

/// Maximum session lifetime: 60 minutes (virtual).
pub const WEB_SESSION_TTL_SECS: u64 = 60 * 60;

/// One authenticated browser session.
pub struct WebSession<'g> {
    /// The underlying SRB connection.
    pub conn: SrbConnection<'g>,
    /// `name@domain` for display.
    pub user_label: String,
    /// Hard expiry.
    pub expires: Timestamp,
}

/// The session-key table.
pub struct SessionStore<'g> {
    clock: SimClock,
    secret: [u8; 32],
    rng: Mutex<rand::rngs::StdRng>,
    sessions: RwLock<HashMap<String, WebSession<'g>>>,
}

impl<'g> SessionStore<'g> {
    /// New store. `seed` keeps key generation deterministic in tests.
    pub fn new(clock: SimClock, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut secret = [0u8; 32];
        rng.fill_bytes(&mut secret);
        SessionStore {
            clock,
            secret,
            rng: Mutex::new(LockRank::Session, "web.session.rng", rng),
            sessions: RwLock::new(LockRank::Session, "web.session.table", HashMap::new()),
        }
    }

    /// Mint a key for an authenticated connection.
    pub fn create(&self, conn: SrbConnection<'g>, user_label: &str) -> String {
        let mut id = [0u8; 16];
        self.rng.lock().fill_bytes(&mut id);
        let tag = hmac_sha256(&self.secret, &id);
        let key = format!("{}.{}", to_hex(&id), to_hex(&tag[..8]));
        self.sessions.write().insert(
            key.clone(),
            WebSession {
                conn,
                user_label: user_label.to_string(),
                expires: self.clock.now().plus_secs(WEB_SESSION_TTL_SECS),
            },
        );
        key
    }

    /// The paper's "security checks": format, HMAC tag, membership,
    /// expiry. Expired sessions are evicted on sight.
    pub fn validate(&self, key: &str) -> SrbResult<()> {
        let (id_hex, tag_hex) = key
            .split_once('.')
            .ok_or_else(|| SrbError::AuthFailed("malformed session key".into()))?;
        let id =
            from_hex(id_hex).ok_or_else(|| SrbError::AuthFailed("malformed session key".into()))?;
        let expect = hmac_sha256(&self.secret, &id);
        let got = from_hex(tag_hex)
            .ok_or_else(|| SrbError::AuthFailed("malformed session key".into()))?;
        if !ct_eq(&expect[..8], &got) {
            return Err(SrbError::AuthFailed(
                "session key failed integrity check".into(),
            ));
        }
        let now = self.clock.now();
        let expired = {
            let g = self.sessions.read();
            match g.get(key) {
                None => return Err(SrbError::AuthFailed("unknown session key".into())),
                Some(s) => s.expires <= now,
            }
        };
        if expired {
            self.sessions.write().remove(key);
            return Err(SrbError::AuthFailed("session expired".into()));
        }
        Ok(())
    }

    /// Run `f` with the session's connection after validation.
    pub fn with_session<R>(&self, key: &str, f: impl FnOnce(&WebSession<'g>) -> R) -> SrbResult<R> {
        self.validate(key)?;
        let g = self.sessions.read();
        let s = g
            .get(key)
            .ok_or_else(|| SrbError::AuthFailed("session vanished".into()))?;
        Ok(f(s))
    }

    /// Remove a session (logout).
    pub fn remove(&self, key: &str) {
        self.sessions.write().remove(key);
    }

    /// Live (possibly stale-but-unexpired) session count.
    pub fn count(&self) -> usize {
        self.sessions.read().len()
    }
}

fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for i in (0..bytes.len()).step_by(2) {
        let hi = (bytes[i] as char).to_digit(16)?;
        let lo = (bytes[i + 1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srb_core::{GridBuilder, SrbConnection};

    fn fixture() -> (srb_core::Grid, srb_types::ServerId) {
        let mut gb = GridBuilder::new();
        let site = gb.site("sdsc");
        let srv = gb.server("srb", site);
        gb.fs_resource("fs", srv);
        let grid = gb.build();
        grid.register_user("u", "d", "pw").unwrap();
        (grid, srv)
    }

    #[test]
    fn create_validate_logout_cycle() {
        let (grid, srv) = fixture();
        let store = SessionStore::new(grid.clock.clone(), 1);
        let conn = SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap();
        let key = store.create(conn, "u@d");
        store.validate(&key).unwrap();
        let label = store.with_session(&key, |s| s.user_label.clone()).unwrap();
        assert_eq!(label, "u@d");
        store.remove(&key);
        assert!(store.validate(&key).is_err());
        assert_eq!(store.count(), 0);
    }

    #[test]
    fn sixty_minute_expiry() {
        let (grid, srv) = fixture();
        let store = SessionStore::new(grid.clock.clone(), 1);
        let conn = SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap();
        let key = store.create(conn, "u@d");
        grid.clock.advance(59 * 60 * 1_000_000_000);
        store.validate(&key).unwrap();
        grid.clock.advance(2 * 60 * 1_000_000_000);
        let err = store.validate(&key).unwrap_err();
        assert!(matches!(err, SrbError::AuthFailed(_)));
        // Expired sessions are evicted.
        assert_eq!(store.count(), 0);
    }

    #[test]
    fn forged_and_malformed_keys_rejected() {
        let (grid, srv) = fixture();
        let store = SessionStore::new(grid.clock.clone(), 1);
        let conn = SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap();
        let key = store.create(conn, "u@d");
        // Tamper with the id part: tag check fails.
        let mut forged = key.clone();
        let first = if forged.starts_with('0') { '1' } else { '0' };
        forged.replace_range(0..1, &first.to_string());
        assert!(store.validate(&forged).is_err());
        assert!(store.validate("no-dot-here").is_err());
        assert!(store.validate("zz.zz").is_err());
        assert!(store.validate("").is_err());
        // The genuine key still works.
        store.validate(&key).unwrap();
    }

    #[test]
    fn keys_are_unique() {
        let (grid, srv) = fixture();
        let store = SessionStore::new(grid.clock.clone(), 1);
        let a = store.create(
            SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap(),
            "u@d",
        );
        let b = store.create(
            SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap(),
            "u@d",
        );
        assert_ne!(a, b);
        assert_eq!(store.count(), 2);
    }
}

//! A minimal threaded HTTP/1.1 server for the MySRB application.
//!
//! The paper serves MySRB over https with session cookies; DESIGN.md §2
//! documents the TLS substitution. This server handles GET/POST with
//! urlencoded bodies, the `mysrb_session` cookie, and connection-per-thread
//! dispatch — enough to drive every page from a real browser.

use crate::app::{MySrb, Request, Response};
use crate::urlenc::parse_form;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

/// Parse one HTTP request from a stream.
pub fn parse_request(stream: &mut dyn BufRead) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    if stream.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_uppercase();
    let target = parts.next().unwrap_or("/").to_string();
    let (path, qs) = target.split_once('?').unwrap_or((target.as_str(), ""));
    let mut req = Request {
        method,
        path: path.to_string(),
        query: parse_form(qs),
        ..Request::default()
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if stream.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => content_length = value.parse().unwrap_or(0),
            "cookie" => {
                for c in value.split(';') {
                    let c = c.trim();
                    if let Some(v) = c.strip_prefix("mysrb_session=") {
                        req.session = Some(v.to_string());
                    }
                }
            }
            _ => {}
        }
    }
    if content_length > 0 {
        let mut body = vec![0u8; content_length.min(16 << 20)];
        stream.read_exact(&mut body)?;
        req.form = parse_form(&String::from_utf8_lossy(&body));
    }
    Ok(Some(req))
}

/// Serialize a response to the wire.
pub fn write_response(stream: &mut dyn Write, resp: &Response) -> std::io::Result<()> {
    let reason = match resp.status {
        200 => "OK",
        303 => "See Other",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Status",
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        reason,
        resp.content_type,
        resp.body.len()
    )?;
    for (k, v) in &resp.headers {
        write!(stream, "{k}: {v}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

fn handle_client(app: &MySrb<'_>, stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    if let Ok(Some(req)) = parse_request(&mut reader) {
        let resp = app.handle(&req);
        let _ = write_response(&mut writer, &resp);
    }
}

/// Serve the app on `listener` until `shutdown` turns true. Each
/// connection is handled on a scoped thread; the function returns after
/// shutdown is observed (a final dummy connection may be needed to unblock
/// `accept`, which `shutdown_poke` sends).
pub fn serve(app: &MySrb<'_>, listener: TcpListener, shutdown: &AtomicBool) {
    if listener.set_nonblocking(false).is_err() {
        // Can't arrange blocking accepts: a spinning non-blocking accept
        // loop would peg a core, so refuse to serve on this listener.
        return;
    }
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            match stream {
                Ok(s) => {
                    scope.spawn(move || handle_client(app, s));
                }
                Err(_) => break,
            }
        }
    });
}

/// Unblock a `serve` loop waiting in `accept` after setting its flag.
pub fn shutdown_poke(addr: &str) {
    let _ = TcpStream::connect(addr);
}

#[cfg(test)]
mod tests {
    use super::*;
    use srb_core::GridBuilder;
    use std::io::{Cursor, Read};

    #[test]
    fn parses_get_with_query_and_cookie() {
        let raw = "GET /browse?path=%2Fhome HTTP/1.1\r\nHost: x\r\n\
                   Cookie: other=1; mysrb_session=abc.def\r\n\r\n";
        let req = parse_request(&mut Cursor::new(raw)).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/browse");
        assert_eq!(req.query["path"], "/home");
        assert_eq!(req.session.as_deref(), Some("abc.def"));
    }

    #[test]
    fn parses_post_body() {
        let body = "user=sekar&domain=sdsc&password=pw";
        let raw = format!(
            "POST /login HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let req = parse_request(&mut Cursor::new(raw)).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.form["user"], "sekar");
        assert_eq!(req.form["password"], "pw");
    }

    #[test]
    fn empty_stream_yields_none() {
        assert!(parse_request(&mut Cursor::new("")).unwrap().is_none());
    }

    #[test]
    fn response_serialization() {
        let resp = Response {
            status: 303,
            content_type: "text/html".into(),
            body: b"x".to_vec(),
            headers: vec![("Location".into(), "/".into())],
        };
        let mut out = Vec::new();
        write_response(&mut out, &resp).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 303 See Other\r\n"));
        assert!(s.contains("Location: /\r\n"));
        assert!(s.contains("Content-Length: 1\r\n"));
        assert!(s.ends_with("\r\n\r\nx"));
    }

    #[test]
    fn end_to_end_over_tcp() {
        let mut gb = GridBuilder::new();
        let site = gb.site("sdsc");
        let srv = gb.server("srb", site);
        gb.fs_resource("fs", srv);
        let grid = gb.build();
        grid.register_user("u", "d", "pw").unwrap();
        let app = crate::MySrb::new(&grid, srv, 7);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| serve(&app, listener, &shutdown));
            // Login over a raw socket.
            let mut conn = TcpStream::connect(&addr).unwrap();
            let body = "user=u&domain=d&password=pw";
            write!(
                conn,
                "POST /login HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            )
            .unwrap();
            let mut reply = String::new();
            BufReader::new(conn).read_to_string(&mut reply).unwrap();
            assert!(reply.starts_with("HTTP/1.1 303"));
            let key = reply
                .lines()
                .find_map(|l| l.strip_prefix("Set-Cookie: mysrb_session="))
                .map(|v| v.split(';').next().unwrap().to_string())
                .expect("session cookie set");
            // Browse with the cookie.
            let mut conn = TcpStream::connect(&addr).unwrap();
            write!(
                conn,
                "GET /browse?path=%2F HTTP/1.1\r\nCookie: mysrb_session={key}\r\n\r\n"
            )
            .unwrap();
            let mut reply = String::new();
            BufReader::new(conn).read_to_string(&mut reply).unwrap();
            assert!(reply.starts_with("HTTP/1.1 200"));
            assert!(reply.contains("MySRB"));
            shutdown.store(true, Ordering::Release);
            shutdown_poke(&addr);
        });
    }
}

//! Cursor pagination on the browse page, driven at the HTTP level: a
//! 10⁴-entry collection is walked through `[next page]` links and every
//! entry must appear exactly once across the pages. Stale cursors (the
//! collection mutated underneath an outstanding link) restart cleanly at
//! page one instead of erroring or serving a wrong window.

use std::collections::HashSet;

use mysrb::{MySrb, Request};
use srb_core::{GridBuilder, SrbConnection};
use srb_mcat::NewDataset;
use srb_net::LinkSpec;
use srb_types::{LogicalPath, ServerId};

struct Fx {
    grid: srb_core::Grid,
    srv: ServerId,
}

fn fixture() -> Fx {
    let mut gb = GridBuilder::new();
    let sdsc = gb.site("sdsc");
    let caltech = gb.site("caltech");
    gb.link(sdsc, caltech, LinkSpec::wan());
    let srv = gb.server("srb-sdsc", sdsc);
    gb.fs_resource("unix-sdsc", srv);
    let grid = gb.build();
    grid.register_user("sekar", "sdsc", "pw").unwrap();
    Fx { grid, srv }
}

fn login(app: &MySrb) -> String {
    let resp = app.handle(&Request::post(
        "/login",
        "user=sekar&domain=sdsc&password=pw",
        None,
    ));
    assert_eq!(resp.status, 303);
    resp.headers
        .iter()
        .find(|(k, _)| k == "Set-Cookie")
        .and_then(|(_, v)| v.strip_prefix("mysrb_session="))
        .map(|v| v.split(';').next().unwrap().to_string())
        .expect("session cookie")
}

/// Seed `/home/sekar/big` with `n` datasets (catalog-only bulk create —
/// the listing never touches replica storage) plus three sub-collections.
fn seed_big(fx: &Fx, n: usize) {
    let conn = SrbConnection::connect(&fx.grid, fx.srv, "sekar", "sdsc", "pw").unwrap();
    conn.make_collection("/home/sekar/big").unwrap();
    for sub in ["alpha", "beta", "gamma"] {
        conn.make_collection(&format!("/home/sekar/big/{sub}"))
            .unwrap();
    }
    let m = &fx.grid.mcat;
    let coll = m
        .collections
        .resolve(&LogicalPath::parse("/home/sekar/big").unwrap())
        .unwrap();
    let batch: Vec<NewDataset> = (0..n)
        .map(|i| NewDataset {
            name: format!("obj{i:05}"),
            replicas: vec![],
        })
        .collect();
    m.datasets
        .create_batch(&m.ids, coll, "generic", m.admin(), batch, m.clock.now())
        .unwrap();
}

/// Anchor texts of the name column: each listing row links its name once
/// (`>obj00042</a>`, `>alpha</a>`), while the ops column uses fixed labels.
fn row_names(html: &str, names: &mut Vec<String>) {
    for part in html.split("</a>").filter_map(|s| s.rsplit('>').next()) {
        if part.starts_with("obj") || ["alpha", "beta", "gamma"].contains(&part) {
            names.push(part.to_string());
        }
    }
}

/// The `[next page]` href, query-string included, or `None` on the last
/// page.
fn next_href(html: &str) -> Option<String> {
    let pager = html.split("class=\"pager\"").nth(1)?;
    let href = pager.split("href=\"").nth(1)?.split('"').next()?;
    Some(href.to_string())
}

#[test]
fn browse_walks_three_pages_without_skips_or_duplicates() {
    const N: usize = 10_000;
    let fx = fixture();
    seed_big(&fx, N);
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);

    let mut seen = Vec::new();
    let mut url = "/browse?path=%2Fhome%2Fsekar%2Fbig&n=4000".to_string();
    let mut pages = 0;
    loop {
        let resp = app.handle(&Request::get(&url, Some(&key)));
        assert_eq!(resp.status, 200, "{}", resp.text());
        let html = resp.text();
        pages += 1;
        row_names(&html, &mut seen);
        match next_href(&html) {
            Some(href) => {
                // The link is stable: re-rendering the same page yields the
                // same continuation href (tokens are deterministic, not
                // per-request nonces).
                let again = app.handle(&Request::get(&url, Some(&key)));
                assert_eq!(next_href(&again.text()).as_deref(), Some(href.as_str()));
                url = href;
            }
            None => break,
        }
    }
    assert_eq!(pages, 3, "10_003 rows at n=4000 must span three pages");
    assert_eq!(seen.len(), N + 3, "every entry served exactly once");
    let distinct: HashSet<&str> = seen.iter().map(String::as_str).collect();
    assert_eq!(distinct.len(), N + 3, "no entry duplicated");
    assert!(distinct.contains("alpha") && distinct.contains("obj09999"));
}

#[test]
fn stale_cursor_restarts_at_page_one() {
    let fx = fixture();
    seed_big(&fx, 50);
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);

    let first = app.handle(&Request::get(
        "/browse?path=%2Fhome%2Fsekar%2Fbig&n=20",
        Some(&key),
    ));
    let href = next_href(&first.text()).expect("next link on page one");

    // Mutate the collection under the outstanding link: the token's
    // generation stamps no longer match.
    let conn = SrbConnection::connect(&fx.grid, fx.srv, "sekar", "sdsc", "pw").unwrap();
    conn.make_collection("/home/sekar/big/zz-late").unwrap();

    // Following the stale link re-renders page one — entries from the
    // start of the listing, not a silently wrong window and not an error.
    let resp = app.handle(&Request::get(&href, Some(&key)));
    assert_eq!(resp.status, 200, "{}", resp.text());
    let html = resp.text();
    assert!(
        html.contains(">alpha</a>"),
        "restarted from the top: {html}"
    );
    // A hand-tampered token restarts the same way.
    let resp = app.handle(&Request::get(
        "/browse?path=%2Fhome%2Fsekar%2Fbig&n=20&cursor=not-a-token",
        Some(&key),
    ));
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains(">alpha</a>"));
}

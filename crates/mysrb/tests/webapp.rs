//! Full web-application flows driven through `MySrb::handle` — including
//! the reproduction of the paper's Figure 1 (main collection page) and
//! Figure 2 (ingestion form with Dublin Core + user-defined attributes).

use mysrb::{MySrb, Request};
use srb_core::{GridBuilder, IngestOptions, SrbConnection};
use srb_mcat::AttrRequirement;
use srb_net::LinkSpec;
use srb_types::{LogicalPath, Permission, ServerId, Triplet};

struct Fx {
    grid: srb_core::Grid,
    srv: ServerId,
}

fn fixture() -> Fx {
    let mut gb = GridBuilder::new();
    let sdsc = gb.site("sdsc");
    let caltech = gb.site("caltech");
    gb.link(sdsc, caltech, LinkSpec::wan());
    let srv = gb.server("srb-sdsc", sdsc);
    let srv2 = gb.server("srb-caltech", caltech);
    gb.fs_resource("unix-sdsc", srv)
        .archive_resource("hpss-caltech", srv2)
        .logical_resource("logrsrc1", &["unix-sdsc", "hpss-caltech"]);
    let grid = gb.build();
    grid.register_user("sekar", "sdsc", "pw").unwrap();
    Fx { grid, srv }
}

fn login(app: &MySrb) -> String {
    let resp = app.handle(&Request::post(
        "/login",
        "user=sekar&domain=sdsc&password=pw",
        None,
    ));
    assert_eq!(resp.status, 303);
    resp.headers
        .iter()
        .find(|(k, _)| k == "Set-Cookie")
        .and_then(|(_, v)| v.strip_prefix("mysrb_session="))
        .map(|v| v.split(';').next().unwrap().to_string())
        .expect("session cookie")
}

#[test]
fn login_flow_and_bad_credentials() {
    let fx = fixture();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    // Landing page shows the sign-on form.
    let resp = app.handle(&Request::get("/", None));
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("Sign on to MySRB"));
    // Bad password re-renders the login with an error.
    let resp = app.handle(&Request::post(
        "/login",
        "user=sekar&domain=sdsc&password=wrong",
        None,
    ));
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("AUTH_FAILED"));
    // Good login sets a cookie; browsing without one redirects to /.
    let key = login(&app);
    assert!(!key.is_empty());
    let resp = app.handle(&Request::get("/browse?path=%2F", None));
    assert_eq!(resp.status, 303);
    // Logout invalidates the key.
    app.handle(&Request::get("/logout", Some(&key)));
    let resp = app.handle(&Request::get("/browse?path=%2F", Some(&key)));
    assert_eq!(resp.status, 303);
}

#[test]
fn figure1_split_window_collection_page() {
    let fx = fixture();
    // Seed a collection with metadata and files, as in the screenshot.
    let conn = SrbConnection::connect(&fx.grid, fx.srv, "sekar", "sdsc", "pw").unwrap();
    conn.ingest(
        "/home/sekar/condor.jpg",
        b"JPEG",
        IngestOptions::to_resource("unix-sdsc").with_type("jpeg image"),
    )
    .unwrap();
    conn.make_collection("/home/sekar/notes").unwrap();
    conn.add_metadata("/home/sekar", Triplet::new("topic", "avian culture", ""))
        .ok();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);
    let resp = app.handle(&Request::get("/browse?path=%2Fhome%2Fsekar", Some(&key)));
    assert_eq!(resp.status, 200);
    let html = resp.text();
    // Split window: metadata pane above, listing below.
    assert!(html.contains("split-top"));
    assert!(html.contains("split-bottom"));
    // The listing shows the sub-collection and the object with type+size.
    assert!(html.contains("notes"));
    assert!(html.contains("condor.jpg"));
    assert!(html.contains("jpeg image"));
    // Operation links per object.
    assert!(html.contains("[ingest file]"));
    assert!(html.contains("annotate"));
}

#[test]
fn figure2_ingest_form_with_dublin_core_and_vocabulary() {
    let fx = fixture();
    let conn = SrbConnection::connect(&fx.grid, fx.srv, "sekar", "sdsc", "pw").unwrap();
    conn.make_collection("/home/sekar/Avian Culture").unwrap();
    let coll = fx
        .grid
        .mcat
        .collections
        .resolve(&LogicalPath::parse("/home/sekar/Avian Culture").unwrap())
        .unwrap();
    fx.grid
        .mcat
        .collections
        .set_requirements(
            coll,
            vec![
                AttrRequirement::mandatory("culture", "culture name"),
                AttrRequirement::vocabulary("medium", &["image", "movie", "text"], "media"),
            ],
        )
        .unwrap();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);
    let resp = app.handle(&Request::get(
        "/ingest?coll=%2Fhome%2Fsekar%2FAvian%20Culture",
        Some(&key),
    ));
    assert_eq!(resp.status, 200);
    let html = resp.text();
    // All fifteen Dublin Core entry fields.
    for element in srb_mcat::metadata::DUBLIN_CORE {
        assert!(html.contains(&format!("dc_{element}")), "missing {element}");
    }
    // Structural metadata: mandatory marker and vocabulary drop-down with
    // the default selected.
    assert!(html.contains("culture *"));
    assert!(html.contains("<select name=\"req_medium\">"));
    assert!(html.contains("<option value=\"image\" selected>"));
    // Resource drop-down offers physical and logical resources.
    assert!(html.contains("unix-sdsc"));
    assert!(html.contains("logrsrc1"));
}

#[test]
fn ingest_via_form_enforces_structural_metadata() {
    let fx = fixture();
    let conn = SrbConnection::connect(&fx.grid, fx.srv, "sekar", "sdsc", "pw").unwrap();
    conn.make_collection("/home/sekar/cult").unwrap();
    let coll = fx
        .grid
        .mcat
        .collections
        .resolve(&LogicalPath::parse("/home/sekar/cult").unwrap())
        .unwrap();
    fx.grid
        .mcat
        .collections
        .set_requirements(
            coll,
            vec![AttrRequirement::mandatory("culture", "required")],
        )
        .unwrap();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);
    // Missing the mandatory field: 400 with the explanation.
    let resp = app.handle(&Request::post(
        "/ingest",
        "coll=%2Fhome%2Fsekar%2Fcult&name=x.txt&resource=unix-sdsc&content=hi",
        Some(&key),
    ));
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("mandatory"));
    // With the field (and a Dublin Core title + a user triplet) it works.
    let resp = app.handle(&Request::post(
        "/ingest",
        "coll=%2Fhome%2Fsekar%2Fcult&name=x.txt&resource=unix-sdsc&content=hi\
         &req_culture=avian&dc_Title=A+Condor&meta_name=species&meta_value=condor&meta_units=",
        Some(&key),
    ));
    assert_eq!(resp.status, 200, "{}", resp.text());
    let rows = conn.metadata("/home/sekar/cult/x.txt").unwrap();
    let names: Vec<&str> = rows.iter().map(|r| r.triplet.name.as_str()).collect();
    assert!(names.contains(&"culture"));
    assert!(names.contains(&"Title"));
    assert!(names.contains(&"species"));
    let (data, _) = conn.read("/home/sekar/cult/x.txt").unwrap();
    assert_eq!(&data[..], b"hi");
}

#[test]
fn query_builder_round_trip() {
    let fx = fixture();
    let conn = SrbConnection::connect(&fx.grid, fx.srv, "sekar", "sdsc", "pw").unwrap();
    for (name, span) in [("condor", 290i64), ("sparrow", 20)] {
        conn.ingest(
            &format!("/home/sekar/{name}.jpg"),
            b"img",
            IngestOptions::to_resource("unix-sdsc")
                .with_metadata(Triplet::new("species", name, ""))
                .with_metadata(Triplet::new("wingspan", span, "cm")),
        )
        .unwrap();
    }
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);
    // The form lists queryable attributes in the drop-down.
    let resp = app.handle(&Request::get("/query?scope=%2Fhome%2Fsekar", Some(&key)));
    assert!(resp.text().contains("wingspan"));
    assert!(resp.text().contains("species"));
    // Conjunctive query via the 4-row form: wingspan > 100 AND species
    // like c%; show both columns.
    let body = "scope=%2Fhome%2Fsekar\
                &attr=wingspan&op=%3E&value=100&show=1\
                &attr=species&op=like&value=c%25&show=1\
                &attr=&op=%3D&value=&show=\
                &attr=&op=%3D&value=&show=";
    let resp = app.handle(&Request::post("/query", body, Some(&key)));
    assert_eq!(resp.status, 200, "{}", resp.text());
    let html = resp.text();
    assert!(html.contains("1 result(s)"));
    assert!(html.contains("condor.jpg"));
    assert!(!html.contains("sparrow.jpg"));
    assert!(html.contains("290"));
}

#[test]
fn view_annotate_and_meta_pages() {
    let fx = fixture();
    let conn = SrbConnection::connect(&fx.grid, fx.srv, "sekar", "sdsc", "pw").unwrap();
    conn.ingest(
        "/home/sekar/readme.txt",
        b"The Storage Resource Broker",
        IngestOptions::to_resource("unix-sdsc").with_metadata(Triplet::new("topic", "srb", "")),
    )
    .unwrap();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);
    // View shows content + attributes together (split window).
    let resp = app.handle(&Request::get(
        "/view?path=%2Fhome%2Fsekar%2Freadme.txt",
        Some(&key),
    ));
    let html = resp.text();
    assert!(html.contains("The Storage Resource Broker"));
    assert!(html.contains("topic"));
    assert!(html.contains("simulated"));
    // Annotate via the form, then see it in the metadata pane.
    let resp = app.handle(&Request::post(
        "/annotate",
        "path=%2Fhome%2Fsekar%2Freadme.txt&kind=errata&location=line+1&text=typo+fixed",
        Some(&key),
    ));
    assert_eq!(resp.status, 200);
    let resp = app.handle(&Request::get(
        "/meta?path=%2Fhome%2Fsekar%2Freadme.txt",
        Some(&key),
    ));
    assert!(resp.text().contains("typo fixed"));
    assert!(resp.text().contains("errata"));
}

#[test]
fn replicate_delete_and_admin_pages() {
    let fx = fixture();
    let conn = SrbConnection::connect(&fx.grid, fx.srv, "sekar", "sdsc", "pw").unwrap();
    conn.ingest(
        "/home/sekar/f",
        b"data",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);
    let resp = app.handle(&Request::post(
        "/replicate",
        "path=%2Fhome%2Fsekar%2Ff&resource=hpss-caltech",
        Some(&key),
    ));
    assert_eq!(resp.status, 200, "{}", resp.text());
    let (_, _, nrep, _) = conn.stat("/home/sekar/f").unwrap();
    assert_eq!(nrep, 2);
    // Admin page reflects the grid.
    let resp = app.handle(&Request::get("/admin", Some(&key)));
    let html = resp.text();
    assert!(html.contains("hpss-caltech"));
    assert!(html.contains("&quot;datasets&quot;: 1"));
    // Delete via the form.
    let resp = app.handle(&Request::post(
        "/delete",
        "path=%2Fhome%2Fsekar%2Ff",
        Some(&key),
    ));
    assert_eq!(resp.status, 200);
    assert!(conn.read("/home/sekar/f").is_err());
    // JSON summary endpoint.
    let resp = app.handle(&Request::get("/api/summary", Some(&key)));
    assert_eq!(resp.content_type, "application/json");
    let v: serde_json::Value = serde_json::from_str(&resp.text()).unwrap();
    assert_eq!(v["datasets"], 0);
}

#[test]
fn unknown_page_is_404_and_permission_maps_to_403() {
    let fx = fixture();
    fx.grid.register_user("intruder", "sdsc", "pw2").unwrap();
    let conn = SrbConnection::connect(&fx.grid, fx.srv, "sekar", "sdsc", "pw").unwrap();
    conn.ingest(
        "/home/sekar/private",
        b"x",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);
    assert_eq!(app.handle(&Request::get("/nope", Some(&key))).status, 404);
    assert_eq!(
        app.handle(&Request::get(
            "/view?path=%2Fhome%2Fsekar%2Fmissing",
            Some(&key)
        ))
        .status,
        404
    );
    // The intruder hits a 403 on sekar's private object.
    let resp = app.handle(&Request::post(
        "/login",
        "user=intruder&domain=sdsc&password=pw2",
        None,
    ));
    let key2 = resp
        .headers
        .iter()
        .find(|(k, _)| k == "Set-Cookie")
        .and_then(|(_, v)| v.strip_prefix("mysrb_session="))
        .map(|v| v.split(';').next().unwrap().to_string())
        .unwrap();
    let resp = app.handle(&Request::get(
        "/view?path=%2Fhome%2Fsekar%2Fprivate",
        Some(&key2),
    ));
    assert_eq!(resp.status, 403);
    // After a public read grant, the intruder can view it.
    conn.grant_public("/home/sekar/private", Permission::Read)
        .unwrap();
    let resp = app.handle(&Request::get(
        "/view?path=%2Fhome%2Fsekar%2Fprivate",
        Some(&key2),
    ));
    assert_eq!(resp.status, 200);
}

#[test]
fn sixty_minute_session_expiry_in_the_app() {
    let fx = fixture();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);
    assert_eq!(
        app.handle(&Request::get("/browse?path=%2F", Some(&key)))
            .status,
        200
    );
    fx.grid.clock.advance(61 * 60 * 1_000_000_000);
    // Expired key redirects to the sign-on page.
    assert_eq!(
        app.handle(&Request::get("/browse?path=%2F", Some(&key)))
            .status,
        303
    );
}

#[test]
fn user_registration_via_web() {
    let fx = fixture();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    // The form renders.
    let resp = app.handle(&Request::get("/register", None));
    assert!(resp.text().contains("Register a MySRB account"));
    // Incomplete submissions re-render with a message.
    let resp = app.handle(&Request::post(
        "/register",
        "user=newbie&domain=&password=",
        None,
    ));
    assert!(resp.text().contains("required"));
    // A full registration creates the account and its home collection.
    let resp = app.handle(&Request::post(
        "/register",
        "user=newbie&domain=sdsc&password=np",
        None,
    ));
    assert!(resp.text().contains("account created"));
    let resp = app.handle(&Request::post(
        "/login",
        "user=newbie&domain=sdsc&password=np",
        None,
    ));
    assert_eq!(resp.status, 303);
    // Duplicate registration fails gracefully.
    let resp = app.handle(&Request::post(
        "/register",
        "user=newbie&domain=sdsc&password=np",
        None,
    ));
    assert!(resp.text().contains("ALREADY_EXISTS"));
}

#[test]
fn edit_facility_limited_to_small_ascii() {
    let fx = fixture();
    let conn = SrbConnection::connect(&fx.grid, fx.srv, "sekar", "sdsc", "pw").unwrap();
    conn.ingest(
        "/home/sekar/notes.txt",
        b"original text",
        IngestOptions::to_resource("unix-sdsc").with_type("ascii text"),
    )
    .unwrap();
    conn.ingest(
        "/home/sekar/photo.jpg",
        b"JPEG",
        IngestOptions::to_resource("unix-sdsc").with_type("jpeg image"),
    )
    .unwrap();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);
    // The edit form shows the current content.
    let resp = app.handle(&Request::get(
        "/edit?path=%2Fhome%2Fsekar%2Fnotes.txt",
        Some(&key),
    ));
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("original text"));
    // Saving updates the file.
    let resp = app.handle(&Request::post(
        "/edit",
        "path=%2Fhome%2Fsekar%2Fnotes.txt&content=edited+in+the+browser",
        Some(&key),
    ));
    assert_eq!(resp.status, 200);
    assert_eq!(
        &conn.read("/home/sekar/notes.txt").unwrap().0[..],
        b"edited in the browser"
    );
    // Binary data types are not editable (paper: "only for a few data
    // types").
    let resp = app.handle(&Request::get(
        "/edit?path=%2Fhome%2Fsekar%2Fphoto.jpg",
        Some(&key),
    ));
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("not allowed"));
}

#[test]
fn help_page_and_inline_metadata_links() {
    let fx = fixture();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let resp = app.handle(&Request::get("/help", None));
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("MySRB help"));

    // Inlineable/related metadata: a URL value renders as a hot-link, an
    // SRB-path value as a view link, and units=inline embeds the content.
    let conn = SrbConnection::connect(&fx.grid, fx.srv, "sekar", "sdsc", "pw").unwrap();
    conn.ingest(
        "/home/sekar/big.img",
        b"IMAGE",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.ingest(
        "/home/sekar/thumb.txt",
        b"[thumbnail bytes]",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    fx.grid
        .web
        .host_static("http://museum.example/info", &b"info page"[..]);
    conn.add_metadata(
        "/home/sekar/big.img",
        Triplet::new("related", "http://museum.example/info", ""),
    )
    .unwrap();
    conn.add_metadata(
        "/home/sekar/big.img",
        Triplet::new("thumbnail", "/home/sekar/thumb.txt", "inline"),
    )
    .unwrap();
    let key = login(&app);
    let resp = app.handle(&Request::get(
        "/meta?path=%2Fhome%2Fsekar%2Fbig.img",
        Some(&key),
    ));
    let html = resp.text();
    assert!(html.contains("<a href=\"http://museum.example/info\">"));
    assert!(
        html.contains("[thumbnail bytes]"),
        "inline content embedded"
    );
}

#[test]
fn admin_page_lists_containers_and_users() {
    let fx = fixture();
    let conn = SrbConnection::connect(&fx.grid, fx.srv, "sekar", "sdsc", "pw").unwrap();
    // ct-store doesn't exist in this fixture; create a logical resource on
    // the fly for the container.
    fx.grid
        .mcat
        .resources
        .create_logical(
            &fx.grid.mcat.ids,
            "pair",
            &[
                fx.grid.resource_id("unix-sdsc").unwrap(),
                fx.grid.resource_id("hpss-caltech").unwrap(),
            ],
        )
        .unwrap();
    conn.create_container("adminct", "pair", 1024).unwrap();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);
    let html = app.handle(&Request::get("/admin", Some(&key))).text();
    assert!(html.contains("adminct"));
    assert!(html.contains("sekar@sdsc"));
    assert!(html.contains("srb@sdsc")); // the bootstrap admin
    assert!(html.contains("Containers"));
}

#[test]
fn mkcoll_via_form() {
    let fx = fixture();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);
    let resp = app.handle(&Request::post(
        "/mkcoll",
        "parent=%2Fhome%2Fsekar&name=new+coll",
        Some(&key),
    ));
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert!(resp.text().contains("new coll"));
}

#[test]
fn grid_errors_keep_the_error_kind_in_the_body() {
    let fx = fixture();
    let conn = SrbConnection::connect(&fx.grid, fx.srv, "sekar", "sdsc", "pw").unwrap();
    conn.ingest(
        "/home/sekar/solo",
        b"x",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);
    // Take the only replica's resource down: the 503 page must say *which*
    // kind of failure it folded into that status, not just the message.
    let rid = fx.grid.resource_id("unix-sdsc").unwrap();
    fx.grid.faults.fail_resource(rid);
    let resp = app.handle(&Request::get(
        "/view?path=%2Fhome%2Fsekar%2Fsolo",
        Some(&key),
    ));
    assert_eq!(resp.status, 503, "{}", resp.text());
    assert!(
        resp.text().contains("RESOURCE_UNAVAILABLE"),
        "error kind lost: {}",
        resp.text()
    );
    fx.grid.faults.restore_resource(rid);
    // A timeout maps to 504, again with its kind in the body.
    fx.grid
        .faults
        .set_mode(rid, srb_core::FaultMode::FailNext(1));
    let resp = app.handle(&Request::get(
        "/view?path=%2Fhome%2Fsekar%2Fsolo",
        Some(&key),
    ));
    if resp.status != 200 {
        // The retry budget may absorb the injected failure; when it does
        // not, the status and body must stay faithful to the kind.
        assert_eq!(resp.status, 504);
        assert!(resp.text().contains("TIMEOUT"));
    }
}

#[test]
fn metrics_and_grid_status_endpoints() {
    let fx = fixture();
    let conn = SrbConnection::connect(&fx.grid, fx.srv, "sekar", "sdsc", "pw").unwrap();
    conn.ingest(
        "/home/sekar/obs.txt",
        b"observable",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    let app = MySrb::new(&fx.grid, fx.srv, 1);
    let key = login(&app);
    let resp = app.handle(&Request::get(
        "/view?path=%2Fhome%2Fsekar%2Fobs.txt",
        Some(&key),
    ));
    assert_eq!(resp.status, 200);
    // Route metrics recorded against the grid's registry.
    let snap = fx.grid.metrics_snapshot();
    assert_eq!(snap.counter("web.requests", "/view"), 1);
    assert_eq!(snap.counter("web.status", "200"), 1);
    assert!(snap.counter("storage.ops", "file-system") >= 1);
    // /metrics needs no session and renders the text exposition.
    let resp = app.handle(&Request::get("/metrics", None));
    assert_eq!(resp.status, 200);
    assert_eq!(resp.content_type, "text/plain; charset=utf-8");
    let text = resp.text();
    assert!(text.contains("web.requests{/view} 1"), "{text}");
    assert!(text.contains("web.request_ns{/view}"), "{text}");
    // /grid-status shows per-resource health and the slow-op table.
    let resp = app.handle(&Request::get("/grid-status", None));
    assert_eq!(resp.status, 200);
    let html = resp.text();
    assert!(html.contains("unix-sdsc"));
    assert!(html.contains("closed"));
    assert!(html.contains("Slowest operations"));
    assert!(
        html.contains("open"),
        "slow-op table lists the read: {html}"
    );
    // Errors feed both the per-route and the per-code counters.
    let resp = app.handle(&Request::get(
        "/view?path=%2Fhome%2Fsekar%2Fmissing",
        Some(&key),
    ));
    assert_eq!(resp.status, 404);
    let snap = fx.grid.metrics_snapshot();
    assert_eq!(snap.counter("web.errors", "/view"), 1);
    assert_eq!(snap.counter("web.error_codes", "NOT_FOUND"), 1);
}

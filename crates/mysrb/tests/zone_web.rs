//! Zone-aware front-end: the browse listing's zone column and the
//! `/grid-status` federation panel, driven through `MySrb::handle`
//! against a live two-zone federation.

use mysrb::{MySrb, Request};
use srb_core::{Federation, GridBuilder, IngestOptions, SrbConnection, ZoneId};
use srb_mcat::WalConfig;
use srb_storage::LogDevice;
use srb_types::{ServerId, SimClock};
use std::sync::Arc;

fn zone_grid(clock: &SimClock, tag: &str) -> (srb_core::Grid, ServerId) {
    let mut gb = GridBuilder::new();
    gb.clock(clock.clone());
    let site = gb.site(&format!("site-{tag}"));
    let srv = gb.server(&format!("srb-{tag}"), site);
    gb.fs_resource(&format!("fs-{tag}"), srv);
    let grid = gb.build();
    grid.enable_durability(
        Arc::new(LogDevice::new()),
        WalConfig {
            checkpoint_interval_ns: 0,
        },
    )
    .unwrap();
    grid.register_user("sekar", "sdsc", "pw").unwrap();
    (grid, srv)
}

fn two_zones() -> (Federation, ZoneId, ZoneId) {
    let mut fed = Federation::new();
    let clock = fed.clock().clone();
    let (ga, sa) = zone_grid(&clock, "alpha");
    let (gb_, sb) = zone_grid(&clock, "beta");
    let a = fed.add_zone("alpha", ga, sa).unwrap();
    let b = fed.add_zone("beta", gb_, sb).unwrap();
    fed.link(a, b, srb_net::LinkSpec::wan()).unwrap();
    (fed, a, b)
}

fn login(app: &MySrb) -> String {
    let resp = app.handle(&Request::post(
        "/login",
        "user=sekar&domain=sdsc&password=pw",
        None,
    ));
    assert_eq!(resp.status, 303);
    resp.headers
        .iter()
        .find(|(k, _)| k == "Set-Cookie")
        .and_then(|(_, v)| v.strip_prefix("mysrb_session="))
        .map(|v| v.split(';').next().unwrap().to_string())
        .expect("session cookie")
}

#[test]
fn browse_shows_zone_column_with_remote_provenance() {
    let (fed, a, b) = two_zones();
    {
        let alpha = fed.zone(a).unwrap();
        let conn =
            SrbConnection::connect(&alpha.grid, alpha.contact(), "sekar", "sdsc", "pw").unwrap();
        conn.ingest(
            "/home/sekar/survey.dat",
            b"data",
            IngestOptions::to_resource("fs-alpha"),
        )
        .unwrap();
    }
    fed.register_remote(a, "/home/sekar/survey.dat", b, "/home/sekar/survey.dat")
        .unwrap();
    {
        let beta = fed.zone(b).unwrap();
        let conn =
            SrbConnection::connect(&beta.grid, beta.contact(), "sekar", "sdsc", "pw").unwrap();
        conn.ingest(
            "/home/sekar/local.dat",
            b"data",
            IngestOptions::to_resource("fs-beta"),
        )
        .unwrap();
    }

    let beta = fed.zone(b).unwrap();
    let app = MySrb::new(&beta.grid, beta.contact(), 1).with_federation(&fed, b);
    let key = login(&app);
    let resp = app.handle(&Request::get("/browse?path=%2Fhome%2Fsekar", Some(&key)));
    assert_eq!(resp.status, 200);
    let html = resp.text();
    assert!(html.contains("<th>zone</th>"), "zone column header missing");
    assert!(
        html.contains("alpha (remote)"),
        "registered row must show its home zone"
    );
    assert!(html.contains("beta"), "local rows show the local zone");

    // A zone-unaware app renders the classic four-column listing.
    let plain = MySrb::new(&beta.grid, beta.contact(), 2);
    let key = login(&plain);
    let resp = plain.handle(&Request::get("/browse?path=%2Fhome%2Fsekar", Some(&key)));
    assert!(!resp.text().contains("<th>zone</th>"));
}

#[test]
fn grid_status_shows_federation_panel() {
    let (fed, a, b) = two_zones();
    {
        let alpha = fed.zone(a).unwrap();
        let conn =
            SrbConnection::connect(&alpha.grid, alpha.contact(), "sekar", "sdsc", "pw").unwrap();
        conn.make_collection("/home/sekar/data").unwrap();
        conn.ingest(
            "/home/sekar/data/one.dat",
            b"x",
            IngestOptions::to_resource("fs-alpha"),
        )
        .unwrap();
    }
    fed.subscribe(b, a, "/home/sekar/data").unwrap();
    fed.pump(8).unwrap();

    let alpha = fed.zone(a).unwrap();
    let app = MySrb::new(&alpha.grid, alpha.contact(), 1).with_federation(&fed, a);
    let resp = app.handle(&Request::get("/grid-status", None));
    assert_eq!(resp.status, 200);
    let html = resp.text();
    assert!(html.contains("<h3>Federation</h3>"));
    assert!(html.contains("this zone: <b>alpha</b>"));
    assert!(html.contains("beta"));
    assert!(html.contains("alpha → beta"), "subscription row missing");
    assert!(html.contains("up"));

    // Partition the link: the panel reports it.
    fed.partition(a, b).unwrap();
    let html = app.handle(&Request::get("/grid-status", None)).text();
    assert!(html.contains("PARTITIONED"));
    assert!(html.contains("partition(s)"));
}

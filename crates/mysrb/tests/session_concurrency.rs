//! Concurrency coverage for the sharded [`SessionStore`]: scoped-thread
//! create/validate/expire interleavings driven by seeded schedules,
//! asserting no session is lost, resurrected, or double-reclaimed, and
//! that observable behavior does not depend on the shard count.

use mysrb::{SessionConfig, SessionStore, WEB_SESSION_TTL_SECS};
use srb_core::{Grid, GridBuilder, SrbConnection};
use srb_obs::MetricsRegistry;
use srb_types::splitmix64;

fn fixture() -> (Grid, srb_types::ServerId) {
    let mut gb = GridBuilder::new();
    let site = gb.site("sdsc");
    let srv = gb.server("srb", site);
    gb.fs_resource("fs", srv);
    let grid = gb.build();
    grid.register_user("u", "d", "pw").expect("register user");
    (grid, srv)
}

fn connect<'g>(grid: &'g Grid, srv: srb_types::ServerId) -> SrbConnection<'g> {
    SrbConnection::connect_pooled(grid, srv, "u", "d", "pw").expect("connect")
}

/// T threads each create K sessions, remove a seeded subset, and poke
/// shared state (count/sweep) while the others run. Afterwards every
/// kept key must validate, every removed key must fail, and the table
/// must hold exactly the kept sessions — none lost, none resurrected.
#[test]
fn seeded_create_remove_interleaving_loses_nothing() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 25;
    let (grid, srv) = fixture();
    let store = SessionStore::with_config(
        grid.clock.clone(),
        11,
        SessionConfig {
            shards: 8,
            sweep_budget: 4,
        },
    );

    let mut kept: Vec<Vec<String>> = Vec::new();
    let mut removed: Vec<Vec<String>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let store = &store;
                let grid = &grid;
                scope.spawn(move || {
                    let mut kept = Vec::new();
                    let mut removed = Vec::new();
                    for i in 0..PER_THREAD {
                        let key = store.create(connect(grid, srv), "u@d");
                        store.validate(&key).expect("fresh key validates");
                        // Seeded schedule: drop roughly a third, and mix
                        // in sweeps/counts to vary the interleaving.
                        match splitmix64(42, t * PER_THREAD + i) % 6 {
                            0 | 1 => {
                                store.remove(&key);
                                removed.push(key);
                            }
                            2 => {
                                store.sweep_expired(2);
                                kept.push(key);
                            }
                            3 => {
                                let _ = store.count();
                                kept.push(key);
                            }
                            _ => kept.push(key),
                        }
                    }
                    (kept, removed)
                })
            })
            .collect();
        for h in handles {
            let (k, r) = h.join().expect("worker thread");
            kept.push(k);
            removed.push(r);
        }
    });

    let kept: Vec<String> = kept.into_iter().flatten().collect();
    let removed: Vec<String> = removed.into_iter().flatten().collect();
    assert_eq!(kept.len() + removed.len(), (THREADS * PER_THREAD) as usize);
    for k in &kept {
        store.validate(k).expect("kept session lost");
    }
    for r in &removed {
        assert!(store.validate(r).is_err(), "removed session resurrected");
    }
    assert_eq!(store.count(), kept.len());
}

/// After the TTL passes, concurrent evict-on-sight validations and
/// bounded sweeps race to reclaim the same sessions. Every session must
/// be reclaimed exactly once: the live gauge ends at zero (a double
/// reclaim would drive it negative) and the expired counter matches.
#[test]
fn concurrent_eviction_and_sweep_reclaim_exactly_once() {
    const SESSIONS: usize = 120;
    let (grid, srv) = fixture();
    let registry = MetricsRegistry::new();
    let store = SessionStore::with_config(
        grid.clock.clone(),
        13,
        SessionConfig {
            shards: 4,
            sweep_budget: 2,
        },
    )
    .with_metrics(&registry);

    let keys: Vec<String> = (0..SESSIONS)
        .map(|_| store.create(connect(&grid, srv), "u@d"))
        .collect();
    assert_eq!(store.count(), SESSIONS);
    grid.clock
        .advance((WEB_SESSION_TTL_SECS + 1) * 1_000_000_000);

    std::thread::scope(|scope| {
        // Two threads present expired keys (evict-on-sight), two sweep.
        for half in 0..2 {
            let store = &store;
            let keys = &keys;
            scope.spawn(move || {
                for key in keys.iter().skip(half).step_by(2) {
                    assert!(store.validate(key).is_err());
                }
            });
        }
        for _ in 0..2 {
            let store = &store;
            scope.spawn(move || {
                for _ in 0..SESSIONS {
                    store.sweep_expired(3);
                }
            });
        }
    });

    assert_eq!(store.count(), 0);
    assert_eq!(
        registry.gauge("web.session_live", "all").get(),
        0,
        "live gauge must balance: every reclaim counted exactly once"
    );
    assert_eq!(
        registry.counter("web.session_expired", "all").get(),
        SESSIONS as u64
    );
    assert_eq!(
        registry.counter("web.session_created", "all").get(),
        SESSIONS as u64
    );
}

/// The same seeded single-threaded schedule replayed against a 1-shard
/// (ablation) and an 8-shard store must produce identical observable
/// behavior: the same validate outcomes step for step, the same total
/// number of sweep-reclaimed sessions, and an empty store after a full
/// drain. (Per-call sweep yields are *not* compared: tombstone positions
/// in the per-shard queues legitimately differ between layouts — only
/// the totals are layout-invariant.)
#[test]
fn observable_behavior_is_shard_count_independent() {
    let run = |shards: usize| -> Vec<String> {
        let (grid, srv) = fixture();
        // sweep_budget 0: all reclamation goes through the explicit
        // sweeps below, so the totals are comparable across layouts
        // (create-side amortized sweeps hit layout-dependent shards).
        let store = SessionStore::with_config(
            grid.clock.clone(),
            17,
            SessionConfig {
                shards,
                sweep_budget: 0,
            },
        );
        let mut keys: Vec<String> = Vec::new();
        let mut trace: Vec<String> = Vec::new();
        let mut swept = 0usize;
        for step in 0..200u64 {
            match splitmix64(7, step) % 5 {
                0 => {
                    keys.push(store.create(connect(&grid, srv), "u@d"));
                    trace.push("create".into());
                }
                1 if !keys.is_empty() => {
                    let k = &keys[(splitmix64(8, step) % keys.len() as u64) as usize];
                    trace.push(format!("validate:{}", store.validate(k).is_ok()));
                }
                2 if !keys.is_empty() => {
                    let k = keys.remove((splitmix64(9, step) % keys.len() as u64) as usize);
                    store.remove(&k);
                    trace.push("remove".into());
                }
                3 => {
                    grid.clock.advance(10 * 60 * 1_000_000_000);
                    trace.push("advance".into());
                }
                _ => {
                    swept += store.sweep_expired(5);
                    trace.push("sweep".into());
                }
            }
        }
        // Drain everything left; both layouts must reclaim the same
        // total and agree the store is empty.
        grid.clock.advance(2 * WEB_SESSION_TTL_SECS * 1_000_000_000);
        for _ in 0..500 {
            swept += store.sweep_expired(7);
        }
        trace.push(format!("total_reclaimed:{swept}"));
        trace.push(format!("final_count:{}", store.count()));
        trace
    };

    let single = run(1);
    let sharded = run(8);
    assert_eq!(
        single, sharded,
        "1-shard and 8-shard stores must be observationally identical"
    );
    assert!(single.last().is_some_and(|s| s == "final_count:0"));
}

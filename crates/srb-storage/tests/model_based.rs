//! Model-based property tests: each driver is compared against a simple
//! in-memory reference model under random operation sequences.

use proptest::prelude::*;
use srb_storage::{ArchiveDriver, CacheDriver, FsDriver, SqlEngine, StorageDriver};
use srb_types::{SimClock, SrbError};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Create(u8, Vec<u8>),
    Write(u8, Vec<u8>),
    Append(u8, Vec<u8>),
    Delete(u8),
    Read(u8),
    RangeRead(u8, u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, prop::collection::vec(any::<u8>(), 0..32)).prop_map(|(k, d)| Op::Create(k, d)),
        (0u8..6, prop::collection::vec(any::<u8>(), 0..32)).prop_map(|(k, d)| Op::Write(k, d)),
        (0u8..6, prop::collection::vec(any::<u8>(), 0..16)).prop_map(|(k, d)| Op::Append(k, d)),
        (0u8..6).prop_map(Op::Delete),
        (0u8..6).prop_map(Op::Read),
        (0u8..6, any::<u8>(), any::<u8>()).prop_map(|(k, o, l)| Op::RangeRead(k, o, l)),
    ]
}

fn check_driver_against_model(driver: &dyn StorageDriver, ops: &[Op]) {
    let mut model: HashMap<String, Vec<u8>> = HashMap::new();
    for op in ops {
        match op {
            Op::Create(k, d) => {
                let path = format!("k{k}");
                let expect_err = model.contains_key(&path);
                let got = driver.create(&path, d);
                assert_eq!(got.is_err(), expect_err, "create {path}");
                if !expect_err {
                    model.insert(path, d.clone());
                }
            }
            Op::Write(k, d) => {
                let path = format!("k{k}");
                driver.write(&path, d).unwrap();
                model.insert(path, d.clone());
            }
            Op::Append(k, d) => {
                let path = format!("k{k}");
                driver.append(&path, d).unwrap();
                model.entry(path).or_default().extend_from_slice(d);
            }
            Op::Delete(k) => {
                let path = format!("k{k}");
                let expect_err = !model.contains_key(&path);
                assert_eq!(driver.delete(&path).is_err(), expect_err, "delete {path}");
                model.remove(&path);
            }
            Op::Read(k) => {
                let path = format!("k{k}");
                match model.get(&path) {
                    Some(d) => {
                        let (got, _) = driver.read(&path).unwrap();
                        assert_eq!(&got[..], &d[..], "read {path}");
                    }
                    None => assert!(matches!(driver.read(&path), Err(SrbError::NotFound(_)))),
                }
            }
            Op::RangeRead(k, o, l) => {
                let path = format!("k{k}");
                if let Some(d) = model.get(&path) {
                    let (got, _) = driver.read_range(&path, *o as u64, *l as u64).unwrap();
                    let start = (*o as usize).min(d.len());
                    let end = (*o as usize + *l as usize).min(d.len());
                    assert_eq!(&got[..], &d[start..end], "range {path}");
                }
            }
        }
    }
    // Final invariant: usage equals the sum of live object sizes.
    let expected: u64 = model.values().map(|v| v.len() as u64).sum();
    assert_eq!(driver.used_bytes(), expected);
    // And the listing matches the model's key set.
    let mut keys: Vec<String> = model.keys().cloned().collect();
    keys.sort();
    assert_eq!(driver.list("").unwrap(), keys);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fs_driver_matches_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let driver = FsDriver::new(SimClock::new());
        check_driver_against_model(&driver, &ops);
    }

    #[test]
    fn archive_driver_matches_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let driver = ArchiveDriver::new(SimClock::new());
        check_driver_against_model(&driver, &ops);
    }

    #[test]
    fn archive_model_holds_across_purges(
        ops in prop::collection::vec(op_strategy(), 1..40),
        purge_at in 0usize..40,
    ) {
        // Purging the staging cache must never change *contents*, only
        // costs.
        let driver = ArchiveDriver::new(SimClock::new());
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            if i == purge_at {
                driver.purge_staged();
            }
            if let Op::Write(k, d) = op {
                let path = format!("k{k}");
                driver.write(&path, d).unwrap();
                model.insert(path, d.clone());
            }
        }
        for (path, d) in &model {
            let (got, _) = driver.read(path).unwrap();
            prop_assert_eq!(&got[..], &d[..]);
        }
    }

    /// Cache under random traffic: reads never return wrong bytes, usage
    /// stays within capacity, pinned objects survive.
    #[test]
    fn cache_returns_correct_bytes_or_notfound(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let clock = SimClock::new();
        let cache = CacheDriver::new(clock.clone(), 256);
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        for op in &ops {
            match op {
                Op::Write(k, d) if d.len() <= 256 => {
                    let path = format!("k{k}");
                    if cache.write(&path, d).is_ok() {
                        model.insert(path, d.clone());
                    }
                }
                Op::Read(k) => {
                    let path = format!("k{k}");
                    if let Ok((got, _)) = cache.read(&path) {
                        // Anything the cache returns must match the last
                        // write (it may have evicted, but never corrupts).
                        prop_assert_eq!(&got[..], &model[&path][..]);
                    }
                }
                _ => {}
            }
            prop_assert!(cache.used_bytes() <= 256);
        }
    }
}

#[test]
fn sql_engine_aggregate_consistency() {
    // Deterministic cross-check of SELECT-with-WHERE against manual
    // filtering over 500 random-ish rows.
    let e = SqlEngine::new();
    e.execute("CREATE TABLE t (a, b)").unwrap();
    let mut rows = Vec::new();
    let mut x: i64 = 12345;
    for _ in 0..500 {
        x = (x.wrapping_mul(1103515245).wrapping_add(12345)) % 100_000;
        let a = x % 100;
        let b = (x / 100) % 10;
        rows.push((a, b));
        e.execute(&format!("INSERT INTO t VALUES ({a}, {b})"))
            .unwrap();
    }
    for threshold in [0i64, 25, 50, 99] {
        let r = e
            .execute(&format!("SELECT a FROM t WHERE a > {threshold} AND b = 3"))
            .unwrap();
        let expected = rows
            .iter()
            .filter(|(a, b)| *a > threshold && *b == 3)
            .count();
        assert_eq!(r.rows.len(), expected, "threshold {threshold}");
    }
}

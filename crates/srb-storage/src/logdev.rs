//! The simulated write-ahead-log device.
//!
//! Real SRB servers put the MCAT in a commercial database whose durability
//! comes from a redo log fsynced on commit. This module is that disk: an
//! in-memory, crash-aware sequential device holding one checkpoint slot
//! (full catalog snapshot) plus an ordered tail of LSN-stamped records.
//! Like every other driver in this crate it never sleeps — each operation
//! returns its virtual cost in nanoseconds so the WAL can charge group
//! commits against the `SimClock` and fold them into receipts.
//!
//! Crash semantics are explicit and deterministic:
//!
//! * [`LogDevice::append`] buffers a record (the OS page cache); it is
//!   *not* durable until [`LogDevice::sync`] runs.
//! * [`LogDevice::crash`] models `kill -9`: the unsynced tail vanishes,
//!   everything synced survives.
//! * [`LogDevice::truncate_after`] lets chaos tests pin the durable prefix
//!   at an arbitrary LSN, simulating a crash at exactly that point.
//!
//! Every record carries an FNV-1a checksum computed at append time and
//! verified on [`LogDevice::read_back`]; a corrupt line ends the readable
//! tail (torn write) rather than failing recovery outright.

use crate::driver::CostModel;
use srb_types::sync::{LockRank, Mutex};
use srb_types::{Lsn, SrbError, SrbResult};

/// One durable (or buffered) log line.
#[derive(Debug, Clone)]
struct LogLine {
    lsn: Lsn,
    payload: String,
    checksum: u64,
}

/// FNV-1a over the LSN and payload; stable and cheap, matching the
/// checksum style used elsewhere in the workspace.
fn line_checksum(lsn: Lsn, payload: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in lsn.raw().to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    for b in payload.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[derive(Debug, Default)]
struct LogInner {
    /// Records the media has accepted (survive a crash).
    synced: Vec<LogLine>,
    /// Records still in the buffer (lost on crash).
    unsynced: Vec<LogLine>,
    /// Latest checkpoint: covered-through LSN + catalog snapshot JSON.
    checkpoint: Option<(Lsn, String)>,
    /// Total appends accepted over the device's lifetime.
    appends: u64,
    /// Total syncs performed.
    syncs: u64,
}

/// The simulated sequential log medium. See the module docs.
#[derive(Debug)]
pub struct LogDevice {
    inner: Mutex<LogInner>,
    cost: CostModel,
}

impl LogDevice {
    /// Per-record buffered-append overhead (a memcpy into the log buffer).
    pub const APPEND_NS: u64 = 2_000;

    /// A log device with the default cost model: fsync pays a 2002-era
    /// rotational-latency fixed cost, then streams at disk write speed.
    pub fn new() -> Self {
        LogDevice::with_cost(CostModel {
            fixed_ns: 5_000_000, // one fsync ≈ 5 ms on a 2002 disk
            read_mbps: 50.0,
            write_mbps: 40.0,
        })
    }

    /// A log device with an explicit cost model (experiments).
    pub fn with_cost(cost: CostModel) -> Self {
        LogDevice {
            inner: Mutex::new(LockRank::Storage, "storage.logdev", LogInner::default()),
            cost,
        }
    }

    /// Buffer one record. Cheap and *not* durable; returns the virtual
    /// cost of the buffered append.
    pub fn append(&self, lsn: Lsn, payload: &str) -> u64 {
        let mut g = self.inner.lock();
        g.unsynced.push(LogLine {
            lsn,
            payload: payload.to_string(),
            checksum: line_checksum(lsn, payload),
        });
        g.appends += 1;
        Self::APPEND_NS
    }

    /// Force every buffered record to media. Returns
    /// `(highest durable LSN, virtual cost)`; the cost is zero when the
    /// buffer was already empty (nothing to fsync).
    pub fn sync(&self) -> (Lsn, u64) {
        let mut g = self.inner.lock();
        if g.unsynced.is_empty() {
            return (Self::durable_lsn(&g), 0);
        }
        let bytes: u64 = g.unsynced.iter().map(|l| l.payload.len() as u64 + 16).sum();
        let moved = std::mem::take(&mut g.unsynced);
        g.synced.extend(moved);
        g.syncs += 1;
        (Self::durable_lsn(&g), self.cost.write_ns(bytes))
    }

    fn durable_lsn(g: &LogInner) -> Lsn {
        g.synced
            .last()
            .map(|l| l.lsn)
            .or(g.checkpoint.as_ref().map(|&(lsn, _)| lsn))
            .unwrap_or_default()
    }

    /// Highest LSN guaranteed to survive a crash right now.
    pub fn synced_lsn(&self) -> Lsn {
        Self::durable_lsn(&self.inner.lock())
    }

    /// Atomically install a checkpoint covering records through `lsn`,
    /// pruning the covered prefix of the durable tail. Returns the virtual
    /// cost of writing the snapshot and rewriting the log head.
    pub fn install_checkpoint(&self, lsn: Lsn, snapshot: &str) -> u64 {
        let mut g = self.inner.lock();
        g.synced.retain(|l| l.lsn > lsn);
        g.checkpoint = Some((lsn, snapshot.to_string()));
        self.cost.write_ns(snapshot.len() as u64)
    }

    /// LSN covered by the current checkpoint, if any.
    pub fn checkpoint_lsn(&self) -> Option<Lsn> {
        self.inner.lock().checkpoint.as_ref().map(|&(lsn, _)| lsn)
    }

    /// Model `kill -9`: the buffered tail is lost, durable state survives.
    pub fn crash(&self) {
        self.inner.lock().unsynced.clear();
    }

    /// Chaos hook: crash *and* pin the durable prefix at `lsn`, discarding
    /// any synced record past it — "the disk got exactly this far".
    pub fn truncate_after(&self, lsn: Lsn) {
        let mut g = self.inner.lock();
        g.unsynced.clear();
        g.synced.retain(|l| l.lsn <= lsn);
    }

    /// Read the durable image back for recovery: the checkpoint (if any)
    /// plus every durable record past it, checksums verified. A corrupt
    /// line ends the tail (torn write); a corrupt checkpoint is fatal.
    /// Returns `(checkpoint, tail, virtual cost)`.
    #[allow(clippy::type_complexity)]
    pub fn read_back(&self) -> SrbResult<(Option<(Lsn, String)>, Vec<(Lsn, String)>, u64)> {
        let g = self.inner.lock();
        let mut bytes = 0u64;
        let checkpoint = match &g.checkpoint {
            Some((lsn, snap)) => {
                if snap.is_empty() {
                    return Err(SrbError::Internal("empty checkpoint snapshot".into()));
                }
                bytes += snap.len() as u64;
                Some((*lsn, snap.clone()))
            }
            None => None,
        };
        let mut tail = Vec::with_capacity(g.synced.len());
        for line in &g.synced {
            if line_checksum(line.lsn, &line.payload) != line.checksum {
                break; // torn tail: everything before it is still good
            }
            bytes += line.payload.len() as u64 + 16;
            tail.push((line.lsn, line.payload.clone()));
        }
        Ok((checkpoint, tail, self.cost.read_ns(bytes)))
    }

    /// Durable log payload bytes currently held past the checkpoint.
    pub fn log_bytes(&self) -> u64 {
        self.inner
            .lock()
            .synced
            .iter()
            .map(|l| l.payload.len() as u64 + 16)
            .sum()
    }

    /// `(lifetime appends, lifetime syncs, durable records past the
    /// checkpoint)` — for experiments reporting WAL overhead.
    pub fn stats(&self) -> (u64, u64, usize) {
        let g = self.inner.lock();
        (g.appends, g.syncs, g.synced.len())
    }

    /// Test hook: corrupt the checksum of the last durable record,
    /// simulating a torn write discovered at recovery.
    #[doc(hidden)]
    pub fn corrupt_last_synced(&self) {
        if let Some(line) = self.inner.lock().synced.last_mut() {
            line.checksum ^= 0xdead_beef;
        }
    }
}

impl Default for LogDevice {
    fn default() -> Self {
        LogDevice::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_is_buffered_until_sync() {
        let d = LogDevice::new();
        d.append(Lsn(1), "a");
        assert_eq!(d.synced_lsn(), Lsn(0));
        let (durable, cost) = d.sync();
        assert_eq!(durable, Lsn(1));
        assert!(cost >= 5_000_000, "sync pays the fsync fixed cost");
        // Empty sync is free.
        assert_eq!(d.sync(), (Lsn(1), 0));
    }

    #[test]
    fn crash_loses_only_the_unsynced_tail() {
        let d = LogDevice::new();
        d.append(Lsn(1), "a");
        d.sync();
        d.append(Lsn(2), "b");
        d.crash();
        let (ckpt, tail, _) = d.read_back().unwrap();
        assert!(ckpt.is_none());
        assert_eq!(tail, vec![(Lsn(1), "a".to_string())]);
    }

    #[test]
    fn checkpoint_prunes_the_covered_prefix() {
        let d = LogDevice::new();
        for i in 1..=4 {
            d.append(Lsn(i), "r");
        }
        d.sync();
        d.install_checkpoint(Lsn(2), "{snap}");
        assert_eq!(d.checkpoint_lsn(), Some(Lsn(2)));
        let (ckpt, tail, _) = d.read_back().unwrap();
        assert_eq!(ckpt, Some((Lsn(2), "{snap}".to_string())));
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].0, Lsn(3));
        // With an empty tail the checkpoint LSN is the durable LSN.
        d.truncate_after(Lsn(2));
        assert_eq!(d.synced_lsn(), Lsn(2));
    }

    #[test]
    fn truncate_after_pins_the_durable_prefix() {
        let d = LogDevice::new();
        for i in 1..=5 {
            d.append(Lsn(i), "r");
        }
        d.sync();
        d.truncate_after(Lsn(3));
        let (_, tail, _) = d.read_back().unwrap();
        assert_eq!(tail.last().unwrap().0, Lsn(3));
        assert_eq!(d.synced_lsn(), Lsn(3));
    }

    #[test]
    fn torn_tail_ends_at_the_corrupt_record() {
        let d = LogDevice::new();
        d.append(Lsn(1), "a");
        d.append(Lsn(2), "b");
        d.sync();
        d.corrupt_last_synced();
        let (_, tail, _) = d.read_back().unwrap();
        assert_eq!(tail, vec![(Lsn(1), "a".to_string())]);
    }

    #[test]
    fn stats_and_bytes_track_activity() {
        let d = LogDevice::new();
        d.append(Lsn(1), "abcd");
        d.sync();
        let (appends, syncs, records) = d.stats();
        assert_eq!((appends, syncs, records), (1, 1, 1));
        assert_eq!(d.log_bytes(), 20);
    }
}

//! Database driver — Oracle/DB2/Sybase stand-in.
//!
//! Two roles, matching the paper:
//!
//! 1. **LOB store**: SRB can ingest files "as a LOB in a database system";
//!    the `StorageDriver` impl stores blobs keyed by physical path.
//! 2. **Query target**: registered SQL objects run live queries against the
//!    engine via [`DbDriver::query`].

use crate::driver::{CostModel, DriverKind, ObjStat, StorageDriver};
use crate::memfs::MemStore;
use crate::sql::{QueryResult, SqlEngine};
use bytes::Bytes;
use srb_types::{SimClock, SrbResult};

/// Simulated relational database holding LOBs and queryable tables.
pub struct DbDriver {
    lobs: MemStore,
    engine: SqlEngine,
    cost: CostModel,
}

impl DbDriver {
    /// New empty database.
    pub fn new(clock: SimClock) -> Self {
        DbDriver {
            lobs: MemStore::new(clock),
            engine: SqlEngine::new(),
            cost: CostModel::database(),
        }
    }

    /// Run a SQL statement against the database's tables. Returns the rows
    /// plus the virtual cost (per-op overhead + result marshalling).
    pub fn query(&self, sql: &str) -> SrbResult<(QueryResult, u64)> {
        let result = self.engine.execute(sql)?;
        let result_bytes: u64 = result
            .rows
            .iter()
            .flat_map(|r| r.iter())
            .map(|v| v.render().len() as u64)
            .sum();
        let cost = self.cost.read_ns(result_bytes);
        Ok((result, cost))
    }

    /// Direct access to the SQL engine (for seeding experiment tables).
    pub fn engine(&self) -> &SqlEngine {
        &self.engine
    }
}

impl StorageDriver for DbDriver {
    fn kind(&self) -> DriverKind {
        DriverKind::Database
    }

    fn create(&self, path: &str, data: &[u8]) -> SrbResult<u64> {
        self.lobs.create(path, data)?;
        Ok(self.cost.write_ns(data.len() as u64))
    }

    fn read(&self, path: &str) -> SrbResult<(Bytes, u64)> {
        let data = self.lobs.read(path)?;
        let cost = self.cost.read_ns(data.len() as u64);
        Ok((data, cost))
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> SrbResult<(Bytes, u64)> {
        let data = self.lobs.read_range(path, offset, len)?;
        let cost = self.cost.read_ns(data.len() as u64);
        Ok((data, cost))
    }

    fn write(&self, path: &str, data: &[u8]) -> SrbResult<u64> {
        self.lobs.write(path, data);
        Ok(self.cost.write_ns(data.len() as u64))
    }

    fn append(&self, path: &str, data: &[u8]) -> SrbResult<u64> {
        self.lobs.append(path, data);
        Ok(self.cost.write_ns(data.len() as u64))
    }

    fn delete(&self, path: &str) -> SrbResult<u64> {
        self.lobs.delete(path)?;
        Ok(self.cost.fixed_ns)
    }

    fn stat(&self, path: &str) -> SrbResult<ObjStat> {
        let (size, created, modified) = self.lobs.stat(path)?;
        Ok(ObjStat {
            size,
            created,
            modified,
            is_dir: false,
        })
    }

    fn list(&self, prefix: &str) -> SrbResult<Vec<String>> {
        Ok(self.lobs.list(prefix))
    }

    fn exists(&self, path: &str) -> bool {
        self.lobs.exists(path)
    }

    fn used_bytes(&self) -> u64 {
        self.lobs.used_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lob_round_trip() {
        let db = DbDriver::new(SimClock::new());
        db.create("lob/1", b"image-bytes").unwrap();
        let (data, cost) = db.read("lob/1").unwrap();
        assert_eq!(&data[..], b"image-bytes");
        assert!(cost >= CostModel::database().fixed_ns);
    }

    #[test]
    fn query_runs_against_live_tables() {
        let db = DbDriver::new(SimClock::new());
        db.engine().execute("CREATE TABLE dlib1 (title)").unwrap();
        db.engine()
            .execute("INSERT INTO dlib1 VALUES ('Mondrian'), ('Monet')")
            .unwrap();
        let (r, cost) = db
            .query("SELECT title FROM dlib1 WHERE title LIKE 'Mon%'")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert!(cost > 0);
    }

    #[test]
    fn db_ops_cost_more_than_disk() {
        let clock = SimClock::new();
        let db = DbDriver::new(clock.clone());
        let c = db.create("x", &[0u8; 1000]).unwrap();
        assert!(c >= CostModel::database().fixed_ns);
    }
}

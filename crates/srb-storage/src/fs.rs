//! File-system driver — the "unix-sdsc" style resource of the paper.
//!
//! A thin policy layer over [`MemStore`]: disk cost model, plus explicit
//! directory support so registered *shadow directories* (paper §4, object
//! type 2) can expose a cone of files.

use crate::driver::{CostModel, DriverKind, ObjStat, StorageDriver};
use crate::memfs::MemStore;
use bytes::Bytes;
use srb_types::sync::{LockRank, RwLock};
use srb_types::{SimClock, SrbError, SrbResult, Timestamp};
use std::collections::BTreeSet;

/// Simulated Unix/NT/Mac file system.
pub struct FsDriver {
    store: MemStore,
    dirs: RwLock<BTreeSet<String>>,
    cost: CostModel,
    clock: SimClock,
}

impl FsDriver {
    /// New empty file system with the standard disk cost model.
    pub fn new(clock: SimClock) -> Self {
        FsDriver::with_cost(clock, CostModel::disk())
    }

    /// New file system with a custom cost model.
    pub fn with_cost(clock: SimClock, cost: CostModel) -> Self {
        FsDriver {
            store: MemStore::new(clock.clone()),
            dirs: RwLock::new(LockRank::Storage, "storage.fs.dirs", BTreeSet::new()),
            cost,
            clock,
        }
    }

    /// Create an (empty) directory explicitly.
    pub fn mkdir(&self, path: &str) -> SrbResult<()> {
        let mut dirs = self.dirs.write();
        if !dirs.insert(path.trim_end_matches('/').to_string()) {
            return Err(SrbError::AlreadyExists(format!("directory '{path}'")));
        }
        Ok(())
    }

    /// Is `path` a known directory (explicit, or implied by some object)?
    pub fn is_dir(&self, path: &str) -> bool {
        let p = path.trim_end_matches('/');
        if self.dirs.read().contains(p) {
            return true;
        }
        let prefix = format!("{p}/");
        !self.store.list(&prefix).is_empty()
    }

    /// Files directly or transitively under a directory — the "cone of
    /// files" visible through a registered shadow-directory object.
    pub fn cone(&self, dir: &str) -> Vec<String> {
        let prefix = format!("{}/", dir.trim_end_matches('/'));
        self.store.list(&prefix)
    }
}

impl StorageDriver for FsDriver {
    fn kind(&self) -> DriverKind {
        DriverKind::FileSystem
    }

    fn create(&self, path: &str, data: &[u8]) -> SrbResult<u64> {
        self.store.create(path, data)?;
        Ok(self.cost.write_ns(data.len() as u64))
    }

    fn read(&self, path: &str) -> SrbResult<(Bytes, u64)> {
        let data = self.store.read(path)?;
        let cost = self.cost.read_ns(data.len() as u64);
        Ok((data, cost))
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> SrbResult<(Bytes, u64)> {
        let data = self.store.read_range(path, offset, len)?;
        let cost = self.cost.read_ns(data.len() as u64);
        Ok((data, cost))
    }

    fn write(&self, path: &str, data: &[u8]) -> SrbResult<u64> {
        self.store.write(path, data);
        Ok(self.cost.write_ns(data.len() as u64))
    }

    fn append(&self, path: &str, data: &[u8]) -> SrbResult<u64> {
        self.store.append(path, data);
        Ok(self.cost.write_ns(data.len() as u64))
    }

    fn delete(&self, path: &str) -> SrbResult<u64> {
        self.store.delete(path)?;
        Ok(self.cost.fixed_ns)
    }

    fn stat(&self, path: &str) -> SrbResult<ObjStat> {
        if self.is_dir(path) {
            let now = self.clock.now();
            return Ok(ObjStat {
                size: 0,
                created: Timestamp(0),
                modified: now,
                is_dir: true,
            });
        }
        let (size, created, modified) = self.store.stat(path)?;
        Ok(ObjStat {
            size,
            created,
            modified,
            is_dir: false,
        })
    }

    fn list(&self, prefix: &str) -> SrbResult<Vec<String>> {
        Ok(self.store.list(prefix))
    }

    fn exists(&self, path: &str) -> bool {
        self.store.exists(path) || self.is_dir(path)
    }

    fn used_bytes(&self) -> u64 {
        self.store.used_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> FsDriver {
        FsDriver::new(SimClock::new())
    }

    #[test]
    fn create_read_write_delete_cycle() {
        let f = fs();
        let c1 = f.create("home/sekar/a.txt", b"hello").unwrap();
        assert!(c1 > 0);
        let (data, c2) = f.read("home/sekar/a.txt").unwrap();
        assert_eq!(&data[..], b"hello");
        assert!(c2 > 0);
        f.write("home/sekar/a.txt", b"goodbye").unwrap();
        assert_eq!(&f.read("home/sekar/a.txt").unwrap().0[..], b"goodbye");
        f.delete("home/sekar/a.txt").unwrap();
        assert!(!f.exists("home/sekar/a.txt"));
    }

    #[test]
    fn directories_implied_by_objects() {
        let f = fs();
        f.create("data/set1/x.fits", b"..").unwrap();
        assert!(f.is_dir("data"));
        assert!(f.is_dir("data/set1"));
        assert!(!f.is_dir("data/set2"));
        let st = f.stat("data/set1").unwrap();
        assert!(st.is_dir);
    }

    #[test]
    fn explicit_mkdir() {
        let f = fs();
        f.mkdir("staging").unwrap();
        assert!(f.is_dir("staging"));
        assert!(f.exists("staging"));
        assert!(f.mkdir("staging").is_err());
    }

    #[test]
    fn cone_lists_descendants() {
        let f = fs();
        f.create("d/a", b"1").unwrap();
        f.create("d/sub/b", b"2").unwrap();
        f.create("e/c", b"3").unwrap();
        assert_eq!(f.cone("d"), vec!["d/a", "d/sub/b"]);
        assert_eq!(f.cone("d/"), vec!["d/a", "d/sub/b"]);
    }

    #[test]
    fn larger_reads_cost_more() {
        let f = fs();
        f.create("small", &[0u8; 10]).unwrap();
        f.create("big", &[0u8; 10_000_000]).unwrap();
        let (_, c_small) = f.read("small").unwrap();
        let (_, c_big) = f.read("big").unwrap();
        assert!(c_big > c_small);
    }
}

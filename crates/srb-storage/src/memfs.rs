//! The in-memory object store shared by the concrete drivers.
//!
//! A flat `BTreeMap<String, Object>` plus an implicit directory model:
//! `mkdir`-less, a path `a/b/c` implies directories `a` and `a/b`, as in an
//! object store. The file-system driver layers explicit empty-directory
//! support on top. `Bytes` keeps reads copy-free; a sharded `RwLock` keeps
//! 32-thread ingest pools from serializing.

use bytes::Bytes;
use srb_types::sync::{LockRank, RwLock};
use srb_types::{SimClock, SrbError, SrbResult, Timestamp};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug, Clone)]
pub(crate) struct Object {
    pub data: Bytes,
    pub created: Timestamp,
    pub modified: Timestamp,
}

const SHARDS: usize = 16;

/// Thread-safe in-memory path → bytes store.
#[derive(Debug)]
pub struct MemStore {
    shards: Vec<RwLock<BTreeMap<String, Object>>>,
    used: AtomicU64,
    clock: SimClock,
}

fn shard_of(path: &str) -> usize {
    // FNV-1a over the path; stable and cheap.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in path.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h as usize) % SHARDS
}

impl MemStore {
    /// Empty store sharing the grid's virtual clock.
    pub fn new(clock: SimClock) -> Self {
        MemStore {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(LockRank::Storage, "storage.memfs.shard", BTreeMap::new()))
                .collect(),
            used: AtomicU64::new(0),
            clock,
        }
    }

    /// Insert a new object; errors if the path exists.
    pub fn create(&self, path: &str, data: &[u8]) -> SrbResult<()> {
        let now = self.clock.now();
        let mut shard = self.shards[shard_of(path)].write();
        if shard.contains_key(path) {
            return Err(SrbError::AlreadyExists(format!("object '{path}'")));
        }
        self.used.fetch_add(data.len() as u64, Ordering::Relaxed);
        shard.insert(
            path.to_string(),
            Object {
                data: Bytes::copy_from_slice(data),
                created: now,
                modified: now,
            },
        );
        Ok(())
    }

    /// Replace (or create) an object's contents.
    pub fn write(&self, path: &str, data: &[u8]) {
        let now = self.clock.now();
        let mut shard = self.shards[shard_of(path)].write();
        let old_len = shard.get(path).map(|o| o.data.len() as u64).unwrap_or(0);
        // Preserve the original creation time across overwrites.
        let created = shard.get(path).map(|o| o.created).unwrap_or(now);
        shard.insert(
            path.to_string(),
            Object {
                data: Bytes::copy_from_slice(data),
                created,
                modified: now,
            },
        );
        self.used.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.used.fetch_sub(old_len, Ordering::Relaxed);
    }

    /// Append bytes (creating the object if absent).
    pub fn append(&self, path: &str, data: &[u8]) {
        let now = self.clock.now();
        let mut shard = self.shards[shard_of(path)].write();
        match shard.get_mut(path) {
            Some(obj) => {
                let mut buf = Vec::with_capacity(obj.data.len() + data.len());
                buf.extend_from_slice(&obj.data);
                buf.extend_from_slice(data);
                obj.data = Bytes::from(buf);
                obj.modified = now;
            }
            None => {
                shard.insert(
                    path.to_string(),
                    Object {
                        data: Bytes::copy_from_slice(data),
                        created: now,
                        modified: now,
                    },
                );
            }
        }
        self.used.fetch_add(data.len() as u64, Ordering::Relaxed);
    }

    /// Whole-object read (cheap clone of `Bytes`).
    pub fn read(&self, path: &str) -> SrbResult<Bytes> {
        self.shards[shard_of(path)]
            .read()
            .get(path)
            .map(|o| o.data.clone())
            .ok_or_else(|| SrbError::NotFound(format!("object '{path}'")))
    }

    /// Range read with short-read-at-EOF semantics.
    pub fn read_range(&self, path: &str, offset: u64, len: u64) -> SrbResult<Bytes> {
        let data = self.read(path)?;
        let start = (offset as usize).min(data.len());
        let end = (offset.saturating_add(len) as usize).min(data.len());
        Ok(data.slice(start..end))
    }

    /// Remove an object.
    pub fn delete(&self, path: &str) -> SrbResult<u64> {
        let mut shard = self.shards[shard_of(path)].write();
        match shard.remove(path) {
            Some(o) => {
                let n = o.data.len() as u64;
                self.used.fetch_sub(n, Ordering::Relaxed);
                Ok(n)
            }
            None => Err(SrbError::NotFound(format!("object '{path}'"))),
        }
    }

    /// Stat an object.
    pub fn stat(&self, path: &str) -> SrbResult<(u64, Timestamp, Timestamp)> {
        self.shards[shard_of(path)]
            .read()
            .get(path)
            .map(|o| (o.data.len() as u64, o.created, o.modified))
            .ok_or_else(|| SrbError::NotFound(format!("object '{path}'")))
    }

    /// Does the path exist?
    pub fn exists(&self, path: &str) -> bool {
        self.shards[shard_of(path)].read().contains_key(path)
    }

    /// All paths with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let g = shard.read();
            for k in g.keys() {
                if k.starts_with(prefix) {
                    out.push(k.clone());
                }
            }
        }
        out.sort();
        out
    }

    /// Total payload bytes stored.
    pub fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Number of objects stored.
    pub fn object_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> MemStore {
        MemStore::new(SimClock::new())
    }

    #[test]
    fn create_then_read() {
        let s = store();
        s.create("a/b", b"hello").unwrap();
        assert_eq!(&s.read("a/b").unwrap()[..], b"hello");
        assert!(s.exists("a/b"));
        assert!(!s.exists("a"));
        assert_eq!(s.used_bytes(), 5);
    }

    #[test]
    fn create_duplicate_fails() {
        let s = store();
        s.create("x", b"1").unwrap();
        assert!(matches!(
            s.create("x", b"2"),
            Err(SrbError::AlreadyExists(_))
        ));
    }

    #[test]
    fn write_overwrites_and_tracks_usage() {
        let s = store();
        s.create("x", b"12345").unwrap();
        s.write("x", b"67");
        assert_eq!(&s.read("x").unwrap()[..], b"67");
        assert_eq!(s.used_bytes(), 2);
    }

    #[test]
    fn overwrite_preserves_created_time() {
        let clock = SimClock::new();
        let s = MemStore::new(clock.clone());
        s.create("x", b"1").unwrap();
        clock.advance(1_000);
        s.write("x", b"2");
        let (_, created, modified) = s.stat("x").unwrap();
        assert_eq!(created.nanos(), 0);
        assert_eq!(modified.nanos(), 1_000);
    }

    #[test]
    fn append_extends() {
        let s = store();
        s.append("log", b"ab");
        s.append("log", b"cd");
        assert_eq!(&s.read("log").unwrap()[..], b"abcd");
        assert_eq!(s.used_bytes(), 4);
    }

    #[test]
    fn range_reads_clamp_at_eof() {
        let s = store();
        s.create("x", b"0123456789").unwrap();
        assert_eq!(&s.read_range("x", 2, 3).unwrap()[..], b"234");
        assert_eq!(&s.read_range("x", 8, 10).unwrap()[..], b"89");
        assert_eq!(s.read_range("x", 20, 5).unwrap().len(), 0);
    }

    #[test]
    fn delete_frees_space() {
        let s = store();
        s.create("x", b"abc").unwrap();
        assert_eq!(s.delete("x").unwrap(), 3);
        assert_eq!(s.used_bytes(), 0);
        assert!(s.delete("x").is_err());
        assert!(s.read("x").is_err());
    }

    #[test]
    fn list_is_sorted_and_prefix_filtered() {
        let s = store();
        s.create("b/2", b"").unwrap();
        s.create("a/1", b"").unwrap();
        s.create("b/1", b"").unwrap();
        assert_eq!(s.list(""), vec!["a/1", "b/1", "b/2"]);
        assert_eq!(s.list("b/"), vec!["b/1", "b/2"]);
        assert!(s.list("zzz").is_empty());
        assert_eq!(s.object_count(), 3);
    }

    #[test]
    fn concurrent_creates_are_consistent() {
        let s = store();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..200 {
                        s.create(&format!("t{t}/f{i}"), b"xy").unwrap();
                    }
                });
            }
        });
        assert_eq!(s.object_count(), 1600);
        assert_eq!(s.used_bytes(), 3200);
    }
}

//! URL driver — registered web objects.
//!
//! Paper §4, object type 4: "The user can specify any URL including ftp
//! calls and cgi queries. On retrieval, the contents of the URL are
//! retrieved and displayed. The contents of the URL are not stored in the
//! SRB on registration."
//!
//! The driver maps URLs to *providers*: static content, or a generator
//! function invoked per fetch (modelling CGI — content can change between
//! accesses). Fetches pay a WAN-like cost.

use bytes::Bytes;
use srb_types::sync::{LockRank, RwLock};
use srb_types::{SrbError, SrbResult};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Content source behind a URL.
pub enum UrlProvider {
    /// Fixed content.
    Static(Bytes),
    /// Generator invoked at each fetch (CGI-style); receives the fetch
    /// sequence number.
    Dynamic(Box<dyn Fn(u64) -> Vec<u8> + Send + Sync>),
}

/// Registry of reachable URLs, playing the role of "the web".
pub struct UrlDriver {
    providers: RwLock<HashMap<String, UrlProvider>>,
    fetches: AtomicU64,
    /// Fixed fetch latency (defaults to a WAN round trip, 60 ms).
    fetch_latency_ns: u64,
    /// Transfer rate in MB/s (defaults to 5 MB/s).
    mbps: f64,
}

impl Default for UrlDriver {
    fn default() -> Self {
        UrlDriver::new()
    }
}

impl UrlDriver {
    /// Default web model: 60 ms RTT, 5 MB/s.
    pub fn new() -> Self {
        UrlDriver {
            providers: RwLock::new(LockRank::Storage, "storage.url.providers", HashMap::new()),
            fetches: AtomicU64::new(0),
            fetch_latency_ns: 60_000_000,
            mbps: 5.0,
        }
    }

    /// Host static content at a URL.
    pub fn host_static(&self, url: &str, content: impl Into<Bytes>) {
        self.providers
            .write()
            .insert(url.to_string(), UrlProvider::Static(content.into()));
    }

    /// Host a dynamic (CGI-like) endpoint.
    pub fn host_dynamic<F>(&self, url: &str, f: F)
    where
        F: Fn(u64) -> Vec<u8> + Send + Sync + 'static,
    {
        self.providers
            .write()
            .insert(url.to_string(), UrlProvider::Dynamic(Box::new(f)));
    }

    /// Remove a URL from the simulated web (the origin went away).
    pub fn take_down(&self, url: &str) {
        self.providers.write().remove(url);
    }

    /// Fetch a URL's current content; returns (content, virtual cost).
    pub fn fetch(&self, url: &str) -> SrbResult<(Bytes, u64)> {
        let n = self.fetches.fetch_add(1, Ordering::Relaxed);
        let g = self.providers.read();
        let content = match g.get(url) {
            Some(UrlProvider::Static(b)) => b.clone(),
            Some(UrlProvider::Dynamic(f)) => Bytes::from(f(n)),
            None => {
                return Err(SrbError::NotFound(format!("URL '{url}' unreachable")));
            }
        };
        let cost =
            self.fetch_latency_ns + (content.len() as f64 / (self.mbps * 1_000_000.0) * 1e9) as u64;
        Ok((content, cost))
    }

    /// Is a URL currently reachable?
    pub fn reachable(&self, url: &str) -> bool {
        self.providers.read().contains_key(url)
    }

    /// Number of fetches served.
    pub fn fetch_count(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_url_round_trip() {
        let web = UrlDriver::new();
        web.host_static("http://knb.ecoinformatics.org/", &b"<html>KNB</html>"[..]);
        let (content, cost) = web.fetch("http://knb.ecoinformatics.org/").unwrap();
        assert_eq!(&content[..], b"<html>KNB</html>");
        assert!(cost >= 60_000_000);
    }

    #[test]
    fn dynamic_url_changes_between_fetches() {
        let web = UrlDriver::new();
        web.host_dynamic("http://example.org/cgi?count", |n| {
            format!("fetch #{n}").into_bytes()
        });
        let (a, _) = web.fetch("http://example.org/cgi?count").unwrap();
        let (b, _) = web.fetch("http://example.org/cgi?count").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn missing_url_is_not_found() {
        let web = UrlDriver::new();
        assert!(matches!(
            web.fetch("http://gone.example/"),
            Err(SrbError::NotFound(_))
        ));
        assert!(!web.reachable("http://gone.example/"));
    }

    #[test]
    fn take_down_makes_url_unreachable() {
        let web = UrlDriver::new();
        web.host_static("http://x/", &b"up"[..]);
        assert!(web.reachable("http://x/"));
        web.take_down("http://x/");
        assert!(web.fetch("http://x/").is_err());
    }

    #[test]
    fn fetch_count_tracks_all_attempts() {
        let web = UrlDriver::new();
        web.host_static("http://x/", &b"up"[..]);
        web.fetch("http://x/").unwrap();
        let _ = web.fetch("http://missing/");
        assert_eq!(web.fetch_count(), 2);
    }
}

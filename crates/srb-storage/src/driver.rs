//! The uniform storage-driver abstraction.
//!
//! SRB's core idea is that one API fronts every kind of storage system; the
//! server never needs to know whether bytes live in HPSS or a Unix
//! directory. `StorageDriver` is that API. Implementations return the
//! virtual cost (nanoseconds) of each operation so the federation can
//! account for heterogeneous media speeds.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use srb_types::{SrbResult, Timestamp};

/// What family of storage system a driver simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DriverKind {
    /// Disk file system (Unix/NT/Mac in the paper).
    FileSystem,
    /// Tape archive (HPSS/UniTree/ADSM/DMF).
    Archive,
    /// Disk cache in front of slower media.
    Cache,
    /// Relational database storing LOBs and query targets.
    Database,
    /// Remote web object (registered URLs).
    Url,
}

impl DriverKind {
    /// Display name used in MCAT resource listings.
    pub fn name(self) -> &'static str {
        match self {
            DriverKind::FileSystem => "file-system",
            DriverKind::Archive => "archive",
            DriverKind::Cache => "cache",
            DriverKind::Database => "database",
            DriverKind::Url => "url",
        }
    }
}

/// Per-object metadata returned by `stat`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjStat {
    /// Object size in bytes.
    pub size: u64,
    /// Creation time (virtual).
    pub created: Timestamp,
    /// Last modification time (virtual).
    pub modified: Timestamp,
    /// True for directories (file-system drivers only).
    pub is_dir: bool,
}

/// Analytic cost model for a storage medium.
///
/// `fixed_ns` is the per-operation overhead (seek, RPC into the storage
/// system); the per-byte terms model media bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-operation cost in nanoseconds.
    pub fixed_ns: u64,
    /// Read bandwidth in MB/s.
    pub read_mbps: f64,
    /// Write bandwidth in MB/s.
    pub write_mbps: f64,
}

impl CostModel {
    /// A modern-for-2002 local disk (~0.2 ms op, 50 MB/s).
    pub fn disk() -> Self {
        CostModel {
            fixed_ns: 200_000,
            read_mbps: 50.0,
            write_mbps: 40.0,
        }
    }

    /// Tape staging path of an archive (per-op handled separately; this is
    /// the drive streaming rate).
    pub fn tape() -> Self {
        CostModel {
            fixed_ns: 2_000_000,
            read_mbps: 15.0,
            write_mbps: 10.0,
        }
    }

    /// Database engine: higher per-op cost, decent throughput.
    pub fn database() -> Self {
        CostModel {
            fixed_ns: 500_000,
            read_mbps: 30.0,
            write_mbps: 20.0,
        }
    }

    /// Cost of reading `bytes`.
    pub fn read_ns(&self, bytes: u64) -> u64 {
        self.fixed_ns + per_byte_ns(bytes, self.read_mbps)
    }

    /// Cost of writing `bytes`.
    pub fn write_ns(&self, bytes: u64) -> u64 {
        self.fixed_ns + per_byte_ns(bytes, self.write_mbps)
    }
}

fn per_byte_ns(bytes: u64, mbps: f64) -> u64 {
    if mbps <= 0.0 {
        return 0;
    }
    (bytes as f64 / (mbps * 1_000_000.0) * 1e9) as u64
}

/// The uniform API every storage back-end implements.
///
/// Paths are *physical* paths inside the storage system, assigned by the
/// SRB server; they are unrelated to logical SRB paths. Every mutating or
/// data-bearing call returns the virtual cost in nanoseconds.
pub trait StorageDriver: Send + Sync {
    /// Which family this driver belongs to.
    fn kind(&self) -> DriverKind;

    /// Create an object with initial contents. Fails if it already exists.
    fn create(&self, path: &str, data: &[u8]) -> SrbResult<u64>;

    /// Read a whole object.
    fn read(&self, path: &str) -> SrbResult<(Bytes, u64)>;

    /// Read `len` bytes starting at `offset` (short read at EOF).
    fn read_range(&self, path: &str, offset: u64, len: u64) -> SrbResult<(Bytes, u64)>;

    /// Replace an object's contents (creating it if absent).
    fn write(&self, path: &str, data: &[u8]) -> SrbResult<u64>;

    /// Append to an object (creating it if absent).
    fn append(&self, path: &str, data: &[u8]) -> SrbResult<u64>;

    /// Remove an object.
    fn delete(&self, path: &str) -> SrbResult<u64>;

    /// Object metadata.
    fn stat(&self, path: &str) -> SrbResult<ObjStat>;

    /// List object paths under a prefix (recursive), sorted.
    fn list(&self, prefix: &str) -> SrbResult<Vec<String>>;

    /// Cheap existence check.
    fn exists(&self, path: &str) -> bool;

    /// Total bytes currently stored (for capacity reports).
    fn used_bytes(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_scales_with_size() {
        let m = CostModel::disk();
        assert_eq!(m.read_ns(0), m.fixed_ns);
        // 50 MB at 50 MB/s = 1 s.
        assert_eq!(m.read_ns(50_000_000), m.fixed_ns + 1_000_000_000);
        assert!(m.write_ns(1_000_000) > m.read_ns(1_000_000));
    }

    #[test]
    fn tape_slower_than_disk() {
        let bytes = 10_000_000;
        assert!(CostModel::tape().read_ns(bytes) > CostModel::disk().read_ns(bytes));
    }

    #[test]
    fn kind_names() {
        assert_eq!(DriverKind::Archive.name(), "archive");
        assert_eq!(DriverKind::FileSystem.name(), "file-system");
    }
}

//! Archive driver — the HPSS/UniTree/ADSM stand-in.
//!
//! The behaviour that matters to SRB (and that motivates containers) is the
//! *staging cliff*: an object whose only copy is on tape pays a large fixed
//! latency (mount + robot + position) plus a slow streaming rate before the
//! first byte arrives; once staged to the archive's internal disk cache it
//! reads at disk speed. Writes land on the disk cache and migrate to tape
//! asynchronously (here: when [`ArchiveDriver::migrate_all`] runs, or
//! implicitly "eventually" — experiments call `purge_staged` to force the
//! cold-tape state).

use crate::driver::{CostModel, DriverKind, ObjStat, StorageDriver};
use crate::memfs::MemStore;
use bytes::Bytes;
use srb_types::sync::{LockRank, RwLock};
use srb_types::{SimClock, SrbResult};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Simulated hierarchical tape archive.
pub struct ArchiveDriver {
    store: MemStore,
    /// Objects currently staged on the archive's internal disk cache.
    staged: RwLock<BTreeSet<String>>,
    disk: CostModel,
    tape: CostModel,
    /// Fixed latency to mount/position tape for one staging request.
    stage_latency_ns: u64,
    stage_count: AtomicU64,
}

impl ArchiveDriver {
    /// Default stage latency: 2 s (mount + robot + position).
    pub const DEFAULT_STAGE_LATENCY_NS: u64 = 2_000_000_000;

    /// New archive with default cost models.
    pub fn new(clock: SimClock) -> Self {
        ArchiveDriver::with_costs(
            clock,
            CostModel::disk(),
            CostModel::tape(),
            Self::DEFAULT_STAGE_LATENCY_NS,
        )
    }

    /// New archive with explicit cost models.
    pub fn with_costs(
        clock: SimClock,
        disk: CostModel,
        tape: CostModel,
        stage_latency_ns: u64,
    ) -> Self {
        ArchiveDriver {
            store: MemStore::new(clock),
            staged: RwLock::new(LockRank::Storage, "storage.archive.staged", BTreeSet::new()),
            disk,
            tape,
            stage_latency_ns,
            stage_count: AtomicU64::new(0),
        }
    }

    /// Is the object currently on the disk cache (no staging needed)?
    pub fn is_staged(&self, path: &str) -> bool {
        self.staged.read().contains(path)
    }

    /// Drop every staged copy, forcing the next read of each object to pay
    /// the tape staging cost. Experiments use this to model a cold archive.
    pub fn purge_staged(&self) {
        self.staged.write().clear();
    }

    /// Migrate all dirty cache-resident data to tape. Returns the virtual
    /// cost of the tape writes. (Data is always durable in this simulation;
    /// the cost is what's being modelled.)
    pub fn migrate_all(&self) -> u64 {
        let staged = self.staged.read();
        let mut cost = 0;
        for path in staged.iter() {
            if let Ok((size, _, _)) = self.store.stat(path) {
                cost += self.tape.write_ns(size);
            }
        }
        cost
    }

    /// How many staging operations (tape recalls) have happened.
    pub fn stage_count(&self) -> u64 {
        self.stage_count.load(Ordering::Relaxed)
    }

    /// Cost of staging an object of `size` bytes from tape.
    fn stage_cost(&self, size: u64) -> u64 {
        self.stage_latency_ns + self.tape.read_ns(size)
    }

    /// Ensure the object is staged; returns the staging cost (0 if already
    /// staged).
    fn ensure_staged(&self, path: &str) -> SrbResult<u64> {
        if self.is_staged(path) {
            return Ok(0);
        }
        let (size, _, _) = self.store.stat(path)?;
        // Double-checked under the write lock so concurrent readers stage
        // an object only once.
        let mut staged = self.staged.write();
        if staged.contains(path) {
            return Ok(0);
        }
        staged.insert(path.to_string());
        self.stage_count.fetch_add(1, Ordering::Relaxed);
        Ok(self.stage_cost(size))
    }
}

impl StorageDriver for ArchiveDriver {
    fn kind(&self) -> DriverKind {
        DriverKind::Archive
    }

    fn create(&self, path: &str, data: &[u8]) -> SrbResult<u64> {
        self.store.create(path, data)?;
        // Fresh writes land on the disk cache: staged until purged.
        self.staged.write().insert(path.to_string());
        Ok(self.disk.write_ns(data.len() as u64))
    }

    fn read(&self, path: &str) -> SrbResult<(Bytes, u64)> {
        let stage = self.ensure_staged(path)?;
        let data = self.store.read(path)?;
        let cost = stage + self.disk.read_ns(data.len() as u64);
        Ok((data, cost))
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> SrbResult<(Bytes, u64)> {
        // Tape archives stage whole objects; the range read itself is then
        // served from the disk cache.
        let stage = self.ensure_staged(path)?;
        let data = self.store.read_range(path, offset, len)?;
        let cost = stage + self.disk.read_ns(data.len() as u64);
        Ok((data, cost))
    }

    fn write(&self, path: &str, data: &[u8]) -> SrbResult<u64> {
        self.store.write(path, data);
        self.staged.write().insert(path.to_string());
        Ok(self.disk.write_ns(data.len() as u64))
    }

    fn append(&self, path: &str, data: &[u8]) -> SrbResult<u64> {
        // Appending to a tape-resident object first stages it.
        let stage = if self.store.exists(path) {
            self.ensure_staged(path)?
        } else {
            0
        };
        self.store.append(path, data);
        self.staged.write().insert(path.to_string());
        Ok(stage + self.disk.write_ns(data.len() as u64))
    }

    fn delete(&self, path: &str) -> SrbResult<u64> {
        self.store.delete(path)?;
        self.staged.write().remove(path);
        Ok(self.disk.fixed_ns)
    }

    fn stat(&self, path: &str) -> SrbResult<ObjStat> {
        let (size, created, modified) = self.store.stat(path)?;
        Ok(ObjStat {
            size,
            created,
            modified,
            is_dir: false,
        })
    }

    fn list(&self, prefix: &str) -> SrbResult<Vec<String>> {
        Ok(self.store.list(prefix))
    }

    fn exists(&self, path: &str) -> bool {
        self.store.exists(path)
    }

    fn used_bytes(&self) -> u64 {
        self.store.used_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn archive() -> ArchiveDriver {
        ArchiveDriver::new(SimClock::new())
    }

    #[test]
    fn fresh_writes_are_staged() {
        let a = archive();
        a.create("t/file", b"data").unwrap();
        assert!(a.is_staged("t/file"));
        // Reading a staged object is cheap: no staging latency.
        let (_, cost) = a.read("t/file").unwrap();
        assert!(cost < ArchiveDriver::DEFAULT_STAGE_LATENCY_NS);
    }

    #[test]
    fn cold_read_pays_staging_cliff() {
        let a = archive();
        a.create("t/file", b"data").unwrap();
        a.purge_staged();
        assert!(!a.is_staged("t/file"));
        let (_, cold) = a.read("t/file").unwrap();
        assert!(cold >= ArchiveDriver::DEFAULT_STAGE_LATENCY_NS);
        // Second read is warm.
        let (_, warm) = a.read("t/file").unwrap();
        assert!(warm < cold / 10);
        assert_eq!(a.stage_count(), 1);
    }

    #[test]
    fn range_read_stages_whole_object() {
        let a = archive();
        a.create("big", &[7u8; 1_000_000]).unwrap();
        a.purge_staged();
        let (data, cost) = a.read_range("big", 0, 10).unwrap();
        assert_eq!(data.len(), 10);
        assert!(cost >= ArchiveDriver::DEFAULT_STAGE_LATENCY_NS);
        assert!(a.is_staged("big"));
    }

    #[test]
    fn concurrent_cold_reads_stage_once() {
        let a = archive();
        a.create("x", &[1u8; 1000]).unwrap();
        a.purge_staged();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    a.read("x").unwrap();
                });
            }
        });
        assert_eq!(a.stage_count(), 1);
    }

    #[test]
    fn append_to_cold_object_stages_first() {
        let a = archive();
        a.create("x", b"abc").unwrap();
        a.purge_staged();
        let cost = a.append("x", b"def").unwrap();
        assert!(cost >= ArchiveDriver::DEFAULT_STAGE_LATENCY_NS);
        assert_eq!(&a.read("x").unwrap().0[..], b"abcdef");
    }

    #[test]
    fn migrate_all_charges_tape_writes() {
        let a = archive();
        a.create("x", &[0u8; 1_000_000]).unwrap();
        a.create("y", &[0u8; 2_000_000]).unwrap();
        let cost = a.migrate_all();
        assert!(cost > 0);
        // Cost scales with data volume.
        let a2 = archive();
        a2.create("x", &[0u8; 1_000_000]).unwrap();
        assert!(a2.migrate_all() < cost);
    }

    #[test]
    fn delete_clears_staging_state() {
        let a = archive();
        a.create("x", b"1").unwrap();
        a.delete("x").unwrap();
        assert!(!a.is_staged("x"));
        assert!(!a.exists("x"));
    }
}

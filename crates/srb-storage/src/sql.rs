//! Micro-SQL engine.
//!
//! Registered SQL objects (paper §4, object type 3) execute "any query
//! supported by the underlying database, including table joins, functions,
//! stored-procedures, sub-queries and union queries". We implement the
//! working core of that: `CREATE TABLE`, `INSERT`, `DELETE`, `DROP`, and
//! `SELECT` with projections, multi-table joins (comma syntax), conjunctive
//! `WHERE` (the same eight operators as the MCAT), `ORDER BY`, `LIMIT`, and
//! `UNION`. Queries run at *retrieval* time, so results change as tables
//! change — exactly the property the paper highlights.

use serde::{Deserialize, Serialize};
use srb_types::sync::{LockRank, RwLock};
use srb_types::{CompareOp, MetaValue, SrbError, SrbResult};
use std::collections::HashMap;
use std::fmt;

/// A SQL value: NULL, number or text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Text literal.
    Text(String),
}

impl SqlValue {
    /// Render as the display string used in templates.
    pub fn render(&self) -> String {
        match self {
            SqlValue::Null => "NULL".to_string(),
            SqlValue::Int(i) => i.to_string(),
            SqlValue::Float(f) => format!("{f}"),
            SqlValue::Text(s) => s.clone(),
        }
    }

    fn to_meta(&self) -> MetaValue {
        match self {
            SqlValue::Null => MetaValue::Text(String::new()),
            SqlValue::Int(i) => MetaValue::Int(*i),
            SqlValue::Float(f) => MetaValue::Float(*f),
            SqlValue::Text(s) => MetaValue::parse(s),
        }
    }

    fn compare(&self, op: CompareOp, other: &SqlValue) -> bool {
        // NULL never compares true, as in SQL three-valued logic.
        if matches!(self, SqlValue::Null) || matches!(other, SqlValue::Null) {
            return false;
        }
        op.eval(&self.to_meta(), &other.to_meta())
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Result of a `SELECT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<SqlValue>>,
}

#[derive(Debug, Clone)]
struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<SqlValue>>,
}

/// A set of named tables guarded by one RwLock (queries are read-mostly).
#[derive(Debug)]
pub struct SqlEngine {
    tables: RwLock<HashMap<String, Table>>,
}

impl Default for SqlEngine {
    fn default() -> Self {
        SqlEngine {
            tables: RwLock::new(LockRank::Storage, "storage.sql.tables", HashMap::new()),
        }
    }
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(String),
    Punct(char),
    Op(String),
}

fn lex(sql: &str) -> SrbResult<Vec<Tok>> {
    let mut toks = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '\'' {
            let mut s = String::new();
            i += 1;
            loop {
                if i >= chars.len() {
                    return Err(SrbError::Parse("unterminated string literal".into()));
                }
                if chars[i] == '\'' {
                    // Doubled quote = escaped quote.
                    if i + 1 < chars.len() && chars[i + 1] == '\'' {
                        s.push('\'');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                s.push(chars[i]);
                i += 1;
            }
            toks.push(Tok::Str(s));
        } else if c.is_ascii_digit()
            || (c == '-'
                && i + 1 < chars.len()
                && chars[i + 1].is_ascii_digit()
                && matches!(toks.last(), None | Some(Tok::Punct(_)) | Some(Tok::Op(_))))
        {
            let mut s = String::new();
            s.push(c);
            i += 1;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                s.push(chars[i]);
                i += 1;
            }
            toks.push(Tok::Num(s));
        } else if c.is_alphabetic() || c == '_' {
            let mut s = String::new();
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                s.push(chars[i]);
                i += 1;
            }
            toks.push(Tok::Ident(s));
        } else if "<>=!".contains(c) {
            let mut s = String::new();
            s.push(c);
            i += 1;
            if i < chars.len() && "<>=".contains(chars[i]) {
                s.push(chars[i]);
                i += 1;
            }
            toks.push(Tok::Op(s));
        } else if "(),*;".contains(c) {
            toks.push(Tok::Punct(c));
            i += 1;
        } else {
            return Err(SrbError::Parse(format!("unexpected character '{c}'")));
        }
    }
    Ok(toks)
}

// --------------------------------------------------------------- parser --

#[derive(Debug, Clone)]
enum Operand {
    Column(String),
    Literal(SqlValue),
}

#[derive(Debug, Clone)]
struct Condition {
    lhs: Operand,
    op: CompareOp,
    rhs: Operand,
}

#[derive(Debug, Clone)]
struct Select {
    columns: Vec<String>, // empty = *
    tables: Vec<String>,
    conditions: Vec<Condition>,
    order_by: Option<(String, bool)>, // (column, descending)
    limit: Option<usize>,
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn new(toks: Vec<Tok>) -> Self {
        Parser { toks, pos: 0 }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> SrbResult<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| SrbError::Parse("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> SrbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SrbError::Parse(format!("expected '{kw}'")))
        }
    }

    fn expect_punct(&mut self, p: char) -> SrbResult<()> {
        match self.next()? {
            Tok::Punct(c) if c == p => Ok(()),
            t => Err(SrbError::Parse(format!("expected '{p}', got {t:?}"))),
        }
    }

    fn ident(&mut self) -> SrbResult<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            t => Err(SrbError::Parse(format!("expected identifier, got {t:?}"))),
        }
    }

    fn literal(&mut self) -> SrbResult<SqlValue> {
        match self.next()? {
            Tok::Str(s) => Ok(SqlValue::Text(s)),
            Tok::Num(s) => {
                if let Ok(i) = s.parse::<i64>() {
                    Ok(SqlValue::Int(i))
                } else {
                    s.parse::<f64>()
                        .map(SqlValue::Float)
                        .map_err(|_| SrbError::Parse(format!("bad number '{s}'")))
                }
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("null") => Ok(SqlValue::Null),
            t => Err(SrbError::Parse(format!("expected literal, got {t:?}"))),
        }
    }

    fn operand(&mut self) -> SrbResult<Operand> {
        match self.peek() {
            Some(Tok::Ident(s)) if !s.eq_ignore_ascii_case("null") => {
                let s = s.clone();
                self.pos += 1;
                Ok(Operand::Column(s))
            }
            _ => Ok(Operand::Literal(self.literal()?)),
        }
    }

    fn compare_op(&mut self) -> SrbResult<CompareOp> {
        match self.next()? {
            Tok::Op(s) => CompareOp::parse(&s),
            Tok::Ident(s) if s.eq_ignore_ascii_case("like") => Ok(CompareOp::Like),
            Tok::Ident(s) if s.eq_ignore_ascii_case("not") => {
                self.expect_kw("like")?;
                Ok(CompareOp::NotLike)
            }
            t => Err(SrbError::Parse(format!("expected operator, got {t:?}"))),
        }
    }

    fn select(&mut self) -> SrbResult<Select> {
        self.expect_kw("select")?;
        let mut columns = Vec::new();
        if matches!(self.peek(), Some(Tok::Punct('*'))) {
            self.pos += 1;
        } else {
            loop {
                columns.push(self.ident()?);
                if matches!(self.peek(), Some(Tok::Punct(','))) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect_kw("from")?;
        let mut tables = vec![self.ident()?];
        while matches!(self.peek(), Some(Tok::Punct(','))) {
            self.pos += 1;
            tables.push(self.ident()?);
        }
        let mut conditions = Vec::new();
        if self.eat_kw("where") {
            loop {
                let lhs = self.operand()?;
                let op = self.compare_op()?;
                let rhs = self.operand()?;
                conditions.push(Condition { lhs, op, rhs });
                if !self.eat_kw("and") {
                    break;
                }
            }
        }
        let mut order_by = None;
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            let col = self.ident()?;
            let desc = self.eat_kw("desc");
            if !desc {
                self.eat_kw("asc");
            }
            order_by = Some((col, desc));
        }
        let mut limit = None;
        if self.eat_kw("limit") {
            match self.next()? {
                Tok::Num(s) => {
                    limit = Some(
                        s.parse::<usize>()
                            .map_err(|_| SrbError::Parse(format!("bad LIMIT '{s}'")))?,
                    )
                }
                t => return Err(SrbError::Parse(format!("expected LIMIT count, got {t:?}"))),
            }
        }
        Ok(Select {
            columns,
            tables,
            conditions,
            order_by,
            limit,
        })
    }
}

// ------------------------------------------------------------- executor --

impl SqlEngine {
    /// Empty engine.
    pub fn new() -> Self {
        SqlEngine::default()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.read().len()
    }

    /// Rows in a table (0 if absent) — used by capacity reports.
    pub fn row_count(&self, table: &str) -> usize {
        self.tables
            .read()
            .get(&table.to_ascii_lowercase())
            .map(|t| t.rows.len())
            .unwrap_or(0)
    }

    /// Dump every table as `(name, columns, rows)` for grid-state
    /// snapshots.
    pub fn dump_tables(&self) -> Vec<(String, Vec<String>, Vec<Vec<SqlValue>>)> {
        let g = self.tables.read();
        let mut out: Vec<_> = g
            .iter()
            .map(|(name, t)| (name.clone(), t.columns.clone(), t.rows.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Recreate tables from a dump (replacing same-named tables).
    pub fn restore_tables(&self, tables: Vec<(String, Vec<String>, Vec<Vec<SqlValue>>)>) {
        let mut g = self.tables.write();
        for (name, columns, rows) in tables {
            g.insert(name.to_ascii_lowercase(), Table { columns, rows });
        }
    }

    /// Execute any statement; SELECT/UNION return rows, DDL/DML return an
    /// empty result.
    pub fn execute(&self, sql: &str) -> SrbResult<QueryResult> {
        let trimmed = sql.trim().trim_end_matches(';');
        let head = trimmed
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_lowercase();
        match head.as_str() {
            "create" => self.exec_create(trimmed),
            "insert" => self.exec_insert(trimmed),
            "delete" => self.exec_delete(trimmed),
            "drop" => self.exec_drop(trimmed),
            "select" => self.exec_select_union(trimmed),
            "" => Err(SrbError::Parse("empty statement".into())),
            other => Err(SrbError::Parse(format!("unsupported statement '{other}'"))),
        }
    }

    fn exec_create(&self, sql: &str) -> SrbResult<QueryResult> {
        let mut p = Parser::new(lex(sql)?);
        p.expect_kw("create")?;
        p.expect_kw("table")?;
        let name = p.ident()?.to_ascii_lowercase();
        p.expect_punct('(')?;
        let mut columns = Vec::new();
        loop {
            columns.push(p.ident()?.to_ascii_lowercase());
            // Swallow an optional type name (e.g. `title TEXT`).
            if matches!(p.peek(), Some(Tok::Ident(_))) {
                p.pos += 1;
            }
            match p.next()? {
                Tok::Punct(',') => continue,
                Tok::Punct(')') => break,
                t => return Err(SrbError::Parse(format!("bad column list at {t:?}"))),
            }
        }
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(SrbError::AlreadyExists(format!("table '{name}'")));
        }
        tables.insert(
            name,
            Table {
                columns,
                rows: Vec::new(),
            },
        );
        Ok(empty_result())
    }

    fn exec_insert(&self, sql: &str) -> SrbResult<QueryResult> {
        let mut p = Parser::new(lex(sql)?);
        p.expect_kw("insert")?;
        p.expect_kw("into")?;
        let name = p.ident()?.to_ascii_lowercase();
        p.expect_kw("values")?;
        let mut new_rows = Vec::new();
        loop {
            p.expect_punct('(')?;
            let mut row = Vec::new();
            loop {
                row.push(p.literal()?);
                match p.next()? {
                    Tok::Punct(',') => continue,
                    Tok::Punct(')') => break,
                    t => return Err(SrbError::Parse(format!("bad VALUES list at {t:?}"))),
                }
            }
            new_rows.push(row);
            if matches!(p.peek(), Some(Tok::Punct(','))) {
                p.pos += 1;
            } else {
                break;
            }
        }
        let mut tables = self.tables.write();
        let table = tables
            .get_mut(&name)
            .ok_or_else(|| SrbError::NotFound(format!("table '{name}'")))?;
        for row in &new_rows {
            if row.len() != table.columns.len() {
                return Err(SrbError::Invalid(format!(
                    "expected {} values, got {}",
                    table.columns.len(),
                    row.len()
                )));
            }
        }
        table.rows.extend(new_rows);
        Ok(empty_result())
    }

    fn exec_delete(&self, sql: &str) -> SrbResult<QueryResult> {
        let mut p = Parser::new(lex(sql)?);
        p.expect_kw("delete")?;
        p.expect_kw("from")?;
        let name = p.ident()?.to_ascii_lowercase();
        let mut conditions = Vec::new();
        if p.eat_kw("where") {
            loop {
                let lhs = p.operand()?;
                let op = p.compare_op()?;
                let rhs = p.operand()?;
                conditions.push(Condition { lhs, op, rhs });
                if !p.eat_kw("and") {
                    break;
                }
            }
        }
        let mut tables = self.tables.write();
        let table = tables
            .get_mut(&name)
            .ok_or_else(|| SrbError::NotFound(format!("table '{name}'")))?;
        let cols = table.columns.clone();
        let tname = name.clone();
        table.rows.retain(|row| {
            !conditions.iter().all(|c| {
                eval_condition(c, &[(tname.as_str(), cols.as_slice(), row)]).unwrap_or(false)
            })
        });
        Ok(empty_result())
    }

    fn exec_drop(&self, sql: &str) -> SrbResult<QueryResult> {
        let mut p = Parser::new(lex(sql)?);
        p.expect_kw("drop")?;
        p.expect_kw("table")?;
        let name = p.ident()?.to_ascii_lowercase();
        if self.tables.write().remove(&name).is_none() {
            return Err(SrbError::NotFound(format!("table '{name}'")));
        }
        Ok(empty_result())
    }

    fn exec_select_union(&self, sql: &str) -> SrbResult<QueryResult> {
        // Split on top-level UNION keywords.
        let parts = split_union(sql);
        let mut combined: Option<QueryResult> = None;
        for part in parts {
            let r = self.exec_select(&part)?;
            match &mut combined {
                None => combined = Some(r),
                Some(acc) => {
                    if acc.columns.len() != r.columns.len() {
                        return Err(SrbError::Invalid(
                            "UNION arms have different column counts".into(),
                        ));
                    }
                    // UNION deduplicates.
                    for row in r.rows {
                        if !acc.rows.contains(&row) {
                            acc.rows.push(row);
                        }
                    }
                }
            }
        }
        combined.ok_or_else(|| SrbError::Invalid("UNION with no arms".into()))
    }

    fn exec_select(&self, sql: &str) -> SrbResult<QueryResult> {
        let mut p = Parser::new(lex(sql)?);
        let sel = p.select()?;
        let tables = self.tables.read();
        let mut bound: Vec<(&str, &Table)> = Vec::new();
        for t in &sel.tables {
            let key = t.to_ascii_lowercase();
            let table = tables
                .get(&key)
                .ok_or_else(|| SrbError::NotFound(format!("table '{t}'")))?;
            // Borrow the table name from the Select, which outlives the loop.
            bound.push((t.as_str(), table));
        }

        // Build the cross product lazily with index counters.
        let mut out_rows: Vec<Vec<SqlValue>> = Vec::new();
        let sizes: Vec<usize> = bound.iter().map(|(_, t)| t.rows.len()).collect();
        let mut idx = vec![0usize; bound.len()];
        let total: usize = sizes.iter().product();
        for _ in 0..total {
            let frame: Vec<(&str, &[String], &Vec<SqlValue>)> = bound
                .iter()
                .zip(idx.iter())
                .map(|((name, t), &i)| (*name, t.columns.as_slice(), &t.rows[i]))
                .collect();
            let keep = sel
                .conditions
                .iter()
                .map(|c| eval_condition(c, &frame))
                .collect::<SrbResult<Vec<bool>>>()?
                .into_iter()
                .all(|b| b);
            if keep {
                out_rows.push(project(&sel, &frame)?);
            }
            // Advance the odometer.
            for k in (0..idx.len()).rev() {
                idx[k] += 1;
                if idx[k] < sizes[k] {
                    break;
                }
                idx[k] = 0;
            }
        }

        let columns = output_columns(&sel, &bound);
        let mut result = QueryResult {
            columns,
            rows: out_rows,
        };
        if let Some((col, desc)) = &sel.order_by {
            let ci = result
                .columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(col) || c.ends_with(&format!(".{col}")))
                .ok_or_else(|| SrbError::NotFound(format!("ORDER BY column '{col}'")))?;
            result.rows.sort_by(|a, b| {
                let o = a[ci].to_meta().index_cmp(&b[ci].to_meta());
                if *desc {
                    o.reverse()
                } else {
                    o
                }
            });
        }
        if let Some(n) = sel.limit {
            result.rows.truncate(n);
        }
        Ok(result)
    }
}

fn empty_result() -> QueryResult {
    QueryResult {
        columns: Vec::new(),
        rows: Vec::new(),
    }
}

/// Split a query on top-level (not-in-parens) UNION keywords.
fn split_union(sql: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut cur = String::new();
    let mut i = 0;
    let bytes = sql.as_bytes();
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_str {
            cur.push(c);
            if c == '\'' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        match c {
            '\'' => {
                in_str = true;
                cur.push(c);
                i += 1;
            }
            '(' => {
                depth += 1;
                cur.push(c);
                i += 1;
            }
            ')' => {
                depth -= 1;
                cur.push(c);
                i += 1;
            }
            'u' | 'U' if depth == 0 => {
                let rest = &sql[i..];
                let is_union = rest.len() >= 5
                    && rest[..5].eq_ignore_ascii_case("union")
                    && rest[5..]
                        .chars()
                        .next()
                        .map(|n| n.is_whitespace())
                        .unwrap_or(false)
                    && cur
                        .chars()
                        .last()
                        .map(|p| p.is_whitespace())
                        .unwrap_or(false);
                if is_union {
                    parts.push(cur.clone());
                    cur.clear();
                    i += 5;
                } else {
                    cur.push(c);
                    i += 1;
                }
            }
            _ => {
                cur.push(c);
                i += 1;
            }
        }
    }
    parts.push(cur);
    parts
}

/// Resolve a (possibly qualified) column against the joined frame.
fn lookup<'a>(
    name: &str,
    frame: &[(&str, &[String], &'a Vec<SqlValue>)],
) -> SrbResult<&'a SqlValue> {
    if let Some((tbl, col)) = name.split_once('.') {
        for (tname, cols, row) in frame {
            if tname.eq_ignore_ascii_case(tbl) {
                if let Some(ci) = cols.iter().position(|c| c.eq_ignore_ascii_case(col)) {
                    return Ok(&row[ci]);
                }
            }
        }
        return Err(SrbError::NotFound(format!("column '{name}'")));
    }
    let mut found = None;
    for (_, cols, row) in frame {
        if let Some(ci) = cols.iter().position(|c| c.eq_ignore_ascii_case(name)) {
            if found.is_some() {
                return Err(SrbError::Invalid(format!("ambiguous column '{name}'")));
            }
            found = Some(&row[ci]);
        }
    }
    found.ok_or_else(|| SrbError::NotFound(format!("column '{name}'")))
}

fn eval_condition(c: &Condition, frame: &[(&str, &[String], &Vec<SqlValue>)]) -> SrbResult<bool> {
    let lhs = match &c.lhs {
        Operand::Column(n) => lookup(n, frame)?.clone(),
        Operand::Literal(v) => v.clone(),
    };
    let rhs = match &c.rhs {
        Operand::Column(n) => lookup(n, frame)?.clone(),
        Operand::Literal(v) => v.clone(),
    };
    Ok(lhs.compare(c.op, &rhs))
}

fn project(sel: &Select, frame: &[(&str, &[String], &Vec<SqlValue>)]) -> SrbResult<Vec<SqlValue>> {
    if sel.columns.is_empty() {
        let mut row = Vec::new();
        for (_, _, r) in frame {
            row.extend(r.iter().cloned());
        }
        Ok(row)
    } else {
        sel.columns
            .iter()
            .map(|c| lookup(c, frame).cloned())
            .collect()
    }
}

fn output_columns(sel: &Select, bound: &[(&str, &Table)]) -> Vec<String> {
    if sel.columns.is_empty() {
        let mut cols = Vec::new();
        for (tname, t) in bound {
            for c in &t.columns {
                if bound.len() > 1 {
                    cols.push(format!("{tname}.{c}"));
                } else {
                    cols.push(c.clone());
                }
            }
        }
        cols
    } else {
        sel.columns.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with_birds() -> SqlEngine {
        let e = SqlEngine::new();
        e.execute("CREATE TABLE birds (name, family, wingspan)")
            .unwrap();
        e.execute(
            "INSERT INTO birds VALUES ('condor','vulture',290), \
             ('sparrow','passerine',20), ('eagle','accipitrid',200)",
        )
        .unwrap();
        e
    }

    #[test]
    fn create_insert_select_star() {
        let e = engine_with_birds();
        let r = e.execute("SELECT * FROM birds").unwrap();
        assert_eq!(r.columns, vec!["name", "family", "wingspan"]);
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn projection_and_where() {
        let e = engine_with_birds();
        let r = e
            .execute("SELECT name FROM birds WHERE wingspan > 100")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        let names: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
        assert!(names.contains(&"condor".to_string()));
        assert!(names.contains(&"eagle".to_string()));
    }

    #[test]
    fn like_and_not_like() {
        let e = engine_with_birds();
        let r = e
            .execute("SELECT name FROM birds WHERE name LIKE '%o%'")
            .unwrap();
        assert_eq!(r.rows.len(), 2); // condor, sparrow
        let r = e
            .execute("SELECT name FROM birds WHERE name NOT LIKE '%o%'")
            .unwrap();
        assert_eq!(r.rows.len(), 1); // eagle
    }

    #[test]
    fn order_by_and_limit() {
        let e = engine_with_birds();
        let r = e
            .execute("SELECT name, wingspan FROM birds ORDER BY wingspan DESC LIMIT 2")
            .unwrap();
        assert_eq!(r.rows[0][0].render(), "condor");
        assert_eq!(r.rows[1][0].render(), "eagle");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn join_two_tables() {
        let e = engine_with_birds();
        e.execute("CREATE TABLE habitats (family, region)").unwrap();
        e.execute("INSERT INTO habitats VALUES ('vulture','andes'), ('passerine','global')")
            .unwrap();
        let r = e
            .execute(
                "SELECT birds.name, habitats.region FROM birds, habitats \
                 WHERE birds.family = habitats.family",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.columns, vec!["birds.name", "habitats.region"]);
    }

    #[test]
    fn union_deduplicates() {
        let e = engine_with_birds();
        let r = e
            .execute(
                "SELECT name FROM birds WHERE wingspan > 100 \
                 UNION SELECT name FROM birds WHERE family = 'vulture'",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2); // condor appears once
    }

    #[test]
    fn delete_with_where() {
        let e = engine_with_birds();
        e.execute("DELETE FROM birds WHERE wingspan < 100").unwrap();
        assert_eq!(e.row_count("birds"), 2);
        e.execute("DELETE FROM birds").unwrap();
        assert_eq!(e.row_count("birds"), 0);
    }

    #[test]
    fn drop_table() {
        let e = engine_with_birds();
        e.execute("DROP TABLE birds").unwrap();
        assert!(e.execute("SELECT * FROM birds").is_err());
        assert!(e.execute("DROP TABLE birds").is_err());
    }

    #[test]
    fn string_escaping() {
        let e = SqlEngine::new();
        e.execute("CREATE TABLE t (v)").unwrap();
        e.execute("INSERT INTO t VALUES ('it''s here')").unwrap();
        let r = e.execute("SELECT v FROM t").unwrap();
        assert_eq!(r.rows[0][0].render(), "it's here");
    }

    #[test]
    fn null_never_matches() {
        let e = SqlEngine::new();
        e.execute("CREATE TABLE t (a, b)").unwrap();
        e.execute("INSERT INTO t VALUES (NULL, 1), (2, 2)").unwrap();
        let r = e.execute("SELECT a FROM t WHERE a = a").unwrap();
        // NULL = NULL is not true in SQL.
        assert_eq!(r.rows.len(), 1);
        let r = e.execute("SELECT a FROM t WHERE a <> 99").unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let e = SqlEngine::new();
        e.execute("CREATE TABLE t (a, b)").unwrap();
        assert!(e.execute("INSERT INTO t VALUES (1)").is_err());
    }

    #[test]
    fn typed_column_declarations_accepted() {
        let e = SqlEngine::new();
        e.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        e.execute("INSERT INTO t VALUES (1, 'x')").unwrap();
        assert_eq!(e.row_count("t"), 1);
    }

    #[test]
    fn negative_numbers() {
        let e = SqlEngine::new();
        e.execute("CREATE TABLE t (a)").unwrap();
        e.execute("INSERT INTO t VALUES (-5), (5)").unwrap();
        let r = e.execute("SELECT a FROM t WHERE a < 0").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], SqlValue::Int(-5));
    }

    #[test]
    fn parse_errors_are_reported() {
        let e = SqlEngine::new();
        assert!(matches!(
            e.execute("SELEC * FROM t"),
            Err(SrbError::Parse(_))
        ));
        assert!(e.execute("").is_err());
        assert!(e.execute("SELECT FROM").is_err());
        assert!(e.execute("INSERT INTO missing VALUES (1)").is_err());
    }

    #[test]
    fn unqualified_ambiguous_column_rejected() {
        let e = SqlEngine::new();
        e.execute("CREATE TABLE t1 (x)").unwrap();
        e.execute("CREATE TABLE t2 (x)").unwrap();
        e.execute("INSERT INTO t1 VALUES (1)").unwrap();
        e.execute("INSERT INTO t2 VALUES (1)").unwrap();
        assert!(e.execute("SELECT x FROM t1, t2").is_err());
        assert!(e.execute("SELECT t1.x FROM t1, t2").is_ok());
    }

    #[test]
    fn results_reflect_current_table_state() {
        // The paper: "the query is executed at retrieval time … the answer
        // to the query can vary with time."
        let e = engine_with_birds();
        let q = "SELECT name FROM birds WHERE wingspan > 100";
        assert_eq!(e.execute(q).unwrap().rows.len(), 2);
        e.execute("INSERT INTO birds VALUES ('albatross','diomedeid',340)")
            .unwrap();
        assert_eq!(e.execute(q).unwrap().rows.len(), 3);
    }
}

//! Cache driver — a capacity-bounded disk cache with LRU purge and pins.
//!
//! The paper: "Pin operation makes sure that a SRB object does not get
//! deleted from a particular resource. This is useful for pinning a file in
//! a cache resource from being purged by SRB when performing cache
//! management. An expiry time is also associated with pins."
//!
//! The cache evicts least-recently-used, *unpinned* entries when inserting
//! would exceed capacity. Pins carry a (virtual-time) expiry; an expired pin
//! no longer protects its object.

use crate::driver::{CostModel, DriverKind, ObjStat, StorageDriver};
use bytes::Bytes;
use srb_types::sync::{LockRank, Mutex};
use srb_types::{SimClock, SrbError, SrbResult, Timestamp};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

struct Entry {
    data: Bytes,
    created: Timestamp,
    modified: Timestamp,
    last_used: u64,
    pinned_until: Option<Timestamp>,
}

/// LRU disk cache with pin support.
pub struct CacheDriver {
    entries: Mutex<HashMap<String, Entry>>,
    capacity: u64,
    used: AtomicU64,
    cost: CostModel,
    clock: SimClock,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheDriver {
    /// New cache with `capacity` bytes and the standard disk cost model.
    pub fn new(clock: SimClock, capacity: u64) -> Self {
        CacheDriver {
            entries: Mutex::new(LockRank::Storage, "storage.cache.entries", HashMap::new()),
            capacity,
            used: AtomicU64::new(0),
            cost: CostModel::disk(),
            clock,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn touch(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Pin an object until `expiry` (virtual time). Errors if absent.
    pub fn pin(&self, path: &str, expiry: Timestamp) -> SrbResult<()> {
        let mut g = self.entries.lock();
        match g.get_mut(path) {
            Some(e) => {
                e.pinned_until = Some(expiry);
                Ok(())
            }
            None => Err(SrbError::NotFound(format!("cache object '{path}'"))),
        }
    }

    /// Remove a pin.
    pub fn unpin(&self, path: &str) -> SrbResult<()> {
        let mut g = self.entries.lock();
        match g.get_mut(path) {
            Some(e) => {
                e.pinned_until = None;
                Ok(())
            }
            None => Err(SrbError::NotFound(format!("cache object '{path}'"))),
        }
    }

    /// Is the object currently pinned (pin present and not expired)?
    pub fn is_pinned(&self, path: &str) -> bool {
        let now = self.clock.now();
        self.entries
            .lock()
            .get(path)
            .and_then(|e| e.pinned_until)
            .map(|t| t > now)
            .unwrap_or(false)
    }

    fn evict_for(&self, needed: u64, g: &mut HashMap<String, Entry>) -> SrbResult<()> {
        let now = self.clock.now();
        while self.used.load(Ordering::Relaxed) + needed > self.capacity {
            // Find the least-recently-used unpinned entry.
            let victim = g
                .iter()
                .filter(|(_, e)| e.pinned_until.map(|t| t <= now).unwrap_or(true))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim.and_then(|k| g.remove(&k)) {
                Some(e) => {
                    self.used.fetch_sub(e.data.len() as u64, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    return Err(SrbError::ResourceUnavailable(
                        "cache full of pinned objects".into(),
                    ))
                }
            }
        }
        Ok(())
    }

    fn insert(&self, path: &str, data: &[u8], overwrite: bool) -> SrbResult<u64> {
        let now = self.clock.now();
        let mut g = self.entries.lock();
        if data.len() as u64 > self.capacity {
            return Err(SrbError::ResourceUnavailable(format!(
                "object of {} bytes exceeds cache capacity {}",
                data.len(),
                self.capacity
            )));
        }
        if let Some(old) = g.get(path) {
            if !overwrite {
                return Err(SrbError::AlreadyExists(format!("cache object '{path}'")));
            }
            let old_len = old.data.len() as u64;
            self.used.fetch_sub(old_len, Ordering::Relaxed);
            let created = old.created;
            let pinned = old.pinned_until;
            self.evict_for(data.len() as u64, &mut g)?;
            let tick = self.touch();
            g.insert(
                path.to_string(),
                Entry {
                    data: Bytes::copy_from_slice(data),
                    created,
                    modified: now,
                    last_used: tick,
                    pinned_until: pinned,
                },
            );
        } else {
            self.evict_for(data.len() as u64, &mut g)?;
            let tick = self.touch();
            g.insert(
                path.to_string(),
                Entry {
                    data: Bytes::copy_from_slice(data),
                    created: now,
                    modified: now,
                    last_used: tick,
                    pinned_until: None,
                },
            );
        }
        self.used.fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(self.cost.write_ns(data.len() as u64))
    }

    /// Cache hits observed so far.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (reads of objects not present).
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Objects evicted by the purger.
    pub fn eviction_count(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

impl StorageDriver for CacheDriver {
    fn kind(&self) -> DriverKind {
        DriverKind::Cache
    }

    fn create(&self, path: &str, data: &[u8]) -> SrbResult<u64> {
        self.insert(path, data, false)
    }

    fn read(&self, path: &str) -> SrbResult<(Bytes, u64)> {
        let mut g = self.entries.lock();
        match g.get_mut(path) {
            Some(e) => {
                e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                let cost = self.cost.read_ns(e.data.len() as u64);
                Ok((e.data.clone(), cost))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Err(SrbError::NotFound(format!("cache object '{path}'")))
            }
        }
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> SrbResult<(Bytes, u64)> {
        let (data, _) = self.read(path)?;
        let start = (offset as usize).min(data.len());
        let end = (offset.saturating_add(len) as usize).min(data.len());
        let slice = data.slice(start..end);
        let cost = self.cost.read_ns(slice.len() as u64);
        Ok((slice, cost))
    }

    fn write(&self, path: &str, data: &[u8]) -> SrbResult<u64> {
        self.insert(path, data, true)
    }

    fn append(&self, path: &str, data: &[u8]) -> SrbResult<u64> {
        let existing = {
            let g = self.entries.lock();
            g.get(path).map(|e| e.data.clone())
        };
        let mut buf = Vec::new();
        if let Some(e) = existing {
            buf.extend_from_slice(&e);
        }
        buf.extend_from_slice(data);
        self.insert(path, &buf, true)
    }

    fn delete(&self, path: &str) -> SrbResult<u64> {
        let mut g = self.entries.lock();
        match g.remove(path) {
            Some(e) => {
                self.used.fetch_sub(e.data.len() as u64, Ordering::Relaxed);
                Ok(self.cost.fixed_ns)
            }
            None => Err(SrbError::NotFound(format!("cache object '{path}'"))),
        }
    }

    fn stat(&self, path: &str) -> SrbResult<ObjStat> {
        let g = self.entries.lock();
        g.get(path)
            .map(|e| ObjStat {
                size: e.data.len() as u64,
                created: e.created,
                modified: e.modified,
                is_dir: false,
            })
            .ok_or_else(|| SrbError::NotFound(format!("cache object '{path}'")))
    }

    fn list(&self, prefix: &str) -> SrbResult<Vec<String>> {
        let g = self.entries.lock();
        let mut v: Vec<String> = g
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        Ok(v)
    }

    fn exists(&self, path: &str) -> bool {
        self.entries.lock().contains_key(path)
    }

    fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: u64) -> (CacheDriver, SimClock) {
        let clock = SimClock::new();
        (CacheDriver::new(clock.clone(), cap), clock)
    }

    #[test]
    fn lru_evicts_oldest_unpinned() {
        let (c, _) = cache(10);
        c.create("a", &[0u8; 4]).unwrap();
        c.create("b", &[0u8; 4]).unwrap();
        // Touch "a" so "b" becomes LRU.
        c.read("a").unwrap();
        c.create("c", &[0u8; 4]).unwrap();
        assert!(c.exists("a"));
        assert!(!c.exists("b"));
        assert!(c.exists("c"));
        assert_eq!(c.eviction_count(), 1);
    }

    #[test]
    fn pinned_objects_survive_purge() {
        let (c, clock) = cache(10);
        c.create("keep", &[0u8; 4]).unwrap();
        c.create("drop", &[0u8; 4]).unwrap();
        c.pin("keep", clock.now().plus_secs(3600)).unwrap();
        // "keep" is the LRU entry but must not be evicted.
        c.create("new", &[0u8; 4]).unwrap();
        assert!(c.exists("keep"));
        assert!(!c.exists("drop"));
    }

    #[test]
    fn expired_pins_no_longer_protect() {
        let (c, clock) = cache(8);
        c.create("old", &[0u8; 4]).unwrap();
        c.pin("old", clock.now().plus_secs(10)).unwrap();
        assert!(c.is_pinned("old"));
        clock.advance(11_000_000_000);
        assert!(!c.is_pinned("old"));
        c.create("new", &[0u8; 8]).unwrap();
        assert!(!c.exists("old"));
    }

    #[test]
    fn cache_full_of_pins_rejects_insert() {
        let (c, clock) = cache(8);
        c.create("a", &[0u8; 8]).unwrap();
        c.pin("a", clock.now().plus_secs(3600)).unwrap();
        let err = c.create("b", &[0u8; 4]).unwrap_err();
        assert!(matches!(err, SrbError::ResourceUnavailable(_)));
    }

    #[test]
    fn oversized_object_rejected() {
        let (c, _) = cache(4);
        assert!(c.create("big", &[0u8; 5]).is_err());
    }

    #[test]
    fn hit_and_miss_counters() {
        let (c, _) = cache(100);
        c.create("x", b"1").unwrap();
        c.read("x").unwrap();
        c.read("x").unwrap();
        let _ = c.read("absent");
        assert_eq!(c.hit_count(), 2);
        assert_eq!(c.miss_count(), 1);
    }

    #[test]
    fn unpin_restores_evictability() {
        let (c, clock) = cache(8);
        c.create("a", &[0u8; 8]).unwrap();
        c.pin("a", clock.now().plus_secs(3600)).unwrap();
        c.unpin("a").unwrap();
        c.create("b", &[0u8; 8]).unwrap();
        assert!(!c.exists("a"));
        assert!(c.exists("b"));
    }

    #[test]
    fn append_and_overwrite_update_usage() {
        let (c, _) = cache(100);
        c.create("x", b"ab").unwrap();
        c.append("x", b"cd").unwrap();
        assert_eq!(&c.read("x").unwrap().0[..], b"abcd");
        assert_eq!(c.used_bytes(), 4);
        c.write("x", b"e").unwrap();
        assert_eq!(c.used_bytes(), 1);
    }

    #[test]
    fn overwrite_preserves_pin() {
        let (c, clock) = cache(100);
        c.create("x", b"1").unwrap();
        c.pin("x", clock.now().plus_secs(100)).unwrap();
        c.write("x", b"2").unwrap();
        assert!(c.is_pinned("x"));
    }
}

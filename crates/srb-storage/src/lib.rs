#![warn(missing_docs)]
//! Heterogeneous storage substrate for the data grid.
//!
//! The SRB paper brokers "archival storage systems (such as HPSS, DMF,
//! ADSM, UniTree), file systems (Unix, NTFS, Linux), and databases (Oracle,
//! Sybase, DB2)". This crate provides the equivalent substrate: a uniform
//! [`StorageDriver`] trait and four families of simulated back-ends, each
//! with its own latency profile (see DESIGN.md §2 for the substitution
//! argument):
//!
//! * [`fs::FsDriver`] — a POSIX-like in-memory file system,
//! * [`archive::ArchiveDriver`] — a tape archive with mount + staging costs,
//! * [`cache::CacheDriver`] — a capacity-bounded disk cache with LRU purge
//!   and the pin semantics MySRB exposes,
//! * [`db::DbDriver`] — a micro relational engine (the target of registered
//!   SQL objects) that also stores LOBs,
//! * [`url::UrlDriver`] — remote web objects fetched at access time.
//!
//! [`logdev::LogDevice`] sits alongside the drivers: a crash-aware
//! sequential log medium backing the MCAT's write-ahead log, with the same
//! virtual-cost discipline.
//!
//! All drivers are `Send + Sync`; costs are returned in virtual nanoseconds
//! so callers can charge them to the simulation clock or fold them into
//! receipts.

pub mod archive;
pub mod cache;
pub mod db;
pub mod driver;
pub mod fs;
pub mod logdev;
pub mod memfs;
pub mod sql;
pub mod url;

pub use archive::ArchiveDriver;
pub use cache::CacheDriver;
pub use db::DbDriver;
pub use driver::{CostModel, DriverKind, ObjStat, StorageDriver};
pub use fs::FsDriver;
pub use logdev::LogDevice;
pub use sql::{SqlEngine, SqlValue};
pub use url::UrlDriver;

//! Parallel replica fan-out: fault injection, partial-failure commit
//! semantics, and the bulk-ingest pipeline.

use bytes::Bytes;
use srb_core::{FanoutMode, Grid, GridBuilder, IngestOptions, SrbConnection};
use srb_mcat::{AccessSpec, Replica, ReplicaStatus};
use srb_types::{ResourceId, ServerId, SrbError, Triplet};

/// One site, one server, three file-system resources behind a
/// three-member logical resource, plus a standalone target.
struct Fixture {
    grid: Grid,
    srv: ServerId,
}

fn grid3() -> Fixture {
    let mut gb = GridBuilder::new();
    let site = gb.site("lab");
    let srv = gb.server("srb-lab", site);
    gb.fs_resource("fs1", srv)
        .fs_resource("fs2", srv)
        .fs_resource("fs3", srv)
        .fs_resource("extra", srv)
        .logical_resource("log3", &["fs1", "fs2", "fs3"]);
    let grid = gb.build();
    grid.register_user("u", "lab", "pw").unwrap();
    Fixture { grid, srv }
}

fn connect(f: &Fixture) -> SrbConnection<'_> {
    SrbConnection::connect(&f.grid, f.srv, "u", "lab", "pw").unwrap()
}

fn replicas(f: &Fixture, name: &str) -> Vec<Replica> {
    f.grid
        .mcat
        .datasets
        .dump()
        .into_iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("dataset '{name}' not in catalog"))
        .replicas
}

fn status_on(reps: &[Replica], rid: ResourceId) -> ReplicaStatus {
    reps.iter()
        .find(|r| r.spec.resource() == Some(rid))
        .unwrap_or_else(|| panic!("no replica on {rid:?}"))
        .status
}

/// Satellite 2: a three-replica logical ingest with one member down
/// succeeds, marks exactly that replica stale, and `sync_replicas`
/// repairs it once the resource is back.
#[test]
fn ingest_with_member_down_marks_exactly_that_replica_stale_then_sync_repairs() {
    let f = grid3();
    let conn = connect(&f);
    assert_eq!(conn.fanout_mode(), FanoutMode::Parallel);
    let fs2 = f.grid.resource_id("fs2").unwrap();

    f.grid.fail_resource("fs2").unwrap();
    conn.ingest("/home/u/f", b"payload", IngestOptions::to_resource("log3"))
        .unwrap();

    let reps = replicas(&f, "f");
    assert_eq!(reps.len(), 3);
    for r in &reps {
        if r.spec.resource() == Some(fs2) {
            assert_eq!(r.status, ReplicaStatus::Stale);
            assert!(r.checksum.is_none());
        } else {
            assert_eq!(r.status, ReplicaStatus::UpToDate);
            assert!(r.checksum.is_some());
        }
        // Even the stale row records the intended length.
        assert_eq!(r.size, 7);
    }
    let (data, _) = conn.read("/home/u/f").unwrap();
    assert_eq!(&data[..], b"payload");

    f.grid.restore_resource("fs2").unwrap();
    let (repaired, _) = conn.sync_replicas("/home/u/f").unwrap();
    assert_eq!(repaired, 1);
    assert!(replicas(&f, "f")
        .iter()
        .all(|r| r.status == ReplicaStatus::UpToDate && r.checksum.is_some()));

    // The repaired copy really holds the bytes: knock out the others.
    f.grid.fail_resource("fs1").unwrap();
    f.grid.fail_resource("fs3").unwrap();
    let (data, _) = conn.read("/home/u/f").unwrap();
    assert_eq!(&data[..], b"payload");
}

/// Same fault-injection path under the sequential ablation, exercising a
/// write instead of an ingest.
#[test]
fn write_with_member_down_marks_stale_then_sync_repairs_sequential_mode() {
    let f = grid3();
    let mut conn = connect(&f);
    conn.set_fanout_mode(FanoutMode::Sequential);
    let fs3 = f.grid.resource_id("fs3").unwrap();

    conn.ingest("/home/u/w", b"v1", IngestOptions::to_resource("log3"))
        .unwrap();
    f.grid.fail_resource("fs3").unwrap();
    conn.write("/home/u/w", b"v2-longer").unwrap();

    let reps = replicas(&f, "w");
    assert_eq!(status_on(&reps, fs3), ReplicaStatus::Stale);
    assert_eq!(
        reps.iter()
            .filter(|r| r.status == ReplicaStatus::UpToDate)
            .count(),
        2
    );

    f.grid.restore_resource("fs3").unwrap();
    let (repaired, _) = conn.sync_replicas("/home/u/w").unwrap();
    assert_eq!(repaired, 1);
    f.grid.fail_resource("fs1").unwrap();
    f.grid.fail_resource("fs2").unwrap();
    let (data, _) = conn.read("/home/u/w").unwrap();
    assert_eq!(&data[..], b"v2-longer");
}

/// Satellite 1 regression: a fatal leg error must not abandon the
/// staleness bookkeeping for replicas that *did* take the write. The
/// surviving replica is committed up-to-date (new bytes readable) and the
/// unreachable one is marked stale before the error propagates.
#[test]
fn write_commits_surviving_replicas_before_reporting_fatal_leg() {
    let f = grid3();
    let conn = connect(&f);
    conn.ingest("/home/u/g", b"old", IngestOptions::to_resource("fs1"))
        .unwrap();
    let id = f
        .grid
        .mcat
        .datasets
        .dump()
        .into_iter()
        .find(|d| d.name == "g")
        .unwrap()
        .id;
    // Graft a replica whose resource does not exist: its leg fails with a
    // non-retryable NotFound, not a mere resource-down.
    f.grid
        .mcat
        .datasets
        .add_replica(
            &f.grid.mcat.ids,
            id,
            AccessSpec::Stored {
                resource: ResourceId(9999),
                phys_path: "/nowhere/g".into(),
            },
            3,
            None,
            f.grid.clock.now(),
        )
        .unwrap();

    let err = conn.write("/home/u/g", b"new-bytes").unwrap_err();
    assert!(!err.is_retryable(), "expected a fatal error, got {err:?}");

    let fs1 = f.grid.resource_id("fs1").unwrap();
    let reps = replicas(&f, "g");
    assert_eq!(status_on(&reps, fs1), ReplicaStatus::UpToDate);
    assert_eq!(status_on(&reps, ResourceId(9999)), ReplicaStatus::Stale);
    // The committed write is visible despite the Err return.
    let (data, _) = conn.read("/home/u/g").unwrap();
    assert_eq!(&data[..], b"new-bytes");
}

/// A write that reaches no replica at all must leave the catalog
/// untouched: the old rows stay up-to-date and the old bytes readable.
#[test]
fn write_with_all_replicas_down_commits_nothing() {
    let f = grid3();
    let conn = connect(&f);
    conn.ingest("/home/u/h", b"keep", IngestOptions::to_resource("log3"))
        .unwrap();
    for r in ["fs1", "fs2", "fs3"] {
        f.grid.fail_resource(r).unwrap();
    }
    assert!(conn.write("/home/u/h", b"lost").is_err());
    assert!(replicas(&f, "h")
        .iter()
        .all(|r| r.status == ReplicaStatus::UpToDate));
    for r in ["fs1", "fs2", "fs3"] {
        f.grid.restore_resource(r).unwrap();
    }
    let (data, _) = conn.read("/home/u/h").unwrap();
    assert_eq!(&data[..], b"keep");
}

// ------------------------------------------------------------- bulk ingest --

#[test]
fn ingest_bulk_creates_batch_with_replicas_and_metadata() {
    let f = grid3();
    let conn = connect(&f);
    let files: Vec<(String, Bytes)> = (0..20)
        .map(|i| {
            (
                format!("b{i:02}"),
                Bytes::from(format!("payload-{i}").into_bytes()),
            )
        })
        .collect();
    let opts = IngestOptions::to_resource("log3")
        .with_type("ascii text")
        .with_metadata(Triplet::new("batch", "night-42", ""));
    let (ids, receipt) = conn.ingest_bulk("/home/u", files, &opts).unwrap();

    assert_eq!(ids.len(), 20);
    assert!(
        ids.windows(2).all(|w| w[0].0 < w[1].0),
        "ids in batch order"
    );
    assert!(receipt.sim_ns > 0);
    assert!(receipt.bytes > 0);
    for i in 0..20 {
        let path = format!("/home/u/b{i:02}");
        let (data, _) = conn.read(&path).unwrap();
        assert_eq!(&data[..], format!("payload-{i}").as_bytes());
        let (ty, _, nrep, _) = conn.stat(&path).unwrap();
        assert_eq!(ty, "ascii text");
        assert_eq!(nrep, 3);
        let rows = conn.metadata(&path).unwrap();
        assert!(rows.iter().any(|m| m.triplet.name == "batch"));
    }
}

#[test]
fn ingest_bulk_rejects_duplicates_without_touching_the_catalog() {
    let f = grid3();
    let conn = connect(&f);
    conn.ingest("/home/u/dup", b"x", IngestOptions::to_resource("fs1"))
        .unwrap();
    let before = f.grid.mcat.datasets.dump().len();

    // An existing name anywhere in the batch aborts the whole batch.
    let files = vec![
        ("fresh".to_string(), Bytes::from(&b"a"[..])),
        ("dup".to_string(), Bytes::from(&b"b"[..])),
    ];
    let err = conn
        .ingest_bulk("/home/u", files, &IngestOptions::to_resource("fs1"))
        .unwrap_err();
    assert!(matches!(err, SrbError::AlreadyExists(_)));
    assert_eq!(f.grid.mcat.datasets.dump().len(), before);

    // So does a name repeated within the batch itself.
    let files = vec![
        ("twice".to_string(), Bytes::from(&b"a"[..])),
        ("twice".to_string(), Bytes::from(&b"b"[..])),
    ];
    let err = conn
        .ingest_bulk("/home/u", files, &IngestOptions::to_resource("fs1"))
        .unwrap_err();
    assert!(matches!(err, SrbError::AlreadyExists(_)));
    assert_eq!(f.grid.mcat.datasets.dump().len(), before);
}

#[test]
fn ingest_bulk_with_member_down_marks_stale_rows_per_file() {
    let f = grid3();
    let conn = connect(&f);
    let fs2 = f.grid.resource_id("fs2").unwrap();
    f.grid.fail_resource("fs2").unwrap();

    let files: Vec<(String, Bytes)> = (0..5)
        .map(|i| (format!("s{i}"), Bytes::from(vec![i as u8; 64])))
        .collect();
    conn.ingest_bulk("/home/u", files, &IngestOptions::to_resource("log3"))
        .unwrap();

    for i in 0..5 {
        let reps = replicas(&f, &format!("s{i}"));
        assert_eq!(reps.len(), 3);
        assert_eq!(status_on(&reps, fs2), ReplicaStatus::Stale);
        assert_eq!(
            reps.iter()
                .filter(|r| r.status == ReplicaStatus::Stale)
                .count(),
            1
        );
    }

    f.grid.restore_resource("fs2").unwrap();
    for i in 0..5 {
        let (repaired, _) = conn.sync_replicas(&format!("/home/u/s{i}")).unwrap();
        assert_eq!(repaired, 1);
    }
}

#[test]
fn ingest_bulk_into_container_is_unsupported() {
    let f = grid3();
    let conn = connect(&f);
    let err = conn
        .ingest_bulk(
            "/home/u",
            vec![("c0".to_string(), Bytes::from(&b"x"[..]))],
            &IngestOptions::into_container("ct"),
        )
        .unwrap_err();
    assert!(matches!(err, SrbError::Unsupported(_)));
}

//! The five registered-object types (paper §4) end to end.

mod common;

use common::{connect, grid};
use srb_core::{IngestOptions, ObjectContent, RegisterSpec};
use srb_mcat::Template;
use srb_types::SrbError;

#[test]
fn type1_registered_file_readable_but_not_controlled() {
    let f = grid();
    let conn = connect(&f, "sekar");
    // A file exists outside SRB's control on unix-ncsa.
    let ncsa = f.grid.resource_id("unix-ncsa").unwrap();
    let driver = f.grid.driver(ncsa).unwrap();
    driver
        .driver()
        .create("outside/legacy.dat", b"pre-existing")
        .unwrap();
    conn.register(
        "/home/sekar/legacy",
        RegisterSpec::File {
            resource: "unix-ncsa".into(),
            phys_path: "outside/legacy.dat".into(),
        },
        IngestOptions::default(),
    )
    .unwrap();
    let (data, _) = conn.read("/home/sekar/legacy").unwrap();
    assert_eq!(&data[..], b"pre-existing");
    // The paper: content may change without SRB knowing.
    driver
        .driver()
        .write("outside/legacy.dat", b"changed!")
        .unwrap();
    assert_eq!(&conn.read("/home/sekar/legacy").unwrap().0[..], b"changed!");
    // Writing through SRB is refused (not under SRB control).
    assert!(conn.write("/home/sekar/legacy", b"x").is_err());
    // Deleting unlinks the pointer without touching the physical file.
    conn.delete("/home/sekar/legacy", None).unwrap();
    assert!(driver.driver().exists("outside/legacy.dat"));
}

#[test]
fn registering_a_missing_file_fails() {
    let f = grid();
    let conn = connect(&f, "sekar");
    assert!(matches!(
        conn.register(
            "/home/sekar/ghost",
            RegisterSpec::File {
                resource: "unix-ncsa".into(),
                phys_path: "no/such/file".into(),
            },
            IngestOptions::default(),
        ),
        Err(SrbError::NotFound(_))
    ));
}

#[test]
fn type2_shadow_directory_exposes_cone_read_only() {
    let f = grid();
    let conn = connect(&f, "sekar");
    let ncsa = f.grid.resource_id("unix-ncsa").unwrap();
    let driver = f.grid.driver(ncsa).unwrap();
    driver.driver().create("survey/img1.fits", b"AAAA").unwrap();
    driver
        .driver()
        .create("survey/sub/img2.fits", b"BBBB")
        .unwrap();
    conn.register(
        "/home/sekar/survey",
        RegisterSpec::Directory {
            resource: "unix-ncsa".into(),
            dir_path: "survey".into(),
        },
        IngestOptions::default(),
    )
    .unwrap();
    // Opening the shadow dir lists the cone of files under it.
    let (content, _) = conn.open("/home/sekar/survey", &[]).unwrap();
    match content {
        ObjectContent::Listing(files) => {
            assert_eq!(files, vec!["survey/img1.fits", "survey/sub/img2.fits"]);
        }
        other => panic!("expected listing, got {other:?}"),
    }
    // Individual cone files are readable through the shadow object.
    let (data, _) = conn
        .read_from_directory("/home/sekar/survey", "sub/img2.fits")
        .unwrap();
    assert_eq!(&data[..], b"BBBB");
    // Shadow directories are not replicable (paper: "files inside a
    // registered directory is not replicable").
    assert!(conn.replicate("/home/sekar/survey", "unix-sdsc").is_err());
}

#[test]
fn type3_sql_object_runs_at_retrieval_time() {
    let f = grid();
    let conn = connect(&f, "sekar");
    let db_rid = f.grid.resource_id("oracle-dlib").unwrap();
    let driver = f.grid.driver(db_rid).unwrap();
    let db = driver.as_db().unwrap();
    db.engine()
        .execute("CREATE TABLE art (title, artist)")
        .unwrap();
    db.engine()
        .execute("INSERT INTO art VALUES ('Composition','Mondrian')")
        .unwrap();
    conn.register(
        "/home/sekar/artworks",
        RegisterSpec::Sql {
            resource: "oracle-dlib".into(),
            sql: "SELECT title, artist FROM art".into(),
            partial: false,
            template: Template::HtmlRel,
        },
        IngestOptions::default(),
    )
    .unwrap();
    let (content, _) = conn.open("/home/sekar/artworks", &[]).unwrap();
    let ObjectContent::Table { result, rendered } = content else {
        panic!("expected table");
    };
    assert_eq!(result.rows.len(), 1);
    assert!(rendered.contains("<td>Mondrian</td>"));
    // "The answer to the query can vary with time."
    db.engine()
        .execute("INSERT INTO art VALUES ('Water Lilies','Monet')")
        .unwrap();
    let (content, _) = conn.open("/home/sekar/artworks", &[]).unwrap();
    let ObjectContent::Table { result, .. } = content else {
        panic!()
    };
    assert_eq!(result.rows.len(), 2);
    // Deleting the SQL object leaves the underlying table intact.
    conn.delete("/home/sekar/artworks", None).unwrap();
    assert_eq!(db.engine().row_count("art"), 2);
}

#[test]
fn partial_sql_completed_at_retrieval() {
    let f = grid();
    let conn = connect(&f, "sekar");
    let db_rid = f.grid.resource_id("oracle-dlib").unwrap();
    let driver = f.grid.driver(db_rid).unwrap();
    let db = driver.as_db().unwrap();
    db.engine().execute("CREATE TABLE n (v)").unwrap();
    db.engine()
        .execute("INSERT INTO n VALUES (1), (5), (10)")
        .unwrap();
    conn.register(
        "/home/sekar/bign",
        RegisterSpec::Sql {
            resource: "oracle-dlib".into(),
            sql: "SELECT v FROM n WHERE".into(),
            partial: true,
            template: Template::XmlRel,
        },
        IngestOptions::default(),
    )
    .unwrap();
    let (content, _) = conn
        .open("/home/sekar/bign", &["v > 3".to_string()])
        .unwrap();
    let ObjectContent::Table { result, rendered } = content else {
        panic!()
    };
    assert_eq!(result.rows.len(), 2);
    assert!(rendered.starts_with("<?xml"));
}

#[test]
fn non_select_sql_rejected_at_registration() {
    let f = grid();
    let conn = connect(&f, "sekar");
    assert!(matches!(
        conn.register(
            "/home/sekar/evil",
            RegisterSpec::Sql {
                resource: "oracle-dlib".into(),
                sql: "DROP TABLE art".into(),
                partial: false,
                template: Template::HtmlRel,
            },
            IngestOptions::default(),
        ),
        Err(SrbError::Invalid(_))
    ));
}

#[test]
fn sql_with_tlang_style_sheet() {
    let f = grid();
    let conn = connect(&f, "sekar");
    let db_rid = f.grid.resource_id("oracle-dlib").unwrap();
    let driver = f.grid.driver(db_rid).unwrap();
    let db = driver.as_db().unwrap();
    db.engine().execute("CREATE TABLE b (name, span)").unwrap();
    db.engine()
        .execute("INSERT INTO b VALUES ('condor', 290)")
        .unwrap();
    // The style-sheet itself lives in SRB, as the paper specifies.
    conn.ingest(
        "/home/sekar/style.t",
        b"header \"== birds ==\"\nrow \"{name}: {span} cm\"\n",
        IngestOptions::to_resource("unix-sdsc").with_type("t-language"),
    )
    .unwrap();
    let sheet_ds = f
        .grid
        .mcat
        .resolve_dataset(&srb_types::LogicalPath::parse("/home/sekar/style.t").unwrap())
        .unwrap();
    conn.register(
        "/home/sekar/styled",
        RegisterSpec::Sql {
            resource: "oracle-dlib".into(),
            sql: "SELECT name, span FROM b".into(),
            partial: false,
            template: Template::StyleSheet(sheet_ds),
        },
        IngestOptions::default(),
    )
    .unwrap();
    let (content, _) = conn.open("/home/sekar/styled", &[]).unwrap();
    let ObjectContent::Table { rendered, .. } = content else {
        panic!()
    };
    assert_eq!(rendered, "== birds ==\ncondor: 290 cm\n");
}

#[test]
fn type4_url_object_fetches_live_content() {
    let f = grid();
    let conn = connect(&f, "sekar");
    f.grid
        .web
        .host_static("http://knb.ecoinformatics.org/", &b"<html>KNB</html>"[..]);
    conn.register(
        "/home/sekar/knb",
        RegisterSpec::Url {
            url: "http://knb.ecoinformatics.org/".into(),
        },
        IngestOptions::default(),
    )
    .unwrap();
    let (data, receipt) = conn.read("/home/sekar/knb").unwrap();
    assert_eq!(&data[..], b"<html>KNB</html>");
    assert!(receipt.sim_ns >= 60_000_000, "URL fetch pays web latency");
    // Content is not stored: taking down the origin breaks retrieval.
    f.grid.web.take_down("http://knb.ecoinformatics.org/");
    assert!(conn.read("/home/sekar/knb").is_err());
    // Deleting removes the URL and metadata, not the (gone) content.
    conn.delete("/home/sekar/knb", None).unwrap();
}

#[test]
fn type5_method_object_runs_proxy_command() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.register(
        "/home/sekar/ps",
        RegisterSpec::Method {
            name: "srbps".into(),
            is_function: false,
            default_args: vec![],
        },
        IngestOptions::default(),
    )
    .unwrap();
    let (data, _) = conn.read("/home/sekar/ps").unwrap();
    assert!(String::from_utf8_lossy(&data).contains("srbMaster"));
    // Command-line parameters at invocation.
    let (content, _) = conn.open("/home/sekar/ps", &["-ef".to_string()]).unwrap();
    assert!(content.display().contains("flags: -ef"));
}

#[test]
fn method_object_proxy_function() {
    let f = grid();
    // The admin installs a proxy function on the CalTech server.
    f.grid
        .server(f.caltech)
        .unwrap()
        .proxies
        .install_function("checksum16", |args| {
            let s: u32 = args.iter().flat_map(|a| a.bytes()).map(|b| b as u32).sum();
            format!("{:04x}", s & 0xffff).into_bytes()
        });
    let conn = connect(&f, "sekar");
    conn.register(
        "/home/sekar/cksum",
        RegisterSpec::Method {
            name: "checksum16".into(),
            is_function: true,
            default_args: vec!["seed".into()],
        },
        IngestOptions::default(),
    )
    .unwrap();
    let (data, receipt) = conn.read("/home/sekar/cksum").unwrap();
    assert_eq!(data.len(), 4);
    // The function lives on a remote server: a hop was charged.
    assert!(receipt.hops >= 1);
}

#[test]
fn register_replicate_pairs_equivalent_queries() {
    let f = grid();
    let conn = connect(&f, "sekar");
    let db_rid = f.grid.resource_id("oracle-dlib").unwrap();
    let driver = f.grid.driver(db_rid).unwrap();
    let db = driver.as_db().unwrap();
    db.engine().execute("CREATE TABLE dlib1 (x)").unwrap();
    db.engine().execute("INSERT INTO dlib1 VALUES (1)").unwrap();
    conn.register(
        "/home/sekar/q",
        RegisterSpec::Sql {
            resource: "oracle-dlib".into(),
            sql: "SELECT x FROM dlib1".into(),
            partial: false,
            template: Template::HtmlRel,
        },
        IngestOptions::default(),
    )
    .unwrap();
    // Register an XML-rendering twin as a replica — the paper's example of
    // "semantically equal" copies. SRB does not check equality.
    conn.register_replica(
        "/home/sekar/q",
        RegisterSpec::Sql {
            resource: "oracle-dlib".into(),
            sql: "SELECT x FROM dlib1".into(),
            partial: false,
            template: Template::XmlRel,
        },
    )
    .unwrap();
    let (_, _, nrep, _) = conn.stat("/home/sekar/q").unwrap();
    assert_eq!(nrep, 2);
}

#[test]
fn ingest_replica_tiff_and_gif() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/image",
        b"TIFF-bytes",
        IngestOptions::to_resource("unix-sdsc").with_type("tiff image"),
    )
    .unwrap();
    conn.ingest_replica("/home/sekar/image", b"GIF-bytes", "unix-ncsa")
        .unwrap();
    let (_, _, nrep, _) = conn.stat("/home/sekar/image").unwrap();
    assert_eq!(nrep, 2);
    // Failover serves the other (semantically equal, syntactically
    // different) replica.
    f.grid.fail_resource("unix-sdsc").unwrap();
    let (data, _) = conn.read("/home/sekar/image").unwrap();
    assert_eq!(&data[..], b"GIF-bytes");
}

#[test]
fn copy_of_sql_and_url_objects_unsupported() {
    let f = grid();
    let conn = connect(&f, "sekar");
    f.grid.web.host_static("http://x/", &b"x"[..]);
    conn.register(
        "/home/sekar/u",
        RegisterSpec::Url {
            url: "http://x/".into(),
        },
        IngestOptions::default(),
    )
    .unwrap();
    assert!(matches!(
        conn.copy("/home/sekar/u", "/home/sekar/u2", "unix-sdsc"),
        Err(SrbError::Unsupported(_))
    ));
}

#[test]
fn type1_registered_lob_in_database() {
    // Paper type 1 includes "a file that can exist … as a LOB in a
    // database system".
    let f = grid();
    let conn = connect(&f, "sekar");
    let db_rid = f.grid.resource_id("oracle-dlib").unwrap();
    let driver = f.grid.driver(db_rid).unwrap();
    driver
        .driver()
        .create("lobs/scan-0001", b"binary LOB payload")
        .unwrap();
    conn.register(
        "/home/sekar/scan",
        RegisterSpec::File {
            resource: "oracle-dlib".into(),
            phys_path: "lobs/scan-0001".into(),
        },
        IngestOptions::default(),
    )
    .unwrap();
    let (data, _) = conn.read("/home/sekar/scan").unwrap();
    assert_eq!(&data[..], b"binary LOB payload");
    // Unlinking leaves the LOB in the database.
    conn.delete("/home/sekar/scan", None).unwrap();
    assert!(driver.driver().exists("lobs/scan-0001"));
}

//! Metadata handling and query — including the paper's "Avian Culture"
//! curator scenario end to end.

mod common;

use common::{connect, grid};
use srb_core::{IngestOptions, RegisterSpec};
use srb_mcat::{AnnotationKind, AttrRequirement, MetaKind, Query};
use srb_types::{CompareOp, LogicalPath, Permission, SrbError, Triplet};

#[test]
fn metadata_requires_ownership_annotations_require_read() {
    let f = grid();
    let sekar = connect(&f, "sekar");
    let mwan = connect(&f, "mwan");
    sekar
        .ingest(
            "/home/sekar/obj",
            b"x",
            IngestOptions::to_resource("unix-sdsc"),
        )
        .unwrap();
    sekar
        .grant("/home/sekar/obj", mwan.user(), Permission::Read)
        .unwrap();
    // Reader cannot attach user-defined metadata…
    assert!(matches!(
        mwan.add_metadata("/home/sekar/obj", Triplet::new("k", "v", "")),
        Err(SrbError::PermissionDenied(_))
    ));
    // …but can annotate (paper: "any user with a read permission").
    mwan.annotate(
        "/home/sekar/obj",
        AnnotationKind::Rating,
        "overall",
        "4 stars",
    )
    .unwrap();
    let notes = sekar.annotations("/home/sekar/obj").unwrap();
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].author, mwan.user());
    // Only the author may delete their annotation.
    assert!(sekar.delete_annotation(notes[0].id).is_err());
    mwan.delete_annotation(notes[0].id).unwrap();
}

#[test]
fn metadata_crud_and_copy() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/a",
        b"x",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.ingest(
        "/home/sekar/b",
        b"y",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.add_metadata("/home/sekar/a", Triplet::new("species", "condor", ""))
        .unwrap();
    conn.add_metadata("/home/sekar/a", Triplet::new("wingspan", 290, "cm"))
        .unwrap();
    let rows = conn.metadata("/home/sekar/a").unwrap();
    assert_eq!(rows.len(), 2);
    // Update one row.
    let wing = rows.iter().find(|r| r.triplet.name == "wingspan").unwrap();
    conn.update_metadata("/home/sekar/a", wing.id, 300i64.into(), "cm")
        .unwrap();
    // Copy to b (method 3 of the paper's four ingestion ways).
    let n = conn
        .copy_metadata("/home/sekar/a", "/home/sekar/b")
        .unwrap();
    assert_eq!(n, 2);
    assert_eq!(conn.metadata("/home/sekar/b").unwrap().len(), 2);
    // Delete a row.
    conn.delete_metadata("/home/sekar/a", wing.id).unwrap();
    assert_eq!(conn.metadata("/home/sekar/a").unwrap().len(), 1);
}

#[test]
fn dublin_core_schema_metadata() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/art",
        b"x",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.add_schema_metadata(
        "/home/sekar/art",
        "DublinCore",
        Triplet::new("Title", "Avian Culture Notes", ""),
    )
    .unwrap();
    assert!(conn
        .add_schema_metadata(
            "/home/sekar/art",
            "DublinCore",
            Triplet::new("NotAnElement", "x", ""),
        )
        .is_err());
    let rows = conn.metadata("/home/sekar/art").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].kind, MetaKind::TypeOriented("DublinCore".into()));
}

#[test]
fn extraction_from_object_and_from_header_file() {
    let f = grid();
    let conn = connect(&f, "sekar");
    // FITS-like file: extract from the object itself (paper: "eg. FITS
    // files, HTML files").
    conn.ingest(
        "/home/sekar/m31.fits",
        b"SIMPLE  = T\nOBJECT  = 'M31'\nTELESCOP= '2MASS'\nEND\n",
        IngestOptions::to_resource("unix-sdsc").with_type("fits image"),
    )
    .unwrap();
    let t = conn
        .extract_metadata(
            "/home/sekar/m31.fits",
            "extract OBJECT keyvalue \"=\"\nextract TELESCOP keyvalue \"=\"\n",
        )
        .unwrap();
    assert_eq!(t.len(), 2);
    let rows = conn.metadata("/home/sekar/m31.fits").unwrap();
    assert!(rows.iter().any(|r| r.triplet.value.lexical() == "M31"));

    // DICOM-like: extract from a *separate* header file and attach to the
    // image (paper: "DICOM image metadata from separate header files").
    conn.ingest(
        "/home/sekar/scan.img",
        b"binary-image-data",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.ingest(
        "/home/sekar/scan.hdr",
        b"PatientAge: 42\nModality: MR\n",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    let t = conn
        .extract_metadata_from(
            "/home/sekar/scan.hdr",
            "/home/sekar/scan.img",
            "extract PatientAge after \"PatientAge:\"\nextract Modality after \"Modality:\"\n",
        )
        .unwrap();
    assert_eq!(t.len(), 2);
    let rows = conn.metadata("/home/sekar/scan.img").unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows
        .iter()
        .all(|r| matches!(r.kind, MetaKind::FileBased(_))));
}

#[test]
fn meta_file_association_and_viewing() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/obj1",
        b"x",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.ingest(
        "/home/sekar/obj2",
        b"y",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.ingest(
        "/home/sekar/meta.txt",
        b"species|condor|\nwingspan|290|cm\n",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    // One metadata file can serve several objects.
    conn.attach_meta_file("/home/sekar/obj1", "/home/sekar/meta.txt")
        .unwrap();
    conn.attach_meta_file("/home/sekar/obj2", "/home/sekar/meta.txt")
        .unwrap();
    let t = conn.view_meta_files("/home/sekar/obj1").unwrap();
    assert_eq!(t.len(), 2);
    assert_eq!(t[1].units, "cm");
    assert_eq!(conn.view_meta_files("/home/sekar/obj2").unwrap().len(), 2);
    // File-based metadata is for viewing, not querying: a query on
    // "species" does not hit obj1.
    let (hits, _) = conn
        .query(&Query::everywhere().and("species", CompareOp::Eq, "condor"))
        .unwrap();
    assert!(hits.is_empty());
}

#[test]
fn xml_meta_files_parse_alongside_triplet_files() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/img",
        b"pixels",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.ingest(
        "/home/sekar/meta.txt",
        b"source|AMICO|\n",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.ingest(
        "/home/sekar/meta.xml",
        br#"<metadata>
              <attr name="species" units="">Vultur gryphus</attr>
              <attr name="wingspan" units="cm">290</attr>
              <Title>Andean Condor</Title>
            </metadata>"#,
        IngestOptions::to_resource("unix-sdsc").with_type("xml"),
    )
    .unwrap();
    conn.attach_meta_file("/home/sekar/img", "/home/sekar/meta.txt")
        .unwrap();
    conn.attach_meta_file("/home/sekar/img", "/home/sekar/meta.xml")
        .unwrap();
    let t = conn.view_meta_files("/home/sekar/img").unwrap();
    assert_eq!(t.len(), 4); // 1 triplet line + 3 XML attributes
    assert!(t.iter().any(|x| x.name == "source"));
    assert!(t.iter().any(|x| x.name == "wingspan" && x.units == "cm"));
    assert!(t.iter().any(|x| x.name == "Title"));
}

#[test]
fn query_respects_permissions() {
    let f = grid();
    let sekar = connect(&f, "sekar");
    let mwan = connect(&f, "mwan");
    sekar
        .ingest(
            "/home/sekar/secret.dat",
            b"x",
            IngestOptions::to_resource("unix-sdsc")
                .with_metadata(Triplet::new("project", "grid", "")),
        )
        .unwrap();
    mwan.ingest(
        "/home/mwan/open.dat",
        b"y",
        IngestOptions::to_resource("unix-sdsc").with_metadata(Triplet::new("project", "grid", "")),
    )
    .unwrap();
    let q = Query::everywhere().and("project", CompareOp::Eq, "grid");
    // sekar sees only their own dataset…
    let (hits, _) = sekar.query(&q).unwrap();
    assert_eq!(hits.len(), 1);
    assert!(hits[0].path.contains("sekar"));
    // …until mwan grants discovery.
    mwan.grant_public("/home/mwan/open.dat", Permission::Read)
        .unwrap();
    let (hits, _) = sekar.query(&q).unwrap();
    assert_eq!(hits.len(), 2);
    // Scan path agrees with the indexed path.
    let (scan_hits, _) = sekar.query_scan(&q).unwrap();
    assert_eq!(hits, scan_hits);
}

#[test]
fn query_first_pages_without_global_order() {
    let f = grid();
    let conn = connect(&f, "sekar");
    for i in 0..20 {
        conn.ingest(
            &format!("/home/sekar/d{i:02}"),
            b"x",
            IngestOptions::to_resource("unix-sdsc")
                .with_metadata(Triplet::new("project", "grid", "")),
        )
        .unwrap();
    }
    let q = Query::everywhere().and("project", CompareOp::Eq, "grid");
    let (all, _) = conn.query(&q).unwrap();
    assert_eq!(all.len(), 20);
    // The paging form returns exactly n hits, each a real match, sorted
    // among themselves.
    let (page, _) = conn.query_first(&q, 5).unwrap();
    assert_eq!(page.len(), 5);
    assert!(page.windows(2).all(|w| w[0].path <= w[1].path));
    for h in &page {
        assert!(all.iter().any(|a| a.dataset == h.dataset));
    }
    // Asking for more than exist returns everything.
    let (page, _) = conn.query_first(&q, 100).unwrap();
    assert_eq!(page.len(), 20);
}

#[test]
fn group_grants_open_access_to_members() {
    let f = grid();
    let sekar = connect(&f, "sekar");
    let mwan = connect(&f, "mwan");
    sekar
        .ingest(
            "/home/sekar/paper.pdf",
            b"draft",
            IngestOptions::to_resource("unix-sdsc"),
        )
        .unwrap();
    // A curators group, granted read on the object.
    let curators = sekar.create_group("curators").unwrap();
    sekar
        .grant_group("/home/sekar/paper.pdf", curators, Permission::Read)
        .unwrap();
    // mwan is not yet a member: denied.
    assert!(mwan.read("/home/sekar/paper.pdf").is_err());
    sekar.add_to_group(curators, mwan.user()).unwrap();
    assert_eq!(&mwan.read("/home/sekar/paper.pdf").unwrap().0[..], b"draft");
    // Non-members may not extend the group.
    let outsider_grid_user = f.grid.register_user("outsider", "sdsc", "pw-o").unwrap();
    let outsider =
        srb_core::SrbConnection::connect(&f.grid, f.sdsc, "outsider", "sdsc", "pw-o").unwrap();
    assert!(matches!(
        outsider.add_to_group(curators, outsider_grid_user),
        Err(SrbError::PermissionDenied(_))
    ));
    // Leaving the group revokes access.
    f.grid
        .mcat
        .users
        .remove_from_group(mwan.user(), curators)
        .unwrap();
    assert!(mwan.read("/home/sekar/paper.pdf").is_err());
}

#[test]
fn avian_culture_scenario() {
    // The paper's §4 exemplar, condensed: a curator builds a collection
    // with structural metadata, contributors must satisfy it, outside
    // materials are linked/registered, users annotate, and the public
    // browses and queries.
    let f = grid();
    let curator = connect(&f, "sekar");
    let contributor = connect(&f, "mwan");

    curator
        .make_collection("/home/sekar/Cultures/Avian Culture")
        .unwrap();
    // MetaCore for Cultures on the parent, augmented on the child.
    let cultures = f
        .grid
        .mcat
        .collections
        .resolve(&LogicalPath::parse("/home/sekar/Cultures").unwrap())
        .unwrap();
    f.grid
        .mcat
        .collections
        .set_requirements(
            cultures,
            vec![AttrRequirement::mandatory(
                "culture",
                "MetaCore for Cultures: culture name",
            )],
        )
        .unwrap();
    let avian = f
        .grid
        .mcat
        .collections
        .resolve(&LogicalPath::parse("/home/sekar/Cultures/Avian Culture").unwrap())
        .unwrap();
    f.grid
        .mcat
        .collections
        .set_requirements(
            avian,
            vec![AttrRequirement::vocabulary(
                "medium",
                &["image", "movie", "text"],
                "media type",
            )],
        )
        .unwrap();
    // Other curators may include their own materials.
    curator
        .grant(
            "/home/sekar/Cultures/Avian Culture",
            contributor.user(),
            Permission::Write,
        )
        .unwrap();
    // Missing mandatory metadata is rejected.
    assert!(matches!(
        contributor.ingest(
            "/home/sekar/Cultures/Avian Culture/heron.jpg",
            b"JPEG",
            IngestOptions::to_resource("unix-sdsc").with_type("jpeg image"),
        ),
        Err(SrbError::MissingMetadata(_))
    ));
    // Out-of-vocabulary values are rejected.
    assert!(contributor
        .ingest(
            "/home/sekar/Cultures/Avian Culture/heron.jpg",
            b"JPEG",
            IngestOptions::to_resource("unix-sdsc")
                .with_metadata(Triplet::new("culture", "avian", ""))
                .with_metadata(Triplet::new("medium", "sculpture", "")),
        )
        .is_err());
    // A compliant ingest passes.
    contributor
        .ingest(
            "/home/sekar/Cultures/Avian Culture/heron.jpg",
            b"JPEG",
            IngestOptions::to_resource("unix-sdsc")
                .with_metadata(Triplet::new("culture", "avian", ""))
                .with_metadata(Triplet::new("medium", "image", ""))
                .with_metadata(Triplet::new("species", "heron", "")),
        )
        .unwrap();
    // Outside material is registered by link (URL), not copied.
    f.grid
        .web
        .host_static("http://museum.example/bird-call.wav", &b"RIFF..."[..]);
    curator
        .register(
            "/home/sekar/Cultures/Avian Culture/bird-call",
            RegisterSpec::Url {
                url: "http://museum.example/bird-call.wav".into(),
            },
            IngestOptions::default()
                .with_metadata(Triplet::new("culture", "avian", ""))
                .with_metadata(Triplet::new("medium", "text", "")),
        )
        .unwrap();
    // Multi-modal relationships: a link from another collection.
    curator.make_collection("/home/sekar/Sounds").unwrap();
    curator
        .link(
            "/home/sekar/Cultures/Avian Culture/bird-call",
            "/home/sekar/Sounds/call-link",
        )
        .unwrap();
    // Selected users add more metadata later.
    curator
        .add_metadata(
            "/home/sekar/Cultures/Avian Culture/heron.jpg",
            Triplet::new("habitat", "wetland", ""),
        )
        .ok(); // curator owns the collection, not the object — owner is contributor
    contributor
        .add_metadata(
            "/home/sekar/Cultures/Avian Culture/heron.jpg",
            Triplet::new("habitat", "wetland", ""),
        )
        .unwrap();
    // Readers add ratings/dialogue.
    curator
        .annotate(
            "/home/sekar/Cultures/Avian Culture/heron.jpg",
            AnnotationKind::Dialogue,
            "",
            "is this a great blue heron?",
        )
        .unwrap();
    // Public browsing: the curator opens the collection to the public.
    curator
        .grant_public("/home/sekar/Cultures", Permission::Read)
        .unwrap();
    // Public (anonymous-equivalent) query across the hierarchy "by being
    // above the collections".
    let q = Query::everywhere()
        .under(LogicalPath::parse("/home/sekar/Cultures").unwrap())
        .and("species", CompareOp::Like, "%heron%")
        .show("species")
        .show("medium");
    let (hits, _) = curator.query(&q).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].selected[0].1, "heron");
    assert_eq!(hits[0].selected[1].1, "image");
    // Annotation-aware query.
    let q2 = Query::everywhere()
        .under(LogicalPath::parse("/home/sekar").unwrap())
        .and("annotation", CompareOp::Like, "%great blue%")
        .with_annotations();
    let (hits2, _) = curator.query(&q2).unwrap();
    assert_eq!(hits2.len(), 1);
    // The queryable-attribute drop-down reflects the scope.
    let attrs = f
        .grid
        .mcat
        .queryable_attrs(&LogicalPath::parse("/home/sekar/Cultures").unwrap())
        .unwrap();
    assert!(attrs.contains(&"culture".to_string()));
    assert!(attrs.contains(&"species".to_string()));
}

//! Locks, pins, and checkout/checkin versioning (paper §5).

mod common;

use common::{connect, grid};
use srb_core::IngestOptions;
use srb_mcat::LockKind;
use srb_types::{Permission, SrbError};

fn setup<'g>(f: &'g common::Fixture) -> (srb_core::SrbConnection<'g>, srb_core::SrbConnection<'g>) {
    let sekar = connect(f, "sekar");
    let mwan = connect(f, "mwan");
    sekar
        .ingest(
            "/home/sekar/shared",
            b"v1",
            IngestOptions::to_resource("unix-sdsc"),
        )
        .unwrap();
    sekar
        .grant("/home/sekar/shared", mwan.user(), Permission::Write)
        .unwrap();
    (sekar, mwan)
}

#[test]
fn shared_lock_blocks_other_writers_not_readers() {
    let f = grid();
    let (sekar, mwan) = setup(&f);
    sekar
        .lock("/home/sekar/shared", LockKind::Shared, 3600)
        .unwrap();
    // mwan may read but not write.
    assert_eq!(&mwan.read("/home/sekar/shared").unwrap().0[..], b"v1");
    assert!(matches!(
        mwan.write("/home/sekar/shared", b"x"),
        Err(SrbError::Locked(_))
    ));
    // The holder may write.
    sekar.write("/home/sekar/shared", b"v2").unwrap();
    // mwan cannot steal the lock.
    assert!(mwan
        .lock("/home/sekar/shared", LockKind::Exclusive, 10)
        .is_err());
    sekar.unlock("/home/sekar/shared").unwrap();
    mwan.write("/home/sekar/shared", b"v3").unwrap();
}

#[test]
fn exclusive_lock_blocks_reads_too() {
    let f = grid();
    let (sekar, mwan) = setup(&f);
    sekar
        .lock("/home/sekar/shared", LockKind::Exclusive, 3600)
        .unwrap();
    assert!(matches!(
        mwan.read("/home/sekar/shared"),
        Err(SrbError::Locked(_))
    ));
    assert_eq!(&sekar.read("/home/sekar/shared").unwrap().0[..], b"v1");
}

#[test]
fn locks_expire_with_virtual_time() {
    let f = grid();
    let (sekar, mwan) = setup(&f);
    sekar
        .lock("/home/sekar/shared", LockKind::Exclusive, 60)
        .unwrap();
    assert!(mwan.read("/home/sekar/shared").is_err());
    f.grid.clock.advance(61 * 1_000_000_000);
    assert_eq!(&mwan.read("/home/sekar/shared").unwrap().0[..], b"v1");
    mwan.write("/home/sekar/shared", b"after expiry").unwrap();
}

#[test]
fn unlock_requires_holder() {
    let f = grid();
    let (sekar, mwan) = setup(&f);
    sekar
        .lock("/home/sekar/shared", LockKind::Shared, 3600)
        .unwrap();
    assert!(matches!(
        mwan.unlock("/home/sekar/shared"),
        Err(SrbError::Locked(_))
    ));
    sekar.unlock("/home/sekar/shared").unwrap();
}

#[test]
fn pin_protects_cache_replica_from_purge() {
    let f = grid();
    let conn = connect(&f, "sekar");
    // cache-sdsc holds 64 KiB.
    conn.ingest(
        "/home/sekar/pinned",
        vec![1u8; 40 * 1024],
        IngestOptions::to_resource("cache-sdsc"),
    )
    .unwrap();
    conn.pin("/home/sekar/pinned", 1, 3600).unwrap();
    // Ingesting more than fits would evict the LRU entry — but it's pinned,
    // so the cache refuses the newcomer instead.
    let err = conn
        .ingest(
            "/home/sekar/big",
            vec![2u8; 40 * 1024],
            IngestOptions::to_resource("cache-sdsc"),
        )
        .unwrap_err();
    assert!(matches!(err, SrbError::ResourceUnavailable(_)));
    assert_eq!(conn.read("/home/sekar/pinned").unwrap().0.len(), 40 * 1024);
    // After unpinning, the newcomer evicts it.
    conn.unpin("/home/sekar/pinned", 1).unwrap();
    conn.ingest(
        "/home/sekar/big2",
        vec![3u8; 40 * 1024],
        IngestOptions::to_resource("cache-sdsc"),
    )
    .unwrap();
    assert!(conn.read("/home/sekar/pinned").is_err());
}

#[test]
fn pin_expiry_is_honoured() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/p",
        vec![1u8; 40 * 1024],
        IngestOptions::to_resource("cache-sdsc"),
    )
    .unwrap();
    conn.pin("/home/sekar/p", 1, 60).unwrap();
    f.grid.clock.advance(61 * 1_000_000_000);
    // Pin expired: eviction proceeds.
    conn.ingest(
        "/home/sekar/q",
        vec![2u8; 40 * 1024],
        IngestOptions::to_resource("cache-sdsc"),
    )
    .unwrap();
    assert!(conn.read("/home/sekar/p").is_err());
}

#[test]
fn checkout_checkin_preserves_versions() {
    let f = grid();
    let (sekar, mwan) = setup(&f);
    sekar.checkout("/home/sekar/shared").unwrap();
    // Nobody else can change it while checked out.
    assert!(matches!(
        mwan.write("/home/sekar/shared", b"x"),
        Err(SrbError::Locked(_))
    ));
    // Double checkout fails.
    assert!(mwan.checkout("/home/sekar/shared").is_err());
    sekar.checkin("/home/sekar/shared", b"v2 content").unwrap();
    // Current content is new; version 1 is preserved.
    assert_eq!(
        &sekar.read("/home/sekar/shared").unwrap().0[..],
        b"v2 content"
    );
    let versions = sekar.versions("/home/sekar/shared").unwrap();
    assert_eq!(versions.len(), 1);
    assert_eq!(versions[0].0, 1);
    let (old, _) = sekar.read_version("/home/sekar/shared", 1).unwrap();
    assert_eq!(&old[..], b"v1");
    // A second cycle gives version 2.
    sekar.checkout("/home/sekar/shared").unwrap();
    sekar.checkin("/home/sekar/shared", b"v3").unwrap();
    let versions = sekar.versions("/home/sekar/shared").unwrap();
    assert_eq!(versions.len(), 2);
    let (v2, _) = sekar.read_version("/home/sekar/shared", 2).unwrap();
    assert_eq!(&v2[..], b"v2 content");
    let (_, _, _, cur) = sekar.stat("/home/sekar/shared").unwrap();
    assert_eq!(cur, 3);
}

#[test]
fn checkin_without_checkout_rejected() {
    let f = grid();
    let (sekar, mwan) = setup(&f);
    assert!(matches!(
        sekar.checkin("/home/sekar/shared", b"x"),
        Err(SrbError::Invalid(_))
    ));
    // Checkin by a non-holder is refused.
    sekar.checkout("/home/sekar/shared").unwrap();
    assert!(matches!(
        mwan.checkin("/home/sekar/shared", b"x"),
        Err(SrbError::Locked(_))
    ));
}

#[test]
fn read_missing_version_fails() {
    let f = grid();
    let (sekar, _) = setup(&f);
    assert!(matches!(
        sekar.read_version("/home/sekar/shared", 7),
        Err(SrbError::NotFound(_))
    ));
}

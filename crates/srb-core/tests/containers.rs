//! Container behaviour: aggregation, cache/archive sync, purge + recall,
//! update-in-container, and the WAN-latency advantage (E2's mechanism).

mod common;

use common::{connect, grid};
use srb_core::IngestOptions;
use srb_types::SrbError;

#[test]
fn ingest_into_container_and_read_back() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.create_container("ct1", "ct-store", 1 << 20).unwrap();
    for i in 0..10 {
        conn.ingest(
            &format!("/home/sekar/small{i}"),
            format!("file number {i}").as_bytes(),
            IngestOptions::into_container("ct1"),
        )
        .unwrap();
    }
    for i in 0..10 {
        let (data, _) = conn.read(&format!("/home/sekar/small{i}")).unwrap();
        assert_eq!(&data[..], format!("file number {i}").as_bytes());
    }
    let record = f.grid.mcat.containers.find("ct1").unwrap();
    assert_eq!(record.members.len(), 10);
    assert!(!record.synced);
}

#[test]
fn container_overrides_resource_in_ingest() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.create_container("ct1", "ct-store", 1 << 20).unwrap();
    let mut opts = IngestOptions::to_resource("unix-ncsa");
    opts.container = Some("ct1".into());
    conn.ingest("/home/sekar/f", b"contained", opts).unwrap();
    // The bytes went into the container on the cache resource, not to
    // unix-ncsa.
    let ncsa = f.grid.resource_id("unix-ncsa").unwrap();
    assert_eq!(f.grid.driver(ncsa).unwrap().driver().used_bytes(), 0);
    let record = f.grid.mcat.containers.find("ct1").unwrap();
    assert_eq!(record.members.len(), 1);
}

#[test]
fn sync_then_purge_then_recall_from_archive() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.create_container("ct1", "ct-store", 1 << 20).unwrap();
    conn.ingest(
        "/home/sekar/a",
        b"alpha",
        IngestOptions::into_container("ct1"),
    )
    .unwrap();
    conn.ingest(
        "/home/sekar/b",
        b"beta",
        IngestOptions::into_container("ct1"),
    )
    .unwrap();
    // Purging before sync is refused (data would be lost).
    assert!(matches!(
        conn.purge_container_cache("ct1"),
        Err(SrbError::Invalid(_))
    ));
    conn.sync_container("ct1").unwrap();
    assert!(f.grid.mcat.containers.find("ct1").unwrap().synced);
    conn.purge_container_cache("ct1").unwrap();
    // Reads still work — the container is recalled from the archive, at a
    // staging cost.
    let (data, receipt) = conn.read("/home/sekar/a").unwrap();
    assert_eq!(&data[..], b"alpha");
    assert!(
        receipt.sim_ns >= 2_000_000_000,
        "cold recall pays the staging cliff (got {} ns)",
        receipt.sim_ns
    );
    // The recall repopulated the cache: the next read is cheap again.
    let (data, receipt2) = conn.read("/home/sekar/b").unwrap();
    assert_eq!(&data[..], b"beta");
    assert!(receipt2.sim_ns < receipt.sim_ns / 10);
}

#[test]
fn container_amortizes_archive_staging_versus_per_file() {
    let f = grid();
    let conn = connect(&f, "sekar");
    let n = 20;
    let payload = vec![42u8; 1024];
    conn.make_collection("/home/sekar/ct").unwrap();
    conn.make_collection("/home/sekar/raw").unwrap();
    // Case A: files in a container (cache+archive logical resource).
    conn.create_container("bulk", "ct-store", 1 << 20).unwrap();
    for i in 0..n {
        conn.ingest(
            &format!("/home/sekar/ct/f{i}"),
            &payload,
            IngestOptions::into_container("bulk"),
        )
        .unwrap();
    }
    conn.sync_container("bulk").unwrap();
    conn.purge_container_cache("bulk").unwrap();
    // Case B: files stored individually on the archive.
    for i in 0..n {
        conn.ingest(
            &format!("/home/sekar/raw/f{i}"),
            &payload,
            IngestOptions::to_resource("hpss-caltech"),
        )
        .unwrap();
    }
    let hpss = f.grid.resource_id("hpss-caltech").unwrap();
    f.grid
        .driver(hpss)
        .unwrap()
        .as_archive()
        .unwrap()
        .purge_staged();
    // Read everything back both ways.
    let mut container_ns = 0;
    for i in 0..n {
        let (_, r) = conn.read(&format!("/home/sekar/ct/f{i}")).unwrap();
        container_ns += r.sim_ns;
    }
    let mut per_file_ns = 0;
    for i in 0..n {
        let (_, r) = conn.read(&format!("/home/sekar/raw/f{i}")).unwrap();
        per_file_ns += r.sim_ns;
    }
    assert!(
        per_file_ns > container_ns * 3,
        "per-file archive reads ({per_file_ns} ns) should dwarf containerized reads \
         ({container_ns} ns): one staging vs {n}"
    );
}

#[test]
fn container_full_rejects_ingest_and_rolls_back() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.create_container("tiny", "ct-store", 10).unwrap();
    conn.ingest(
        "/home/sekar/fits",
        b"12345678",
        IngestOptions::into_container("tiny"),
    )
    .unwrap();
    let err = conn
        .ingest(
            "/home/sekar/nofit",
            b"12345678",
            IngestOptions::into_container("tiny"),
        )
        .unwrap_err();
    assert!(matches!(err, SrbError::ResourceUnavailable(_)));
    // The dataset row was rolled back: the name is free again.
    conn.ingest(
        "/home/sekar/nofit",
        b"x",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
}

#[test]
fn update_in_container_repoints_slice() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.create_container("ct1", "ct-store", 1 << 20).unwrap();
    conn.ingest(
        "/home/sekar/doc",
        b"first version",
        IngestOptions::into_container("ct1"),
    )
    .unwrap();
    conn.ingest(
        "/home/sekar/other",
        b"neighbour",
        IngestOptions::into_container("ct1"),
    )
    .unwrap();
    conn.write("/home/sekar/doc", b"second version, longer")
        .unwrap();
    assert_eq!(
        &conn.read("/home/sekar/doc").unwrap().0[..],
        b"second version, longer"
    );
    // The neighbour is untouched.
    assert_eq!(&conn.read("/home/sekar/other").unwrap().0[..], b"neighbour");
    // Tar-like: the container grew (hole left behind).
    let record = f.grid.mcat.containers.find("ct1").unwrap();
    assert_eq!(
        record.size as usize,
        "first version".len() + "neighbour".len() + "second version, longer".len()
    );
}

#[test]
fn replicate_of_container_member_is_refused() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.create_container("ct1", "ct-store", 1 << 20).unwrap();
    conn.ingest("/home/sekar/m", b"x", IngestOptions::into_container("ct1"))
        .unwrap();
    assert!(matches!(
        conn.replicate("/home/sekar/m", "unix-ncsa"),
        Err(SrbError::Unsupported(_))
    ));
    // And physical move likewise.
    assert!(matches!(
        conn.move_physical("/home/sekar/m", 1, "unix-ncsa"),
        Err(SrbError::Unsupported(_))
    ));
}

#[test]
fn deleting_members_leaves_container_consistent() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.create_container("ct1", "ct-store", 1 << 20).unwrap();
    conn.ingest(
        "/home/sekar/a",
        b"aaa",
        IngestOptions::into_container("ct1"),
    )
    .unwrap();
    conn.ingest(
        "/home/sekar/b",
        b"bbb",
        IngestOptions::into_container("ct1"),
    )
    .unwrap();
    conn.delete("/home/sekar/a", None).unwrap();
    let record = f.grid.mcat.containers.find("ct1").unwrap();
    assert_eq!(record.members.len(), 1);
    assert_eq!(&conn.read("/home/sekar/b").unwrap().0[..], b"bbb");
    assert!(conn.read("/home/sekar/a").is_err());
}
